//! Embedded example STG specifications.

/// The cyclic part of the paper's Figure 2c oscillator, as a timed `.g`
/// spec (the prefix `e-`/`f-` cannot be expressed in the format; the cycle
/// time is unaffected, τ = 10).
pub const EXAMPLE_OSCILLATOR: &str = "\
.model oscillator_cyclic
.outputs a b c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.delay a+ c+ 3
.delay b+ c+ 2
.delay c+ a- 2
.delay c+ b- 1
.delay a- c- 3
.delay b- c- 2
.delay c- a+ 2
.delay c- b+ 1
.end
";

/// A four-phase handshake pipeline controller (three stages), unit delays:
/// per-stage return-to-zero cycles with forward data coupling and marked
/// backpressure arcs.
pub const EXAMPLE_PIPELINE_2PH: &str = "\
.model pipeline4ph
.outputs r0 a0 r1 a1 r2 a2
.graph
r0+ a0+
a0+ r0- r1+
r0- a0-
a0- r0+
r1+ a1+
a1+ r1- r2+ r0+
r1- a1-
a1- r1+ r0-
r2+ a2+
a2+ r2- r1+
r2- a2-
a2- r2+ r1-
.marking { <a0-,r0+> <a1-,r1+> <a2-,r2+> <a1+,r0+> <a2+,r1+> }
.end
";

/// The Section VIII.D Muller ring (5 stages), signal-graph level, unit
/// delays — the same graph `tsg-extract` derives from the netlist.
/// τ = 20/3, border events `{s0+, s1+, s2+, s4-}`.
pub const EXAMPLE_RING5: &str = "\
.model muller_ring5
.outputs s0 s1 s2 s3 s4 i0 i1 i2 i3 i4
.graph
s0+ s1+ i4-
s1+ s2+ i0-
s2+ s3+ i1-
s3+ s4+ i2-
s4+ s0+ i3-
s0- s1- i4+
s1- s2- i0+
s2- s3- i1+
s3- s4- i2+
s4- s0- i3+
i0+ s0+
i0- s0-
i1+ s1+
i1- s1-
i2+ s2+
i2- s2-
i3+ s3+
i3- s3-
i4+ s4+
i4- s4-
.marking { <s4+,s0+> <i0+,s0+> <i1+,s1+> <i2+,s2+> <s3-,s4-> }
.end
";

/// A specification with **multiple events per signal transition** (Section
/// VIII.A: `a+/1` and `a+/2` are distinct events with their own delays) —
/// a burst-mode style controller where `req` pulses twice per transfer.
pub const EXAMPLE_MULTI_EVENT: &str = "\
.model double_pulse
.outputs req ack
.graph
req+/1 ack+
ack+ req-/1
req-/1 req+/2
req+/2 req-/2
req-/2 ack-
ack- req+/1
.marking { <ack-,req+/1> }
.delay req+/1 ack+ 4
.delay ack+ req-/1 1
.delay req-/1 req+/2 2
.delay req+/2 req-/2 3
.delay req-/2 ack- 1
.delay ack- req+/1 1
.end
";

#[cfg(test)]
mod tests {
    use crate::reader::{parse_stg, StgOptions};
    use tsg_core::analysis::CycleTimeAnalysis;

    #[test]
    fn oscillator_example_parses_to_tau_10() {
        let sg = parse_stg(super::EXAMPLE_OSCILLATOR, StgOptions::default()).unwrap();
        let tau = CycleTimeAnalysis::run(&sg).unwrap().cycle_time();
        assert_eq!(tau.as_f64(), 10.0);
    }

    #[test]
    fn pipeline_example_parses() {
        let sg = parse_stg(super::EXAMPLE_PIPELINE_2PH, StgOptions::default()).unwrap();
        assert_eq!(sg.event_count(), 12);
        assert!(CycleTimeAnalysis::run(&sg).is_ok());
    }

    #[test]
    fn multi_event_example_parses_and_analyzes() {
        // Section VIII.A: multiple events of the same signal are distinct
        // events with individual delays.
        let sg = parse_stg(super::EXAMPLE_MULTI_EVENT, StgOptions::default()).unwrap();
        assert_eq!(sg.event_count(), 6);
        assert!(sg.event_by_label("req#1+").is_some());
        assert!(sg.event_by_label("req#2+").is_some());
        let tau = CycleTimeAnalysis::run(&sg).unwrap().cycle_time();
        // single cycle: 4+1+2+3+1+1 = 12 over one token
        assert_eq!(tau.as_f64(), 12.0);
        // round-trips through the writer with /1, /2 notation preserved
        let text = crate::writer::write_stg(&sg, "double_pulse").unwrap();
        assert!(text.contains("req+/1") && text.contains("req+/2"));
        let back = parse_stg(&text, StgOptions::default()).unwrap();
        assert_eq!(back.event_count(), 6);
    }

    #[test]
    fn ring5_example_matches_section8d() {
        let sg = parse_stg(super::EXAMPLE_RING5, StgOptions::default()).unwrap();
        assert_eq!(sg.event_count(), 20);
        assert_eq!(sg.arc_count(), 30);
        let mut borders: Vec<String> = sg
            .border_events()
            .iter()
            .map(|&e| sg.label(e).to_string())
            .collect();
        borders.sort();
        assert_eq!(borders, vec!["s0+", "s1+", "s2+", "s4-"]);
        let tau = CycleTimeAnalysis::run(&sg).unwrap().cycle_time();
        assert_eq!(tau.exact().unwrap(), tsg_core::Ratio::new(20, 3));
    }
}
