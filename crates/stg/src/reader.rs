//! `.g` parser (marked-graph subclass, with the `.delay` timing extension).

use std::collections::HashMap;
use std::fmt;

use tsg_core::{EventId, SignalGraph, ValidationError};

/// Parser options.
#[derive(Clone, Copy, Debug)]
pub struct StgOptions {
    /// Delay assigned to arcs without a `.delay` annotation (default 1).
    pub default_delay: f64,
}

impl Default for StgOptions {
    fn default() -> Self {
        StgOptions { default_delay: 1.0 }
    }
}

/// Errors produced while parsing a `.g` file.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum StgError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The STG uses explicit places or other non-marked-graph features.
    NotMarkedGraph {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A `.marking`/`.delay` entry references an arc that was never
    /// declared in `.graph`.
    UnknownArc {
        /// Source transition as written.
        src: String,
        /// Destination transition as written.
        dst: String,
    },
    /// The marked graph failed Signal Graph validation (e.g. token-free
    /// cycle, not strongly connected).
    Invalid(ValidationError),
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            StgError::NotMarkedGraph { line, token } => {
                write!(f, "line {line}: {token:?} is not a signal transition (explicit places are unsupported)")
            }
            StgError::UnknownArc { src, dst } => {
                write!(f, "marking/delay references unknown arc {src} -> {dst}")
            }
            StgError::Invalid(e) => write!(f, "not a valid live Signal Graph: {e}"),
        }
    }
}

impl std::error::Error for StgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StgError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

fn syntax(line: usize, message: impl Into<String>) -> StgError {
    StgError::Syntax {
        line,
        message: message.into(),
    }
}

/// Normalises an STG transition token (`a+`, `req-`, `a+/1`) to the event
/// label used by `tsg-core` (`a+`, `req-`, `a#1+`).
///
/// Returns `None` for tokens that are not signal transitions.
fn normalize(token: &str) -> Option<String> {
    let (stem, index) = match token.split_once('/') {
        Some((s, i)) => {
            i.parse::<u32>().ok()?;
            (s, Some(i))
        }
        None => (token, None),
    };
    if stem.len() < 2 {
        return None;
    }
    let (name, pol) = stem.split_at(stem.len() - 1);
    if !matches!(pol, "+" | "-") {
        return None;
    }
    Some(match index {
        Some(i) => format!("{name}#{i}{pol}"),
        None => format!("{name}{pol}"),
    })
}

/// Parses `.g` text into a validated [`SignalGraph`].
///
/// # Errors
///
/// Returns [`StgError`] on syntax problems, non-marked-graph features,
/// dangling marking/delay references, or structural invalidity of the
/// resulting graph.
pub fn parse_stg(text: &str, options: StgOptions) -> Result<SignalGraph, StgError> {
    struct ArcSpec {
        src: String,
        dst: String,
        delay: Option<f64>,
        marked: bool,
    }
    let mut arcs: Vec<ArcSpec> = Vec::new();
    let mut order: Vec<String> = Vec::new(); // transition labels in first-seen order
    let mut seen: HashMap<String, ()> = HashMap::new();
    let mut in_graph = false;

    let note = |label: &str, order: &mut Vec<String>, seen: &mut HashMap<String, ()>| {
        if seen.insert(label.to_owned(), ()).is_none() {
            order.push(label.to_owned());
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut words = rest.split_whitespace();
            match words.next() {
                Some("graph") => in_graph = true,
                Some("end") => in_graph = false,
                Some("marking") => {
                    let body = rest
                        .strip_prefix("marking")
                        .unwrap_or("")
                        .trim()
                        .trim_start_matches('{')
                        .trim_end_matches('}');
                    for tok in body.split('<') {
                        let tok = tok.trim().trim_end_matches('>').trim();
                        if tok.is_empty() {
                            continue;
                        }
                        let (s, d) = tok
                            .split_once(',')
                            .ok_or_else(|| syntax(lineno, format!("bad marking token {tok:?}")))?;
                        let s = normalize(s.trim())
                            .ok_or_else(|| syntax(lineno, format!("bad transition {s:?}")))?;
                        let d = normalize(d.trim())
                            .ok_or_else(|| syntax(lineno, format!("bad transition {d:?}")))?;
                        let arc = arcs
                            .iter_mut()
                            .find(|a| a.src == s && a.dst == d)
                            .ok_or(StgError::UnknownArc { src: s, dst: d })?;
                        arc.marked = true;
                    }
                }
                Some("delay") => {
                    let toks: Vec<&str> = words.collect();
                    if toks.len() != 3 {
                        return Err(syntax(lineno, "expected `.delay SRC DST VALUE`"));
                    }
                    let s = normalize(toks[0])
                        .ok_or_else(|| syntax(lineno, format!("bad transition {:?}", toks[0])))?;
                    let d = normalize(toks[1])
                        .ok_or_else(|| syntax(lineno, format!("bad transition {:?}", toks[1])))?;
                    let v: f64 = toks[2]
                        .parse()
                        .map_err(|_| syntax(lineno, format!("bad delay {:?}", toks[2])))?;
                    let arc = arcs
                        .iter_mut()
                        .find(|a| a.src == s && a.dst == d)
                        .ok_or(StgError::UnknownArc { src: s, dst: d })?;
                    arc.delay = Some(v);
                }
                // interface declarations carry no structure we need
                Some("model") | Some("inputs") | Some("outputs") | Some("internal")
                | Some("dummy") | Some("name") => {}
                Some(other) => return Err(syntax(lineno, format!("unknown directive .{other}"))),
                None => return Err(syntax(lineno, "empty directive")),
            }
            continue;
        }
        if !in_graph {
            return Err(syntax(lineno, "arc outside .graph section"));
        }
        let mut toks = line.split_whitespace();
        let src_tok = toks.next().expect("non-empty line has a token");
        let src = normalize(src_tok).ok_or(StgError::NotMarkedGraph {
            line: lineno,
            token: src_tok.to_owned(),
        })?;
        note(&src, &mut order, &mut seen);
        for dst_tok in toks {
            let dst = normalize(dst_tok).ok_or(StgError::NotMarkedGraph {
                line: lineno,
                token: dst_tok.to_owned(),
            })?;
            note(&dst, &mut order, &mut seen);
            arcs.push(ArcSpec {
                src: src.clone(),
                dst,
                delay: None,
                marked: false,
            });
        }
    }

    let mut b = SignalGraph::builder();
    let mut ids: HashMap<String, EventId> = HashMap::new();
    for label in &order {
        ids.insert(label.clone(), b.event(label));
    }
    for arc in &arcs {
        let (s, d) = (ids[&arc.src], ids[&arc.dst]);
        let delay = arc.delay.unwrap_or(options.default_delay);
        if arc.marked {
            b.marked_arc(s, d, delay);
        } else {
            b.arc(s, d, delay);
        }
    }
    b.build().map_err(StgError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_core::analysis::CycleTimeAnalysis;

    #[test]
    fn parses_minimal_toggle() {
        let text = "\
.model toggle
.outputs x
.graph
x+ x-
x- x+
.marking { <x-,x+> }
.end
";
        let sg = parse_stg(text, StgOptions::default()).unwrap();
        assert_eq!(sg.event_count(), 2);
        assert_eq!(sg.arc_count(), 2);
        let tau = CycleTimeAnalysis::run(&sg).unwrap().cycle_time();
        assert_eq!(tau.as_f64(), 2.0); // two unit-delay arcs
    }

    #[test]
    fn delay_extension_applies() {
        let text = "\
.graph
x+ x-
x- x+
.marking { <x-,x+> }
.delay x+ x- 3
.delay x- x+ 2.5
.end
";
        let sg = parse_stg(text, StgOptions::default()).unwrap();
        let tau = CycleTimeAnalysis::run(&sg).unwrap().cycle_time();
        assert_eq!(tau.as_f64(), 5.5);
    }

    #[test]
    fn fanout_lines_expand() {
        let text = "\
.graph
a+ b+ c+
b+ d+
c+ d+
d+ a+
.marking { <d+,a+> }
.end
";
        let sg = parse_stg(text, StgOptions::default()).unwrap();
        assert_eq!(sg.arc_count(), 5);
        assert_eq!(sg.event_count(), 4);
    }

    #[test]
    fn indexed_transitions_normalise() {
        let text = "\
.graph
a+/1 a-/1
a-/1 a+/1
.marking { <a-/1,a+/1> }
.end
";
        let sg = parse_stg(text, StgOptions::default()).unwrap();
        assert!(sg.event_by_label("a#1+").is_some());
    }

    #[test]
    fn explicit_places_rejected() {
        let text = "\
.graph
p0 a+
a+ p0
.end
";
        let err = parse_stg(text, StgOptions::default()).unwrap_err();
        assert!(matches!(err, StgError::NotMarkedGraph { .. }));
    }

    #[test]
    fn unknown_arc_in_marking() {
        let text = "\
.graph
x+ x-
x- x+
.marking { <x+,x+> }
.end
";
        assert!(matches!(
            parse_stg(text, StgOptions::default()),
            Err(StgError::UnknownArc { .. })
        ));
    }

    #[test]
    fn unmarked_stg_is_invalid() {
        let text = "\
.graph
x+ x-
x- x+
.end
";
        assert!(matches!(
            parse_stg(text, StgOptions::default()),
            Err(StgError::Invalid(_))
        ));
    }

    #[test]
    fn syntax_error_line_numbers() {
        let err = parse_stg("x+ x-\n", StgOptions::default()).unwrap_err();
        assert!(matches!(err, StgError::Syntax { line: 1, .. }));
    }
}
