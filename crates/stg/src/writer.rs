//! `.g` writer for the repetitive part of a Signal Graph.

use std::fmt;
use std::fmt::Write as _;

use tsg_core::{Polarity, SignalGraph};

/// Error returned by [`write_stg`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WriteStgError {
    /// The graph has prefix (initial/finite) events, which the `.g` format
    /// cannot express.
    HasPrefix,
    /// An event has no polarity, so it is not a signal transition.
    NotATransition {
        /// The offending event label.
        label: String,
    },
}

impl fmt::Display for WriteStgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteStgError::HasPrefix => {
                write!(f, ".g format cannot express non-repetitive prefix events")
            }
            WriteStgError::NotATransition { label } => {
                write!(f, "event {label:?} is not a signal transition")
            }
        }
    }
}

impl std::error::Error for WriteStgError {}

fn stg_token(sg: &SignalGraph, e: tsg_core::EventId) -> Result<String, WriteStgError> {
    let label = sg.label(e);
    let pol = label
        .polarity()
        .ok_or_else(|| WriteStgError::NotATransition {
            label: label.to_string(),
        })?;
    let p = match pol {
        Polarity::Rise => "+",
        Polarity::Fall => "-",
    };
    Ok(match label.signal().split_once('#') {
        Some((name, idx)) => format!("{name}{p}/{idx}"),
        None => format!("{}{}", label.signal(), p),
    })
}

/// Serialises the graph to `.g` text (with `.delay` annotations), such that
/// [`parse_stg`](crate::parse_stg) reads back an equivalent graph.
///
/// # Errors
///
/// Returns [`WriteStgError`] when the graph has prefix events or bare
/// (polarity-free) labels.
pub fn write_stg(sg: &SignalGraph, model: &str) -> Result<String, WriteStgError> {
    if sg.prefix_events().next().is_some() {
        return Err(WriteStgError::HasPrefix);
    }
    let mut out = String::new();
    let _ = writeln!(out, ".model {model}");
    let mut signals: Vec<&str> = sg
        .events()
        .map(|e| sg.label(e).signal())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    signals.sort_unstable();
    let _ = writeln!(out, ".outputs {}", signals.join(" "));
    let _ = writeln!(out, ".graph");
    for e in sg.events() {
        let outs: Vec<_> = sg.out_arcs(e).collect();
        if outs.is_empty() {
            continue;
        }
        let src = stg_token(sg, e)?;
        let mut line = src.clone();
        for a in &outs {
            let _ = write!(line, " {}", stg_token(sg, sg.arc(*a).dst())?);
        }
        let _ = writeln!(out, "{line}");
    }
    let marked: Vec<String> = sg
        .arc_ids()
        .filter(|&a| sg.arc(a).is_marked())
        .map(|a| {
            let arc = sg.arc(a);
            Ok::<String, WriteStgError>(format!(
                "<{},{}>",
                stg_token(sg, arc.src())?,
                stg_token(sg, arc.dst())?
            ))
        })
        .collect::<Result<_, _>>()?;
    let _ = writeln!(out, ".marking {{ {} }}", marked.join(" "));
    for a in sg.arc_ids() {
        let arc = sg.arc(a);
        let _ = writeln!(
            out,
            ".delay {} {} {}",
            stg_token(sg, arc.src())?,
            stg_token(sg, arc.dst())?,
            arc.delay()
        );
    }
    out.push_str(".end\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::{parse_stg, StgOptions};
    use tsg_core::analysis::CycleTimeAnalysis;

    fn toggle() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let xp = b.event("x+");
        let xm = b.event("x-");
        b.arc(xp, xm, 3.0);
        b.marked_arc(xm, xp, 2.0);
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_cycle_time() {
        let sg = toggle();
        let text = write_stg(&sg, "toggle").unwrap();
        let back = parse_stg(&text, StgOptions::default()).unwrap();
        let t1 = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        let t2 = CycleTimeAnalysis::run(&back).unwrap().cycle_time().as_f64();
        assert_eq!(t1, t2);
        assert_eq!(back.event_count(), sg.event_count());
        assert_eq!(back.arc_count(), sg.arc_count());
    }

    #[test]
    fn prefix_graphs_rejected() {
        let mut b = SignalGraph::builder();
        let i = b.initial_event("e-");
        let xp = b.event("x+");
        let xm = b.event("x-");
        b.disengageable_arc(i, xp, 1.0);
        b.arc(xp, xm, 1.0);
        b.marked_arc(xm, xp, 1.0);
        let sg = b.build().unwrap();
        assert_eq!(write_stg(&sg, "t"), Err(WriteStgError::HasPrefix));
    }

    #[test]
    fn bare_labels_rejected() {
        let mut b = SignalGraph::builder();
        let x = b.event("tick");
        b.marked_arc(x, x, 1.0);
        let sg = b.build().unwrap();
        assert!(matches!(
            write_stg(&sg, "t"),
            Err(WriteStgError::NotATransition { .. })
        ));
    }

    #[test]
    fn indexed_labels_roundtrip() {
        let mut b = SignalGraph::builder();
        let a1 = b.event("a#1+");
        let a2 = b.event("a#2+");
        b.arc(a1, a2, 1.0);
        b.marked_arc(a2, a1, 1.0);
        let sg = b.build().unwrap();
        let text = write_stg(&sg, "t").unwrap();
        assert!(text.contains("a+/1"));
        let back = parse_stg(&text, StgOptions::default()).unwrap();
        assert!(back.event_by_label("a#1+").is_some());
    }
}
