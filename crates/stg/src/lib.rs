//! # tsg-stg — Signal Transition Graph (`.g`) file I/O
//!
//! Readers and writers for the `astg` text format used by petrify, SIS and
//! the asynchronous-synthesis community — the lingua franca for the Signal
//! Graph specifications the paper analyses (its refs \[4, 9, 10, 12\] all
//! speak this language).
//!
//! Supported subclass: **marked graphs** — transition-to-transition arcs
//! with tokens on arcs (`.marking { <a+,b+> }`), which is exactly the
//! Signal Graph model of the paper. Explicit places and choice are
//! rejected with a clear error.
//!
//! Because the classic format carries no timing, the parser accepts an
//! extension directive `.delay <src> <dst> <value>` assigning a delay to an
//! arc, plus a default delay for unannotated arcs. The writer emits the
//! same dialect, so `parse → write → parse` round-trips.
//!
//! ```
//! use tsg_stg::{parse_stg, StgOptions};
//!
//! let text = "\
//! .model toggle
//! .outputs x
//! .graph
//! x+ x-
//! x- x+
//! .marking { <x-,x+> }
//! .end
//! ";
//! let sg = parse_stg(text, StgOptions::default())?;
//! assert_eq!(sg.event_count(), 2);
//! # Ok::<(), tsg_stg::StgError>(())
//! ```

mod examples;
mod reader;
mod writer;

pub use examples::{EXAMPLE_MULTI_EVENT, EXAMPLE_OSCILLATOR, EXAMPLE_PIPELINE_2PH, EXAMPLE_RING5};
pub use reader::{parse_stg, StgError, StgOptions};
pub use writer::{write_stg, WriteStgError};
