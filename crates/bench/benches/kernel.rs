//! Kernel microbenchmarks: the event-queue backends and the parallel
//! analysis pipeline.
//!
//! ```sh
//! cargo bench --bench kernel
//! cargo bench --bench kernel -- --test     # CI smoke mode
//! ```
//!
//! Four groups:
//!
//! * `queue_push_pop` — bulk push then full drain, per backend, over a
//!   queue-depth sweep: the raw `O(log n)` vs `O(1)` story.
//! * `queue_hold` — the classic hold model (pop one, push one a bounded
//!   delay ahead) at steady depth: the access pattern every simulator in
//!   the workspace actually generates.
//! * `dispatch_overhead` — the runtime-selectable `AnyQueue` against the
//!   static heap backend, same workload: the price of the CLI's
//!   `--queue` flag.
//! * `wide_vs_scalar` — the lane-batched lockstep kernel against the
//!   scalar reference engine on the tracked ring/torus/random sweeps
//!   (b ∈ {4, 8, 32}), asserted bit-identical before any timing.
//! * `simd_vs_portable` — the same sweeps with the wide kernel pinned
//!   to each backend this CPU offers (portable, then SSE2/AVX2 when
//!   detected), every backend asserted bit-identical down to each lane
//!   matrix cell before any timing.
//! * `analysis` — `CycleTimeAnalysis::run` vs `analyze_batch` over a
//!   64-graph `tsg_gen` sweep at 1/2/4/8 threads.
//! * `edit_loop` — the bottleneck-hunting loop: a delay-edit script
//!   replayed as from-scratch re-analyses vs one warm
//!   `AnalysisSession` at 1/8/64 edits.
//!
//! The `bench` binary runs the same workloads outside Criterion and
//! writes machine-readable `BENCH_kernel.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tsg_bench::{
    assert_backends_match, assert_wide_matches_scalar, available_backends, edit_loop_graph,
    edit_script, hold, push_pop, wide_scenarios, DELAY_BOUND,
};
use tsg_core::analysis::initiated::SimArena;
use tsg_core::analysis::session::AnalysisSession;
use tsg_core::analysis::wide::AnalysisArena;
use tsg_core::analysis::CycleTimeAnalysis;
use tsg_core::SignalGraph;
use tsg_sim::{AnyQueue, BatchRunner, BinaryHeapQueue, CalendarQueue, EventQueue, QueueKind};

fn bench_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_push_pop");
    for depth in [64usize, 1024, 16384] {
        group.bench_with_input(
            BenchmarkId::new("binary_heap", depth),
            &depth,
            |b, &depth| b.iter(|| push_pop(EventQueue::with_capacity(depth), black_box(depth))),
        );
        group.bench_with_input(BenchmarkId::new("calendar", depth), &depth, |b, &depth| {
            b.iter(|| {
                push_pop(
                    EventQueue::with_backend(CalendarQueue::with_delay_bound(DELAY_BOUND)),
                    black_box(depth),
                )
            })
        });
    }
    group.finish();
}

fn bench_hold(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_hold");
    for depth in [64usize, 1024, 16384] {
        group.bench_with_input(
            BenchmarkId::new("binary_heap", depth),
            &depth,
            |b, &depth| {
                b.iter(|| {
                    hold(
                        EventQueue::with_capacity(depth),
                        black_box(depth),
                        4 * depth,
                    )
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("calendar", depth), &depth, |b, &depth| {
            b.iter(|| {
                hold(
                    EventQueue::with_backend(CalendarQueue::with_delay_bound(DELAY_BOUND)),
                    black_box(depth),
                    4 * depth,
                )
            })
        });
    }
    group.finish();
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_overhead");
    let depth = 1024usize;
    group.bench_function("static_heap", |b| {
        b.iter(|| {
            hold(
                EventQueue::with_backend(BinaryHeapQueue::with_capacity(depth)),
                black_box(depth),
                4 * depth,
            )
        })
    });
    group.bench_function("any_heap", |b| {
        b.iter(|| {
            hold(
                EventQueue::with_backend(AnyQueue::of(QueueKind::Heap)),
                black_box(depth),
                4 * depth,
            )
        })
    });
    group.finish();
}

/// The 64-graph `tsg_gen` sweep of the acceptance criterion.
fn sweep_graphs() -> Vec<SignalGraph> {
    (0..64u64)
        .map(|seed| tsg_gen::random_live_tsg(seed, tsg_gen::RandomTsgConfig::default()))
        .collect()
}

fn bench_wide_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("wide_vs_scalar");
    let mut scalar_arena = SimArena::new();
    let mut wide_arena = AnalysisArena::new();
    for (name, sg) in wide_scenarios() {
        // A speedup of a wrong answer is not a speedup: bit-identity
        // (full analyses and every lane matrix cell) is asserted once
        // per scenario before any timing.
        assert_wide_matches_scalar(&sg, &name);

        group.bench_with_input(BenchmarkId::new("scalar", &name), &sg, |bench, sg| {
            bench.iter(|| {
                CycleTimeAnalysis::run_scalar_in(black_box(sg), None, &mut scalar_arena)
                    .unwrap()
                    .cycle_time()
                    .as_f64()
            })
        });
        group.bench_with_input(BenchmarkId::new("wide", &name), &sg, |bench, sg| {
            bench.iter(|| {
                CycleTimeAnalysis::run_in(black_box(sg), None, &mut wide_arena)
                    .unwrap()
                    .cycle_time()
                    .as_f64()
            })
        });
    }
    group.finish();
}

fn bench_simd_vs_portable(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_vs_portable");
    let backends = available_backends();
    let mut arenas: Vec<AnalysisArena> = backends
        .iter()
        .map(|&b| AnalysisArena::with_kernel(b))
        .collect();
    for (name, sg) in wide_scenarios() {
        // Every backend the CPU offers is asserted bit-identical —
        // analyses and each lane matrix cell — before any timing.
        assert_backends_match(&sg, &name);

        for (backend, arena) in backends.iter().zip(arenas.iter_mut()) {
            group.bench_with_input(BenchmarkId::new(backend.name(), &name), &sg, |bench, sg| {
                bench.iter(|| {
                    CycleTimeAnalysis::run_in(black_box(sg), None, arena)
                        .unwrap()
                        .cycle_time()
                        .as_f64()
                })
            });
        }
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let graphs = sweep_graphs();
    let mut group = c.benchmark_group("analysis");
    group.bench_function("sequential_64", |b| {
        b.iter(|| {
            graphs
                .iter()
                .map(|sg| CycleTimeAnalysis::run(sg).unwrap().cycle_time().as_f64())
                .sum::<f64>()
        })
    });
    for threads in [1usize, 2, 4, 8] {
        let runner = BatchRunner::with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("analyze_batch_64", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    CycleTimeAnalysis::analyze_batch(black_box(&graphs), &runner)
                        .into_iter()
                        .map(|a| a.unwrap().cycle_time().as_f64())
                        .sum::<f64>()
                })
            },
        );
    }
    group.finish();
}

fn bench_edit_loop(c: &mut Criterion) {
    let base = edit_loop_graph();
    let mut group = c.benchmark_group("edit_loop");
    for edits in [1usize, 8, 64] {
        let script = edit_script(&base, edits);
        group.bench_with_input(BenchmarkId::new("full_rerun", edits), &edits, |b, _| {
            b.iter(|| {
                let mut sg = base.clone();
                script
                    .iter()
                    .map(|e| {
                        sg.set_delay(e.arc, e.delay).unwrap();
                        CycleTimeAnalysis::run(black_box(&sg))
                            .unwrap()
                            .cycle_time()
                            .as_f64()
                    })
                    .sum::<f64>()
            })
        });
        // The open (one full analysis) is warm-up, excluded from the
        // measurement exactly as in the bench binary: each iteration
        // restores pristine state by cloning the opened session (a
        // memcpy of the warm matrices, no simulation).
        let pristine = AnalysisSession::open(base.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("session_edit", edits), &edits, |b, _| {
            b.iter(|| {
                let mut session = pristine.clone();
                script
                    .iter()
                    .map(|e| {
                        session.edit_delay(e.arc, e.delay).unwrap();
                        session.analysis().cycle_time().as_f64()
                    })
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = kernel;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_push_pop, bench_hold, bench_dispatch_overhead, bench_wide_vs_scalar, bench_simd_vs_portable, bench_analysis, bench_edit_loop
}
criterion_main!(kernel);
