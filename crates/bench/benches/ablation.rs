//! Ablation benchmarks for the design choices DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tsg_core::analysis::border::{exact_max_occurrence_period, minimum_cut_set};
use tsg_core::analysis::CycleTimeAnalysis;
use tsg_gen::{handshake_pipeline, PipelineConfig};

/// Simulation-length ablation: the default b periods (justified by the
/// border-set bound on ε_max) versus the tight exact ε_max — the saving
/// available when the structure is known, as Section VIII.C's "one period
/// suffices" remark exploits.
fn bench_period_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/period_bound");
    for stages in [4usize, 8] {
        let sg = handshake_pipeline(stages, PipelineConfig::default());
        let b_periods = sg.border_events().len() as u32;
        let min_cut = exact_max_occurrence_period(&sg, 1_000_000).unwrap_or(b_periods);
        group.bench_with_input(BenchmarkId::new("b_periods", stages), &sg, |bench, sg| {
            bench.iter(|| {
                CycleTimeAnalysis::run_with_periods(black_box(sg), Some(b_periods))
                    .unwrap()
                    .cycle_time()
                    .as_f64()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("exact_eps_periods", stages),
            &sg,
            |bench, sg| {
                bench.iter(|| {
                    CycleTimeAnalysis::run_with_periods(black_box(sg), Some(min_cut))
                        .unwrap()
                        .cycle_time()
                        .as_f64()
                })
            },
        );
    }
    group.finish();
}

/// Cost of the minimum-cut-set search itself (why the paper uses the free
/// border set instead).
fn bench_min_cut_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/min_cut_search");
    for stages in [2usize, 4] {
        let sg = handshake_pipeline(stages, PipelineConfig::default());
        group.bench_with_input(BenchmarkId::new("exact_fvs", stages), &sg, |b, sg| {
            b.iter(|| minimum_cut_set(black_box(sg), 64))
        });
        group.bench_with_input(BenchmarkId::new("border_set", stages), &sg, |b, sg| {
            b.iter(|| black_box(sg).border_events())
        });
    }
    group.finish();
}

/// Long-run simulation horizon needed to match the exact τ — the Figure 4
/// argument in benchmark form.
fn bench_longrun_horizon(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/longrun_horizon");
    let sg = tsg_gen::stack66();
    for periods in [8u32, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("simulate", periods),
            &periods,
            |b, &periods| {
                b.iter(|| tsg_baselines::longrun_estimate(black_box(&sg), periods).unwrap())
            },
        );
    }
    group.bench_function("exact_paper_algorithm", |b| {
        b.iter(|| {
            CycleTimeAnalysis::run(black_box(&sg))
                .unwrap()
                .cycle_time()
                .as_f64()
        })
    });
    group.finish();
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_period_bound, bench_min_cut_cost, bench_longrun_horizon
}
criterion_main!(ablation);
