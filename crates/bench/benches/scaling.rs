//! Scaling benchmarks for the O(b²m) complexity claim (Section VII) and
//! the comparison against the related-work baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tsg_core::analysis::CycleTimeAnalysis;
use tsg_gen::{handshake_pipeline, random_live_tsg, ring, torus, PipelineConfig, RandomTsgConfig};

/// Rings at fixed token count: m grows, b stays 2 — the paper's algorithm
/// should scale linearly.
fn bench_ring_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("complexity/ring_size_b2");
    for n in [64usize, 256, 1024, 4096] {
        let sg = ring(n, 2, 1.0);
        group.bench_with_input(BenchmarkId::new("paper", n), &sg, |b, sg| {
            b.iter(|| {
                CycleTimeAnalysis::run(black_box(sg))
                    .unwrap()
                    .cycle_time()
                    .as_f64()
            })
        });
        group.bench_with_input(BenchmarkId::new("howard", n), &sg, |b, sg| {
            b.iter(|| {
                tsg_baselines::howard_cycle_time(black_box(sg))
                    .unwrap()
                    .as_f64()
            })
        });
        group.bench_with_input(BenchmarkId::new("karp", n), &sg, |b, sg| {
            b.iter(|| {
                tsg_baselines::karp_cycle_time(black_box(sg))
                    .unwrap()
                    .as_f64()
            })
        });
        group.bench_with_input(BenchmarkId::new("lawler", n), &sg, |b, sg| {
            b.iter(|| {
                tsg_baselines::lawler_cycle_time(black_box(sg), 60)
                    .unwrap()
                    .as_f64()
            })
        });
    }
    group.finish();
}

/// Rings at fixed size with growing token count: b grows — the paper's
/// algorithm pays O(b²).
fn bench_ring_token_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("complexity/ring_tokens_n1024");
    for tokens in [1usize, 4, 16, 64] {
        let sg = ring(1024, tokens, 1.0);
        group.bench_with_input(BenchmarkId::new("paper", tokens), &sg, |b, sg| {
            b.iter(|| {
                CycleTimeAnalysis::run(black_box(sg))
                    .unwrap()
                    .cycle_time()
                    .as_f64()
            })
        });
        group.bench_with_input(BenchmarkId::new("howard", tokens), &sg, |b, sg| {
            b.iter(|| {
                tsg_baselines::howard_cycle_time(black_box(sg))
                    .unwrap()
                    .as_f64()
            })
        });
    }
    group.finish();
}

/// Handshake pipelines: realistic circuit-shaped graphs where b grows with
/// depth (b ≈ 3·stages).
fn bench_pipeline_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("complexity/pipeline");
    for stages in [4usize, 16, 64] {
        let sg = handshake_pipeline(stages, PipelineConfig::default());
        group.bench_with_input(BenchmarkId::new("paper", stages), &sg, |b, sg| {
            b.iter(|| {
                CycleTimeAnalysis::run(black_box(sg))
                    .unwrap()
                    .cycle_time()
                    .as_f64()
            })
        });
        group.bench_with_input(BenchmarkId::new("howard", stages), &sg, |b, sg| {
            b.iter(|| {
                tsg_baselines::howard_cycle_time(black_box(sg))
                    .unwrap()
                    .as_f64()
            })
        });
        group.bench_with_input(BenchmarkId::new("karp", stages), &sg, |b, sg| {
            b.iter(|| {
                tsg_baselines::karp_cycle_time(black_box(sg))
                    .unwrap()
                    .as_f64()
            })
        });
    }
    group.finish();
}

/// 2-D torus graphs: b = h + w − 1 grows with the side length while m
/// grows quadratically — the regime between rings (b fixed) and saturated
/// pipelines (b ∝ n).
fn bench_torus_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("complexity/torus");
    for side in [4usize, 8, 16] {
        let sg = torus(side, side, 2.0, 3.0);
        group.bench_with_input(BenchmarkId::new("paper", side), &sg, |b, sg| {
            b.iter(|| {
                CycleTimeAnalysis::run(black_box(sg))
                    .unwrap()
                    .cycle_time()
                    .as_f64()
            })
        });
        group.bench_with_input(BenchmarkId::new("howard", side), &sg, |b, sg| {
            b.iter(|| {
                tsg_baselines::howard_cycle_time(black_box(sg))
                    .unwrap()
                    .as_f64()
            })
        });
    }
    group.finish();
}

/// Random dense graphs — the adversarial case for cycle enumeration, which
/// explodes while the polynomial algorithms stay flat.
fn bench_random_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("complexity/random_dense");
    let cfg = RandomTsgConfig {
        events: 24,
        tokens: 6,
        chords: 72,
        max_delay: 9,
        with_prefix: false,
    };
    let sg = random_live_tsg(1, cfg);
    group.bench_function("paper", |b| {
        b.iter(|| {
            CycleTimeAnalysis::run(black_box(&sg))
                .unwrap()
                .cycle_time()
                .as_f64()
        })
    });
    group.bench_function("howard", |b| {
        b.iter(|| {
            tsg_baselines::howard_cycle_time(black_box(&sg))
                .unwrap()
                .as_f64()
        })
    });
    group.bench_function("enumeration", |b| {
        // the cap keeps the bench bounded; hitting it IS the result
        b.iter(|| tsg_baselines::enumerate_cycle_time(black_box(&sg), 200_000))
    });
    group.finish();
}

criterion_group! {
    name = scaling;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_ring_size_sweep, bench_ring_token_sweep, bench_pipeline_sweep, bench_torus_sweep, bench_random_dense
}
criterion_main!(scaling);
