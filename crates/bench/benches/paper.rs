//! One Criterion benchmark per paper artefact (see DESIGN.md §3).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tsg_core::analysis::initiated::InitiatedSimulation;
use tsg_core::analysis::sim::TimingSimulation;
use tsg_core::analysis::CycleTimeAnalysis;

/// perf8b — Section VIII.B: full analysis of the 66-event / 112-arc
/// stack-class graph (paper: 74 ms on a DEC 5000).
fn bench_stack66(c: &mut Criterion) {
    let sg = tsg_gen::stack66();
    c.bench_function("perf8b/stack66_cycle_time", |b| {
        b.iter(|| {
            CycleTimeAnalysis::run(black_box(&sg))
                .unwrap()
                .cycle_time()
                .as_f64()
        })
    });
}

/// fig1b — netlist → Signal Graph extraction of the oscillator.
fn bench_extraction(c: &mut Criterion) {
    let nl = tsg_circuit::library::c_element_oscillator();
    c.bench_function("fig1b/extract_oscillator", |b| {
        b.iter(|| {
            tsg_extract::extract(black_box(&nl), tsg_extract::ExtractOptions::default()).unwrap()
        })
    });
}

/// ex3/fig1c — plain timing simulation of the oscillator.
fn bench_timing_simulation(c: &mut Criterion) {
    let sg = tsg_circuit::library::c_element_oscillator_tsg();
    c.bench_function("ex3/timing_simulation_8_periods", |b| {
        b.iter(|| TimingSimulation::run(black_box(&sg), 8).horizon())
    });
}

/// tab8c — the two border-initiated simulations of Section VIII.C.
fn bench_initiated(c: &mut Criterion) {
    let sg = tsg_circuit::library::c_element_oscillator_tsg();
    let ap = sg.event_by_label("a+").unwrap();
    c.bench_function("tab8c/initiated_simulation", |b| {
        b.iter(|| {
            InitiatedSimulation::run(black_box(&sg), ap, 2)
                .unwrap()
                .distance_series()
        })
    });
}

/// tab8d — extraction + analysis of the 5-stage Muller ring.
fn bench_muller_ring(c: &mut Criterion) {
    let nl = tsg_circuit::library::muller_ring(5, 1.0);
    c.bench_function("tab8d/muller5_extract_and_analyze", |b| {
        b.iter(|| {
            let sg = tsg_extract::extract(black_box(&nl), tsg_extract::ExtractOptions::default())
                .unwrap();
            CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64()
        })
    });
}

/// ex56 — exhaustive cycle enumeration on the oscillator (the approach the
/// algorithm replaces).
fn bench_enumeration(c: &mut Criterion) {
    let sg = tsg_circuit::library::c_element_oscillator_tsg();
    c.bench_function("ex56/enumerate_cycles", |b| {
        b.iter(|| tsg_baselines::enumerate_cycle_time(black_box(&sg), 1000).unwrap())
    });
}

/// fig4 — the 40-period δ-series of on- and off-cycle events.
fn bench_asymptotic(c: &mut Criterion) {
    let sg = tsg_circuit::library::c_element_oscillator_tsg();
    let bp = sg.event_by_label("b+").unwrap();
    c.bench_function("fig4/delta_series_40", |b| {
        b.iter(|| tsg_core::analysis::asymptotic::delta_series(black_box(&sg), bp, 40).unwrap())
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_stack66, bench_extraction, bench_timing_simulation, bench_initiated, bench_muller_ring, bench_enumeration, bench_asymptotic
}
criterion_main!(paper);
