//! `bench` — the kernel performance tracker.
//!
//! ```text
//! bench [--quick] [--threads N] [--out PATH]
//! ```
//!
//! Runs the kernel's hot paths outside Criterion — per-backend queue
//! throughput (bulk push/pop and the steady-state hold model), the
//! lane-batched wide kernel against the scalar reference engine on the
//! tracked ring/torus/random sweeps (`wide_vs_scalar`), the explicit
//! SIMD backends against the portable loop on the same sweeps
//! (`simd_vs_portable`, with the detected CPU feature level recorded),
//! the lane-batched Monte-Carlo long-run estimator against the
//! sequential per-seed loop (`longrun_lanes`), the delay-scenario
//! matrix — min/typ/max corners and seeded sample sets — swept as
//! extra lanes of one lockstep pass against per-scenario re-analysis
//! (`corner_sweep`), and
//! `CycleTimeAnalysis::analyze_batch` against the sequential loop on a
//! 64-graph `tsg_gen` sweep, the warm-session delay-edit loop
//! (`edit_loop`), and the structural-edit loop (`structural_edit`):
//! mixed split/nudge scripts replayed as from-scratch re-analyses vs
//! one session resuming through `edit_structure` — and writes the
//! numbers to
//! `BENCH_kernel.json` (see the README's "Performance" section for how
//! to read it). CI runs `bench --quick` on every PR, so the perf
//! trajectory of the queue backends, the wide analysis kernel and the
//! batch pipeline is recorded from PR 2 on.
//!
//! Every analysis result is asserted bit-identical between the
//! sequential and batched pipelines before any number is reported —
//! per lane-matrix cell for the SIMD backends, per sorted estimate
//! distribution for the Monte-Carlo lanes: a speedup of a wrong answer
//! is not a speedup.

use std::fmt::Write as _;
use std::time::Instant;

use tsg_baselines::{longrun_estimate_mc, longrun_estimate_mc_lanes};
use tsg_bench::{
    apply_graph_edits, assert_backends_match, assert_scenarios_match_scalar,
    assert_wide_matches_scalar, available_backends, edit_loop_graph, edit_script, hold, push_pop,
    structural_edit_script, wide_scenarios, DELAY_BOUND, EDIT_LOOP_WORKLOAD,
};
use tsg_core::analysis::initiated::SimArena;
use tsg_core::analysis::session::AnalysisSession;
use tsg_core::analysis::wide::AnalysisArena;
use tsg_core::analysis::{Corner, CycleTimeAnalysis, KernelBackend, ScenarioSet};
use tsg_core::SignalGraph;
use tsg_sim::{BatchRunner, CalendarQueue, EventQueue};

/// Best-of-`reps` wall time for `f`, which reports how many queue
/// operations it performed.
fn best_of(reps: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut ops = 0;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        ops = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, ops)
}

/// Per-call seconds of `f`, timed over a calibrated batch: `f` loops
/// until a sample spans ~2 ms of wall time, best of `reps` samples —
/// single-call `Instant` stamps are too coarse for the µs-scale
/// analyses of the wide-vs-scalar sweep.
fn time_per_call(reps: usize, mut f: impl FnMut() -> usize) -> f64 {
    let t = Instant::now();
    let mut sink = f();
    let once = t.elapsed().as_secs_f64().max(1e-9);
    let iters = ((2e-3 / once) as usize).clamp(1, 1_000_000);
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        for _ in 0..iters {
            sink = sink.wrapping_add(f());
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    std::hint::black_box(sink);
    best
}

struct QueueRow {
    backend: &'static str,
    workload: &'static str,
    depth: usize,
    ops: usize,
    seconds: f64,
}

impl QueueRow {
    fn mops(&self) -> f64 {
        self.ops as f64 / self.seconds.max(1e-12) / 1e6
    }
}

fn measure_queues(depths: &[usize], reps: usize) -> Vec<QueueRow> {
    let mut rows = Vec::new();
    for &depth in depths {
        let (heap_pp, ops) = best_of(reps, || push_pop(EventQueue::with_capacity(depth), depth));
        rows.push(QueueRow {
            backend: "binary_heap",
            workload: "push_pop",
            depth,
            ops,
            seconds: heap_pp,
        });
        let (cal_pp, ops) = best_of(reps, || {
            push_pop(
                EventQueue::with_backend(CalendarQueue::with_delay_bound(DELAY_BOUND)),
                depth,
            )
        });
        rows.push(QueueRow {
            backend: "calendar",
            workload: "push_pop",
            depth,
            ops,
            seconds: cal_pp,
        });
        let hold_ops = 4 * depth;
        let (heap_h, ops) = best_of(reps, || {
            hold(EventQueue::with_capacity(depth), depth, hold_ops)
        });
        rows.push(QueueRow {
            backend: "binary_heap",
            workload: "hold",
            depth,
            ops,
            seconds: heap_h,
        });
        let (cal_h, ops) = best_of(reps, || {
            hold(
                EventQueue::with_backend(CalendarQueue::with_delay_bound(DELAY_BOUND)),
                depth,
                hold_ops,
            )
        });
        rows.push(QueueRow {
            backend: "calendar",
            workload: "hold",
            depth,
            ops,
            seconds: cal_h,
        });
    }
    rows
}

struct BatchRow {
    threads: usize,
    seconds: f64,
    speedup: f64,
}

struct WideRow {
    scenario: String,
    b: usize,
    scalar_seconds: f64,
    wide_seconds: f64,
    speedup: f64,
}

/// The tentpole head-to-head: the `b` border simulations run one scalar
/// arena at a time vs all lanes in one lockstep wide pass, on the
/// tracked ring/torus/random sweeps. Before timing, every scenario is
/// asserted bit-identical — full analyses (times, critical cycle,
/// backtracked parents) *and* every cell of every lane's time matrix
/// against the scalar kernel.
fn measure_wide_vs_scalar(reps: usize) -> Vec<WideRow> {
    let mut rows = Vec::new();
    let mut scalar_arena = SimArena::new();
    let mut wide_arena = AnalysisArena::new();
    for (name, sg) in wide_scenarios() {
        let b = sg.border_events().len();

        // Correctness gate first: a speedup of a wrong answer is not a
        // speedup.
        assert_wide_matches_scalar(&sg, &name);

        // Then the head-to-head, each engine on its own warm arena.
        let scalar_seconds = time_per_call(reps, || {
            let a = CycleTimeAnalysis::run_scalar_in(&sg, None, &mut scalar_arena).expect("live");
            a.records().len()
        });
        let wide_seconds = time_per_call(reps, || {
            let a = CycleTimeAnalysis::run_in(&sg, None, &mut wide_arena).expect("live");
            a.records().len()
        });
        rows.push(WideRow {
            scenario: name,
            b,
            scalar_seconds,
            wide_seconds,
            speedup: scalar_seconds / wide_seconds.max(1e-12),
        });
    }
    rows
}

struct SimdRow {
    scenario: String,
    b: usize,
    backend: &'static str,
    seconds: f64,
    /// Portable-loop seconds over this backend's seconds; 1.0 for the
    /// portable row itself.
    speedup: f64,
}

/// The explicit-SIMD head-to-head: the same tracked sweeps as
/// `wide_vs_scalar`, but with the wide kernel pinned to each backend
/// this CPU offers. Before timing, every backend is asserted
/// bit-identical to the portable loop down to each lane matrix cell.
fn measure_simd_vs_portable(reps: usize) -> Vec<SimdRow> {
    let backends = available_backends();
    let mut arenas: Vec<AnalysisArena> = backends
        .iter()
        .map(|&b| AnalysisArena::with_kernel(b))
        .collect();
    let mut rows = Vec::new();
    for (name, sg) in wide_scenarios() {
        let b = sg.border_events().len();
        assert_backends_match(&sg, &name);

        let mut portable_seconds = f64::INFINITY;
        for (backend, arena) in backends.iter().zip(arenas.iter_mut()) {
            let seconds = time_per_call(reps, || {
                let a = CycleTimeAnalysis::run_in(&sg, None, arena).expect("live");
                a.records().len()
            });
            if *backend == KernelBackend::Portable {
                portable_seconds = seconds;
            }
            rows.push(SimdRow {
                scenario: name.clone(),
                b,
                backend: backend.name(),
                seconds,
                speedup: portable_seconds / seconds.max(1e-12),
            });
        }
    }
    rows
}

struct CornerRow {
    workload: String,
    kind: &'static str,
    scenarios: usize,
    per_scenario_seconds: f64,
    sweep_seconds: f64,
    speedup: f64,
}

/// The corner-sweep head-to-head of PR 9: `s` delay scenarios analysed
/// as extra lanes of one lockstep wide pass
/// (`CycleTimeAnalysis::run_scenarios_in`) vs `s` per-scenario
/// re-analyses on the same warm arena. The reweighted graphs of the
/// baseline arm are prebuilt outside the timed region, so both sides
/// time pure analysis. Before timing, every scenario lane is asserted
/// bit-identical to a from-scratch analysis of its reweighted graph.
fn measure_corner_sweep(reps: usize) -> Vec<CornerRow> {
    // Small border counts are the representative corner-analysis shape
    // (and where scenario lanes pay most: a per-scenario re-analysis at
    // b lanes under-fills the SIMD kernel that b·s lanes saturate); the
    // b=32 torus tracks the saturation point where the baseline is
    // already fully lane-amortised.
    let workloads: [(String, SignalGraph); 3] = [
        ("ring n=1024 b=4".to_owned(), tsg_gen::ring(1024, 4, 1.0)),
        ("ring n=1024 b=8".to_owned(), tsg_gen::ring(1024, 8, 1.0)),
        (
            "torus 16x17 b=32".to_owned(),
            tsg_gen::torus(16, 17, 2.0, 3.0),
        ),
    ];
    let mut arena = AnalysisArena::new();
    let mut rows = Vec::new();
    for (workload, sg) in &workloads {
        for s in [3usize, 8, 32] {
            // s = 3 is the classic min/typ/max corner sweep; the larger
            // counts are seeded Monte-Carlo scenario matrices.
            let (kind, set) = if s == 3 {
                let corners = [Corner::Min, Corner::Typ, Corner::Max];
                (
                    "corners",
                    ScenarioSet::corners(10.0, &corners, sg.arc_count()).expect("valid spec"),
                )
            } else {
                (
                    "samples",
                    ScenarioSet::samples(s, 7, 10.0, sg.arc_count()).expect("valid spec"),
                )
            };

            // Correctness gate first: a speedup of a wrong answer is
            // not a speedup.
            assert_scenarios_match_scalar(sg, &set, workload);

            // Re-analysis per scenario means exactly what a caller
            // without `run_scenarios` would do: materialise the
            // scenario's reweighted graph, then analyse it — both
            // timed, both on the same warm arena as the sweep arm.
            let per_scenario_seconds = time_per_call(reps, || {
                (0..set.len())
                    .map(|j| {
                        let g = set.reweighted(sg, j);
                        CycleTimeAnalysis::run_in(&g, None, &mut arena)
                            .expect("live")
                            .records()
                            .len()
                    })
                    .sum::<usize>()
            });
            let sweep_seconds = time_per_call(reps, || {
                CycleTimeAnalysis::run_scenarios_in(sg, &set, None, &mut arena, None)
                    .expect("live")
                    .len()
            });
            rows.push(CornerRow {
                workload: workload.clone(),
                kind,
                scenarios: s,
                per_scenario_seconds,
                sweep_seconds,
                speedup: per_scenario_seconds / sweep_seconds.max(1e-12),
            });
        }
    }
    rows
}

struct LongrunRow {
    workload: String,
    lanes: usize,
    periods: u32,
    sequential_seconds: f64,
    lanes_seconds: f64,
    speedup: f64,
}

/// The lane-batched Monte-Carlo long-run estimator vs the sequential
/// per-seed loop. Before timing, the batch's estimate distribution is
/// asserted equal (as sorted bit patterns) to the sequential one — on
/// this estimator the lanes reproduce the per-seed streams bitwise, so
/// sorted equality is the weakest gate that still pins every value.
fn measure_longrun_lanes(reps: usize, periods: u32) -> Vec<LongrunRow> {
    const JITTER: f64 = 0.1;
    let workloads: [(String, SignalGraph); 2] = [
        ("ring n=64 tokens=8".to_owned(), tsg_gen::ring(64, 8, 2.0)),
        (
            "random seed=7".to_owned(),
            tsg_gen::random_live_tsg(7, tsg_gen::RandomTsgConfig::default()),
        ),
    ];
    let mut rows = Vec::new();
    for (workload, sg) in &workloads {
        for lanes in [4usize, 8, 32] {
            let seeds: Vec<u64> = (0..lanes as u64).collect();

            // Distribution-equality gate first.
            let mut batch: Vec<u64> = longrun_estimate_mc_lanes(sg, periods, JITTER, &seeds)
                .iter()
                .map(|l| l.estimate.map_or(u64::MAX, f64::to_bits))
                .collect();
            let mut seq: Vec<u64> = seeds
                .iter()
                .map(|&s| {
                    longrun_estimate_mc(sg, periods, JITTER, s).map_or(u64::MAX, f64::to_bits)
                })
                .collect();
            batch.sort_unstable();
            seq.sort_unstable();
            assert_eq!(
                batch, seq,
                "{workload} K={lanes}: lane batch distribution diverged from sequential seeds"
            );

            let sequential_seconds = time_per_call(reps, || {
                seeds
                    .iter()
                    .filter(|&&s| longrun_estimate_mc(sg, periods, JITTER, s).is_some())
                    .count()
            });
            let lanes_seconds = time_per_call(reps, || {
                longrun_estimate_mc_lanes(sg, periods, JITTER, &seeds)
                    .iter()
                    .filter(|l| l.estimate.is_some())
                    .count()
            });
            rows.push(LongrunRow {
                workload: workload.clone(),
                lanes,
                periods,
                sequential_seconds,
                lanes_seconds,
                speedup: sequential_seconds / lanes_seconds.max(1e-12),
            });
        }
    }
    rows
}

/// The 64-graph sweep of the acceptance criterion: sequential loop vs
/// `analyze_batch` at several thread counts, asserted bit-identical.
fn measure_analysis(
    graphs: &[SignalGraph],
    thread_counts: &[usize],
    reps: usize,
) -> (f64, Vec<BatchRow>) {
    let reference: Vec<(u64, u32)> = graphs
        .iter()
        .map(|sg| {
            let a = CycleTimeAnalysis::run(sg).expect("generated graphs are live");
            (a.cycle_time().as_f64().to_bits(), a.cycle_time().periods())
        })
        .collect();

    let mut seq_best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let got: Vec<(u64, u32)> = graphs
            .iter()
            .map(|sg| {
                let a = CycleTimeAnalysis::run(sg).expect("live");
                (a.cycle_time().as_f64().to_bits(), a.cycle_time().periods())
            })
            .collect();
        seq_best = seq_best.min(t.elapsed().as_secs_f64());
        assert_eq!(got, reference);
    }

    let mut rows = Vec::new();
    for &threads in thread_counts {
        let runner = BatchRunner::with_threads(threads);
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t = Instant::now();
            let got: Vec<(u64, u32)> = CycleTimeAnalysis::analyze_batch(graphs, &runner)
                .into_iter()
                .map(|a| {
                    let a = a.expect("live");
                    (a.cycle_time().as_f64().to_bits(), a.cycle_time().periods())
                })
                .collect();
            best = best.min(t.elapsed().as_secs_f64());
            assert_eq!(
                got, reference,
                "analyze_batch diverged at {threads} threads"
            );
        }
        rows.push(BatchRow {
            threads,
            seconds: best,
            speedup: seq_best / best.max(1e-12),
        });
    }
    (seq_best, rows)
}

struct EditLoopRow {
    edits: usize,
    full_seconds: f64,
    session_seconds: f64,
    speedup: f64,
    rows: usize,
    rows_total: usize,
}

/// The bottleneck-hunting loop of the acceptance criterion: a delay
/// edit script replayed as from-scratch re-analyses vs one warm
/// [`AnalysisSession`], asserted bit-identical edit by edit.
fn measure_edit_loop(edit_counts: &[usize], reps: usize) -> Vec<EditLoopRow> {
    let base = edit_loop_graph();
    let mut out = Vec::new();
    for &edits in edit_counts {
        let script = edit_script(&base, edits);

        let mut full_best = f64::INFINITY;
        let mut reference: Vec<u64> = Vec::new();
        for _ in 0..reps.max(1) {
            let mut sg = base.clone();
            let t = Instant::now();
            let taus: Vec<u64> = script
                .iter()
                .map(|e| {
                    sg.set_delay(e.arc, e.delay).expect("valid edit");
                    CycleTimeAnalysis::run(&sg)
                        .expect("ring stays live")
                        .cycle_time()
                        .as_f64()
                        .to_bits()
                })
                .collect();
            full_best = full_best.min(t.elapsed().as_secs_f64());
            reference = taus;
        }

        let mut session_best = f64::INFINITY;
        let (mut rows, mut rows_total) = (0usize, 0usize);
        for _ in 0..reps.max(1) {
            // The open (one full analysis) is untimed warm-up: the
            // scenario under measurement is the edit loop a live
            // session serves.
            let mut session = AnalysisSession::open(base.clone()).expect("ring is live");
            (rows, rows_total) = (0, 0);
            let t = Instant::now();
            let taus: Vec<u64> = script
                .iter()
                .map(|e| {
                    let delta = session.edit_delay(e.arc, e.delay).expect("valid edit");
                    rows += delta.rows;
                    rows_total += delta.rows_total;
                    session.analysis().cycle_time().as_f64().to_bits()
                })
                .collect();
            session_best = session_best.min(t.elapsed().as_secs_f64());
            assert_eq!(
                taus, reference,
                "session edits diverged from from-scratch re-analysis"
            );
        }

        out.push(EditLoopRow {
            edits,
            full_seconds: full_best,
            session_seconds: session_best,
            speedup: full_best / session_best.max(1e-12),
            rows,
            rows_total,
        });
    }
    out
}

/// The design-exploration loop of PR 8: a mixed structural script
/// (pipeline-stage splits interleaved with delay nudges) replayed as
/// from-scratch re-analyses of a mutated graph clone vs one warm
/// [`AnalysisSession`] resuming through
/// [`edit_structure`](AnalysisSession::edit_structure) — remapping its
/// lanes onto each batch's new border set instead of reseeding — and
/// asserted bit-identical batch by batch.
fn measure_structural_edit_loop(batch_counts: &[usize], reps: usize) -> Vec<EditLoopRow> {
    let base = edit_loop_graph();
    let mut out = Vec::new();
    for &batches in batch_counts {
        let script = structural_edit_script(&base, batches);

        let mut full_best = f64::INFINITY;
        let mut reference: Vec<u64> = Vec::new();
        for _ in 0..reps.max(1) {
            let mut sg = base.clone();
            let t = Instant::now();
            let taus: Vec<u64> = script
                .iter()
                .map(|batch| {
                    apply_graph_edits(&mut sg, batch);
                    CycleTimeAnalysis::run(&sg)
                        .expect("script keeps the ring live")
                        .cycle_time()
                        .as_f64()
                        .to_bits()
                })
                .collect();
            full_best = full_best.min(t.elapsed().as_secs_f64());
            reference = taus;
        }

        let mut session_best = f64::INFINITY;
        let (mut rows, mut rows_total) = (0usize, 0usize);
        for _ in 0..reps.max(1) {
            let mut session = AnalysisSession::open(base.clone()).expect("ring is live");
            (rows, rows_total) = (0, 0);
            let t = Instant::now();
            let taus: Vec<u64> = script
                .iter()
                .map(|batch| {
                    let delta = session.edit_structure(batch).expect("valid batch");
                    rows += delta.rows;
                    rows_total += delta.rows_total;
                    session.analysis().cycle_time().as_f64().to_bits()
                })
                .collect();
            session_best = session_best.min(t.elapsed().as_secs_f64());
            assert_eq!(
                taus, reference,
                "structural session edits diverged from from-scratch re-analysis"
            );
        }

        out.push(EditLoopRow {
            edits: batches,
            full_seconds: full_best,
            session_seconds: session_best,
            speedup: full_best / session_best.max(1e-12),
            rows,
            rows_total,
        });
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn json_report(
    quick: bool,
    queue_rows: &[QueueRow],
    graphs: usize,
    seq_seconds: f64,
    batch_rows: &[BatchRow],
    edit_rows: &[EditLoopRow],
    struct_rows: &[EditLoopRow],
    wide_rows: &[WideRow],
    simd_rows: &[SimdRow],
    longrun_rows: &[LongrunRow],
    corner_rows: &[CornerRow],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"tsg-bench-kernel/1\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(
        out,
        "  \"threads_available\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    // The CPU feature level the auto dispatcher selected (honouring a
    // TSG_KERNEL override), plus every backend this CPU can run — CI
    // greps these to assert SIMD was selected or explicitly reported
    // unavailable.
    let _ = writeln!(
        out,
        "  \"kernel_detected\": \"{}\",",
        KernelBackend::detect().name()
    );
    let _ = writeln!(
        out,
        "  \"kernels_available\": [{}],",
        available_backends()
            .iter()
            .map(|b| format!("\"{}\"", b.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"queue\": [");
    for (i, r) in queue_rows.iter().enumerate() {
        let comma = if i + 1 < queue_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"backend\": \"{}\", \"workload\": \"{}\", \"depth\": {}, \"ops\": {}, \
             \"seconds\": {:.9}, \"mops_per_sec\": {:.3}}}{comma}",
            r.backend,
            r.workload,
            r.depth,
            r.ops,
            r.seconds,
            r.mops()
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"wide_vs_scalar\": {{");
    let _ = writeln!(out, "    \"bit_identical\": true,");
    let _ = writeln!(out, "    \"sweeps\": [");
    for (i, r) in wide_rows.iter().enumerate() {
        let comma = if i + 1 < wide_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"scenario\": \"{}\", \"b\": {}, \"scalar_seconds\": {:.9}, \
             \"wide_seconds\": {:.9}, \"speedup\": {:.3}}}{comma}",
            r.scenario, r.b, r.scalar_seconds, r.wide_seconds, r.speedup
        );
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"simd_vs_portable\": {{");
    let _ = writeln!(out, "    \"bit_identical\": true,");
    let _ = writeln!(out, "    \"sweeps\": [");
    for (i, r) in simd_rows.iter().enumerate() {
        let comma = if i + 1 < simd_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"scenario\": \"{}\", \"b\": {}, \"backend\": \"{}\", \
             \"seconds\": {:.9}, \"speedup_vs_portable\": {:.3}}}{comma}",
            r.scenario, r.b, r.backend, r.seconds, r.speedup
        );
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"longrun_lanes\": {{");
    let _ = writeln!(out, "    \"distribution_equal\": true,");
    let _ = writeln!(out, "    \"sweeps\": [");
    for (i, r) in longrun_rows.iter().enumerate() {
        let comma = if i + 1 < longrun_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"workload\": \"{}\", \"lanes\": {}, \"periods\": {}, \
             \"sequential_seconds\": {:.9}, \"lanes_seconds\": {:.9}, \"speedup\": {:.3}}}{comma}",
            r.workload, r.lanes, r.periods, r.sequential_seconds, r.lanes_seconds, r.speedup
        );
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"edit_loop\": {{");
    let _ = writeln!(out, "    \"workload\": \"{EDIT_LOOP_WORKLOAD}\",");
    let _ = writeln!(out, "    \"bit_identical\": true,");
    let _ = writeln!(out, "    \"sweeps\": [");
    for (i, r) in edit_rows.iter().enumerate() {
        let comma = if i + 1 < edit_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"edits\": {}, \"full_seconds\": {:.9}, \"session_seconds\": {:.9}, \
             \"speedup\": {:.3}, \"rows_resimulated\": {}, \"rows_full\": {}}}{comma}",
            r.edits, r.full_seconds, r.session_seconds, r.speedup, r.rows, r.rows_total
        );
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"structural_edit\": {{");
    let _ = writeln!(out, "    \"workload\": \"{EDIT_LOOP_WORKLOAD}\",");
    let _ = writeln!(out, "    \"bit_identical\": true,");
    let _ = writeln!(out, "    \"sweeps\": [");
    for (i, r) in struct_rows.iter().enumerate() {
        let comma = if i + 1 < struct_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"batches\": {}, \"full_seconds\": {:.9}, \"session_seconds\": {:.9}, \
             \"speedup\": {:.3}, \"rows_resimulated\": {}, \"rows_full\": {}}}{comma}",
            r.edits, r.full_seconds, r.session_seconds, r.speedup, r.rows, r.rows_total
        );
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"corner_sweep\": {{");
    let _ = writeln!(out, "    \"bit_identical\": true,");
    let _ = writeln!(out, "    \"sweeps\": [");
    for (i, r) in corner_rows.iter().enumerate() {
        let comma = if i + 1 < corner_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"workload\": \"{}\", \"kind\": \"{}\", \"scenarios\": {}, \
             \"per_scenario_seconds\": {:.9}, \"sweep_seconds\": {:.9}, \"speedup\": {:.3}}}{comma}",
            r.workload, r.kind, r.scenarios, r.per_scenario_seconds, r.sweep_seconds, r.speedup
        );
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"analysis\": {{");
    let _ = writeln!(out, "    \"graphs\": {graphs},");
    let _ = writeln!(out, "    \"sequential_seconds\": {seq_seconds:.9},");
    let _ = writeln!(out, "    \"bit_identical\": true,");
    let _ = writeln!(out, "    \"analyze_batch\": [");
    for (i, r) in batch_rows.iter().enumerate() {
        let comma = if i + 1 < batch_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"threads\": {}, \"seconds\": {:.9}, \"speedup\": {:.3}}}{comma}",
            r.threads, r.seconds, r.speedup
        );
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut out_path = "BENCH_kernel.json".to_owned();
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        match args.get(pos + 1) {
            Some(p) if !p.starts_with("--") => out_path = p.clone(),
            _ => {
                eprintln!("--out needs a PATH");
                std::process::exit(1);
            }
        }
    }
    let threads_arg = match args.iter().position(|a| a == "--threads") {
        Some(pos) => match BatchRunner::parse_threads(args.get(pos + 1).map(String::as_str)) {
            Ok(n) => Some(n),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        },
        None => None,
    };

    let (depths, reps, graph_count): (&[usize], usize, usize) = if quick {
        (&[256, 4096], 2, 16)
    } else {
        (&[64, 1024, 16384, 131072], 5, 64)
    };

    eprintln!("measuring queue backends ({} depths)...", depths.len());
    let queue_rows = measure_queues(depths, reps);
    for r in &queue_rows {
        eprintln!(
            "  {:<12} {:<9} depth {:>7}: {:>9.3} Mops/s",
            r.backend,
            r.workload,
            r.depth,
            r.mops()
        );
    }

    eprintln!("measuring wide vs scalar border simulations...");
    let wide_rows = measure_wide_vs_scalar(reps);
    for r in &wide_rows {
        eprintln!(
            "  {:<22} b={:>3}: scalar {:>9.3} ms, wide {:>9.3} ms ({:.2}x)",
            r.scenario,
            r.b,
            r.scalar_seconds * 1e3,
            r.wide_seconds * 1e3,
            r.speedup
        );
    }

    eprintln!(
        "measuring simd vs portable (detected: {})...",
        KernelBackend::detect().name()
    );
    let simd_rows = measure_simd_vs_portable(reps);
    for r in &simd_rows {
        eprintln!(
            "  {:<22} b={:>3} {:<8}: {:>9.3} ms ({:.2}x vs portable)",
            r.scenario,
            r.b,
            r.backend,
            r.seconds * 1e3,
            r.speedup
        );
    }

    let mc_periods = if quick { 32 } else { 96 };
    eprintln!("measuring lane-batched Monte-Carlo long-run estimation...");
    let longrun_rows = measure_longrun_lanes(reps, mc_periods);
    for r in &longrun_rows {
        eprintln!(
            "  {:<18} K={:>2}: sequential {:>8.3} ms, lanes {:>8.3} ms ({:.2}x)",
            r.workload,
            r.lanes,
            r.sequential_seconds * 1e3,
            r.lanes_seconds * 1e3,
            r.speedup
        );
    }

    eprintln!("measuring the corner/scenario sweep vs per-scenario re-analysis...");
    let corner_rows = measure_corner_sweep(reps);
    for r in &corner_rows {
        eprintln!(
            "  {:<18} {:<8} s={:>2}: per-scenario {:>8.3} ms, sweep {:>8.3} ms ({:.2}x)",
            r.workload,
            r.kind,
            r.scenarios,
            r.per_scenario_seconds * 1e3,
            r.sweep_seconds * 1e3,
            r.speedup
        );
    }

    eprintln!("measuring the session edit loop ({EDIT_LOOP_WORKLOAD})...");
    let edit_rows = measure_edit_loop(&[1, 8, 64], reps);
    for r in &edit_rows {
        eprintln!(
            "  {:>3} edit(s): full {:>8.2} ms, session {:>8.2} ms ({:.2}x, {} of {} rows)",
            r.edits,
            r.full_seconds * 1e3,
            r.session_seconds * 1e3,
            r.speedup,
            r.rows,
            r.rows_total
        );
    }

    eprintln!("measuring the structural edit loop ({EDIT_LOOP_WORKLOAD})...");
    let struct_rows = measure_structural_edit_loop(&[1, 8, 64], reps);
    for r in &struct_rows {
        eprintln!(
            "  {:>3} batch(es): full {:>8.2} ms, session {:>8.2} ms ({:.2}x, {} of {} rows)",
            r.edits,
            r.full_seconds * 1e3,
            r.session_seconds * 1e3,
            r.speedup,
            r.rows,
            r.rows_total
        );
    }

    let graphs: Vec<SignalGraph> = (0..graph_count as u64)
        .map(|seed| tsg_gen::random_live_tsg(seed, tsg_gen::RandomTsgConfig::default()))
        .collect();
    let thread_counts: Vec<usize> = match threads_arg {
        None => vec![1, 2, 4, 8],
        Some(1) => vec![1], // the 1-thread baseline row, once
        Some(n) => vec![1, n],
    };
    eprintln!(
        "measuring analyze vs analyze_batch on {} graphs...",
        graphs.len()
    );
    let (seq_seconds, batch_rows) = measure_analysis(&graphs, &thread_counts, reps);
    eprintln!("  sequential: {:.1} ms", seq_seconds * 1e3);
    for r in &batch_rows {
        eprintln!(
            "  analyze_batch x{}: {:.1} ms ({:.2}x)",
            r.threads,
            r.seconds * 1e3,
            r.speedup
        );
    }

    let report = json_report(
        quick,
        &queue_rows,
        graphs.len(),
        seq_seconds,
        &batch_rows,
        &edit_rows,
        &struct_rows,
        &wide_rows,
        &simd_rows,
        &longrun_rows,
        &corner_rows,
    );
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("writing {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{report}");
    eprintln!("wrote {out_path}");
}
