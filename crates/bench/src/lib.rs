//! Shared kernel-benchmark workloads.
//!
//! Both `benches/kernel.rs` (the Criterion suite) and the `bench`
//! binary (which writes `BENCH_kernel.json`) drive the queue backends
//! through these exact loops, so the interactive numbers and the
//! tracked JSON measure the same workload by construction — tuning the
//! distribution here changes both, never one.

use tsg_core::analysis::session::DelayEdit;
use tsg_core::{ArcId, SignalGraph};
use tsg_sim::{EventQueue, QueueBackend};

/// Upper bound of [`delay`]'s distribution; the calendar backend under
/// test is tuned with `CalendarQueue::with_delay_bound(DELAY_BOUND)`.
pub const DELAY_BOUND: f64 = 8.25;

/// Deterministic bounded delays: a low-discrepancy scramble uniform in
/// `[0.25, DELAY_BOUND)`, the continuous shape gate libraries produce.
pub fn delay(i: u64) -> f64 {
    let scrambled = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11;
    0.25 + scrambled as f64 / (1u64 << 53) as f64 * 8.0
}

/// Bulk workload: `depth` pushes, then a full drain.
///
/// Returns the number of queue operations performed (for throughput
/// math and as a `black_box`-able result).
pub fn push_pop<B: QueueBackend<u64>>(mut q: EventQueue<u64, B>, depth: usize) -> usize {
    for i in 0..depth as u64 {
        q.schedule(delay(i), i);
    }
    let mut pops = 0usize;
    while q.pop().is_some() {
        pops += 1;
    }
    assert_eq!(pops, depth);
    2 * depth
}

/// Hold workload: steady depth, pop one / push one a bounded delay
/// ahead — the access pattern every simulator in the workspace
/// generates.
///
/// Returns the number of queue operations performed.
pub fn hold<B: QueueBackend<u64>>(mut q: EventQueue<u64, B>, depth: usize, ops: usize) -> usize {
    for i in 0..depth as u64 {
        q.schedule(delay(i), i);
    }
    for i in 0..ops as u64 {
        let ev = q.pop().expect("steady-state queue never drains");
        q.schedule(ev.time + delay(i), ev.payload);
    }
    depth + 2 * ops
}

/// Label of the edit-loop workload — a ring whose 16 tokens sit far
/// apart, so delay edits have real token distance to exploit.
pub const EDIT_LOOP_WORKLOAD: &str = "ring n=256 tokens=16";

/// The edit-loop graph matching [`EDIT_LOOP_WORKLOAD`].
pub fn edit_loop_graph() -> SignalGraph {
    tsg_gen::ring(256, 16, 1.0)
}

/// A deterministic bottleneck-hunting script over `sg`: `count` delay
/// edits striding through the arcs, each nudging the current delay so
/// no edit is ever a no-op.
pub fn edit_script(sg: &SignalGraph, count: usize) -> Vec<DelayEdit> {
    let m = sg.arc_count();
    (0..count)
        .map(|i| {
            let arc = ArcId(((i * 37) % m) as u32);
            DelayEdit {
                arc,
                delay: sg.arc(arc).delay().get() + 0.25 + (i % 4) as f64 * 0.25,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_sim::CalendarQueue;

    #[test]
    fn workloads_report_operation_counts() {
        assert_eq!(push_pop(EventQueue::new(), 100), 200);
        assert_eq!(hold(EventQueue::new(), 50, 200), 450);
        assert_eq!(
            push_pop(
                EventQueue::with_backend(CalendarQueue::with_delay_bound(DELAY_BOUND)),
                100
            ),
            200
        );
    }

    #[test]
    fn delay_is_bounded_and_continuous() {
        let mut distinct = std::collections::HashSet::new();
        for i in 0..1000 {
            let d = delay(i);
            assert!((0.25..DELAY_BOUND).contains(&d), "{d}");
            distinct.insert(d.to_bits());
        }
        assert!(distinct.len() > 900, "{} distinct values", distinct.len());
    }
}
