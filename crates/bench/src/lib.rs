//! Shared kernel-benchmark workloads.
//!
//! Both `benches/kernel.rs` (the Criterion suite) and the `bench`
//! binary (which writes `BENCH_kernel.json`) drive the queue backends
//! through these exact loops, so the interactive numbers and the
//! tracked JSON measure the same workload by construction — tuning the
//! distribution here changes both, never one.

use tsg_core::analysis::initiated::SimArena;
use tsg_core::analysis::session::{DelayEdit, GraphEdit};
use tsg_core::analysis::wide::WideArena;
use tsg_core::analysis::{CycleTimeAnalysis, KernelBackend, ScenarioSet};
use tsg_core::{ArcId, EventId, SignalGraph};
use tsg_sim::{EventQueue, QueueBackend};

/// Upper bound of [`delay`]'s distribution; the calendar backend under
/// test is tuned with `CalendarQueue::with_delay_bound(DELAY_BOUND)`.
pub const DELAY_BOUND: f64 = 8.25;

/// Deterministic bounded delays: a low-discrepancy scramble uniform in
/// `[0.25, DELAY_BOUND)`, the continuous shape gate libraries produce.
pub fn delay(i: u64) -> f64 {
    let scrambled = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11;
    0.25 + scrambled as f64 / (1u64 << 53) as f64 * 8.0
}

/// Bulk workload: `depth` pushes, then a full drain.
///
/// Returns the number of queue operations performed (for throughput
/// math and as a `black_box`-able result).
pub fn push_pop<B: QueueBackend<u64>>(mut q: EventQueue<u64, B>, depth: usize) -> usize {
    for i in 0..depth as u64 {
        q.schedule(delay(i), i);
    }
    let mut pops = 0usize;
    while q.pop().is_some() {
        pops += 1;
    }
    assert_eq!(pops, depth);
    2 * depth
}

/// Hold workload: steady depth, pop one / push one a bounded delay
/// ahead — the access pattern every simulator in the workspace
/// generates.
///
/// Returns the number of queue operations performed.
pub fn hold<B: QueueBackend<u64>>(mut q: EventQueue<u64, B>, depth: usize, ops: usize) -> usize {
    for i in 0..depth as u64 {
        q.schedule(delay(i), i);
    }
    for i in 0..ops as u64 {
        let ev = q.pop().expect("steady-state queue never drains");
        q.schedule(ev.time + delay(i), ev.payload);
    }
    depth + 2 * ops
}

/// Label of the edit-loop workload — a ring whose 16 tokens sit far
/// apart, so delay edits have real token distance to exploit.
pub const EDIT_LOOP_WORKLOAD: &str = "ring n=256 tokens=16";

/// The edit-loop graph matching [`EDIT_LOOP_WORKLOAD`].
pub fn edit_loop_graph() -> SignalGraph {
    tsg_gen::ring(256, 16, 1.0)
}

/// The tracked workloads of the `wide-vs-scalar` scenario: rings and
/// tori at border counts b ∈ {4, 8, 32} (a ring's border count is its
/// token count; an `h × w` torus has `h + w - 1` border events) plus
/// seeded random live graphs. The Criterion suite, the `bench` binary
/// and `tests/wide.rs` all iterate this exact list, so the tracked
/// speedups and the bit-identity property tests cover the same graphs
/// by construction.
pub fn wide_scenarios() -> Vec<(String, SignalGraph)> {
    let mut out: Vec<(String, SignalGraph)> = Vec::new();
    for b in [4usize, 8, 32] {
        out.push((format!("ring n=1024 b={b}"), tsg_gen::ring(1024, b, 1.0)));
    }
    for (h, w) in [(2usize, 3usize), (4, 5), (16, 17)] {
        out.push((
            format!("torus {h}x{w} b={}", h + w - 1),
            tsg_gen::torus(h, w, 2.0, 3.0),
        ));
    }
    for seed in [3u64, 17] {
        let sg = tsg_gen::random_live_tsg(seed, tsg_gen::RandomTsgConfig::default());
        out.push((
            format!("random seed={seed} b={}", sg.border_events().len()),
            sg,
        ));
    }
    out
}

/// Asserts two analyses carry the same bits everywhere they report:
/// cycle time, periods, critical cycle (i.e. the backtracked parents
/// along the winning walk), critical borders, border order, and every
/// per-border distance table. The one bit-identity gate shared by the
/// Criterion suite, the `bench` binary and `tests/wide.rs` — a speedup
/// of a wrong answer is not a speedup, and three drifting copies of
/// this check would each gate a different subset of the result.
///
/// # Panics
///
/// Panics (with `ctx`) on the first field whose bits differ.
pub fn assert_analyses_identical(expected: &CycleTimeAnalysis, got: &CycleTimeAnalysis, ctx: &str) {
    assert_eq!(
        expected.cycle_time().as_f64().to_bits(),
        got.cycle_time().as_f64().to_bits(),
        "{ctx}: cycle time bits"
    );
    assert_eq!(
        expected.cycle_time().periods(),
        got.cycle_time().periods(),
        "{ctx}: periods"
    );
    assert_eq!(
        expected.critical_cycle(),
        got.critical_cycle(),
        "{ctx}: backtracked critical cycle"
    );
    assert_eq!(
        expected.critical_borders(),
        got.critical_borders(),
        "{ctx}: critical borders"
    );
    assert_eq!(
        expected.border_events(),
        got.border_events(),
        "{ctx}: border order"
    );
    for (re, rg) in expected.records().iter().zip(got.records()) {
        assert_eq!(re.event, rg.event, "{ctx}: record event");
        assert_eq!(re.distances, rg.distances, "{ctx}: distance table");
    }
}

/// The full wide-vs-scalar correctness gate for one graph: runs both
/// engines, asserts the analyses bit-identical through
/// [`assert_analyses_identical`], then sweeps every cell of every lane's
/// time matrix against a per-origin scalar simulation.
///
/// # Panics
///
/// Panics (with `ctx`) on any divergence.
pub fn assert_wide_matches_scalar(sg: &SignalGraph, ctx: &str) {
    let scalar = CycleTimeAnalysis::run_scalar(sg).expect("scenario is live");
    let wide = CycleTimeAnalysis::run(sg).expect("live");
    assert_analyses_identical(&scalar, &wide, ctx);

    let border = sg.border_events();
    let b = border.len() as u32;
    let mut lanes = WideArena::new();
    lanes.run(sg, &border, b).expect("borders are repetitive");
    let mut one = SimArena::new();
    for (k, &g) in border.iter().enumerate() {
        one.run(sg, g, b, false).expect("repetitive");
        for e in sg.events() {
            for p in 0..=b {
                assert_eq!(
                    lanes.time(k, e, p).map(f64::to_bits),
                    one.time(e, p).map(f64::to_bits),
                    "{ctx}: lane {k} ({}) diverged at e={} p={p}",
                    sg.label(g),
                    sg.label(e)
                );
            }
        }
    }
}

/// The explicit wide-kernel backends this CPU can run, narrowest
/// first — always starts with [`KernelBackend::Portable`], then SSE2
/// and AVX2 when the features are present. `Auto` is excluded: it
/// resolves to one of these, and the sweeps want each backend pinned.
pub fn available_backends() -> Vec<KernelBackend> {
    [
        KernelBackend::Portable,
        KernelBackend::Sse2,
        KernelBackend::Avx2,
    ]
    .into_iter()
    .filter(|b| b.resolve() == Ok(*b))
    .collect()
}

/// The simd-vs-portable correctness gate for one graph: runs the
/// scalar reference engine plus every backend this CPU offers, asserts
/// all analyses bit-identical through [`assert_analyses_identical`],
/// then sweeps every cell of every lane's time matrix of each SIMD
/// backend against the portable loop's cells.
///
/// # Panics
///
/// Panics (with `ctx` and the backend name) on any divergence.
pub fn assert_backends_match(sg: &SignalGraph, ctx: &str) {
    let scalar = CycleTimeAnalysis::run_scalar(sg).expect("scenario is live");
    let border = sg.border_events();
    let b = border.len() as u32;
    let mut reference: Option<WideArena> = None;
    for backend in available_backends() {
        let got = CycleTimeAnalysis::run_with_kernel(sg, backend).expect("live");
        assert_analyses_identical(&scalar, &got, &format!("{ctx} [{}]", backend.name()));

        let mut lanes = WideArena::with_kernel(backend);
        lanes.run(sg, &border, b).expect("borders are repetitive");
        match &reference {
            // Portable comes first in `available_backends`, so the
            // reference cells are always the portable loop's.
            None => reference = Some(lanes),
            Some(portable) => {
                for k in 0..border.len() {
                    for e in sg.events() {
                        for p in 0..=b {
                            assert_eq!(
                                lanes.time(k, e, p).map(f64::to_bits),
                                portable.time(k, e, p).map(f64::to_bits),
                                "{ctx} [{}]: cell diverged at lane {k} e={} p={p}",
                                backend.name(),
                                sg.label(e)
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The scenario-sweep correctness gate for one graph: runs the whole
/// scenario matrix in one lockstep wide pass, then asserts every
/// scenario lane bit-identical — through [`assert_analyses_identical`],
/// so times, critical cycle and backtracked parents included — to a
/// from-scratch *scalar* analysis of the corresponding reweighted
/// graph, which is the definition of what a scenario lane means.
///
/// # Panics
///
/// Panics (with `ctx` and the scenario label) on any divergence.
pub fn assert_scenarios_match_scalar(sg: &SignalGraph, set: &ScenarioSet, ctx: &str) {
    let swept = CycleTimeAnalysis::run_scenarios(sg, set).expect("scenarios stay live");
    assert_eq!(swept.len(), set.len(), "{ctx}: scenario count");
    for j in 0..set.len() {
        let scratch = CycleTimeAnalysis::run_scalar(&set.reweighted(sg, j))
            .expect("reweighting keeps the graph live");
        assert_analyses_identical(
            &scratch,
            swept.analysis(j),
            &format!("{ctx} [{}]", set.label(j)),
        );
    }
}

/// A deterministic bottleneck-hunting script over `sg`: `count` delay
/// edits striding through the arcs, each nudging the current delay so
/// no edit is ever a no-op.
pub fn edit_script(sg: &SignalGraph, count: usize) -> Vec<DelayEdit> {
    let m = sg.arc_count();
    (0..count)
        .map(|i| {
            let arc = ArcId(((i * 37) % m) as u32);
            DelayEdit {
                arc,
                delay: sg.arc(arc).delay().get() + 0.25 + (i % 4) as f64 * 0.25,
            }
        })
        .collect()
}

/// Applies one [`GraphEdit`] batch directly to a graph through the
/// mutation API — the "from-scratch" arm of the structural-edit bench
/// (mutate a clone, rerun the full analysis), and the mirror
/// [`structural_edit_script`] builds its later batches against.
///
/// # Panics
///
/// Panics if an edit is rejected: the scripts produced here are valid
/// by construction, so a rejection is a harness bug.
pub fn apply_graph_edits(sg: &mut SignalGraph, batch: &[GraphEdit]) {
    for edit in batch {
        match edit {
            GraphEdit::Delay { arc, delay } => sg.set_delay(*arc, *delay).expect("valid delay"),
            GraphEdit::AddArc {
                src,
                dst,
                delay,
                marked,
            } => {
                sg.add_arc(*src, *dst, *delay, *marked).expect("valid arc");
            }
            GraphEdit::RemoveArc { arc } => sg.remove_arc(*arc).expect("live arc"),
            GraphEdit::AddEvent { label } => {
                sg.add_event(label).expect("fresh label");
            }
            GraphEdit::RemoveEvent { event } => sg.remove_event(*event).expect("isolated event"),
        }
    }
}

/// A deterministic mixed structural script over `sg`: `count` batches
/// alternating always-valid pipeline-stage splits (one fresh event
/// each, the second half marked) with delay nudges — the
/// `structural_edit` bench workload, valid by construction so the
/// full-reanalysis and session-resume arms time identical work. Batches
/// are built against an evolving mirror of the graph, so the ids each
/// batch names are exactly the ids the session assigns when the batches
/// apply in order.
pub fn structural_edit_script(sg: &SignalGraph, count: usize) -> Vec<Vec<GraphEdit>> {
    let mut mirror = sg.clone();
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let batch = if i.is_multiple_of(2) {
            let cyclic: Vec<ArcId> = mirror
                .arc_ids()
                .filter(|&a| {
                    let arc = mirror.arc(a);
                    mirror.is_live_arc(a)
                        && !arc.is_disengageable()
                        && mirror.is_repetitive(arc.src())
                        && mirror.is_repetitive(arc.dst())
                })
                .collect();
            let a = cyclic[(i * 31) % cyclic.len()];
            let arc = mirror.arc(a);
            let mid = EventId(mirror.event_count() as u32);
            let half = arc.delay().get() / 2.0;
            vec![
                GraphEdit::RemoveArc { arc: a },
                GraphEdit::AddEvent {
                    label: format!("s{i}"),
                },
                GraphEdit::AddArc {
                    src: arc.src(),
                    dst: mid,
                    delay: half,
                    marked: arc.is_marked(),
                },
                GraphEdit::AddArc {
                    src: mid,
                    dst: arc.dst(),
                    delay: half,
                    marked: true,
                },
            ]
        } else {
            let live: Vec<ArcId> = mirror
                .arc_ids()
                .filter(|&a| mirror.is_live_arc(a))
                .collect();
            let arc = live[(i * 37) % live.len()];
            vec![GraphEdit::Delay {
                arc,
                delay: mirror.arc(arc).delay().get() + 0.25 + (i % 4) as f64 * 0.25,
            }]
        };
        apply_graph_edits(&mut mirror, &batch);
        out.push(batch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_sim::CalendarQueue;

    #[test]
    fn workloads_report_operation_counts() {
        assert_eq!(push_pop(EventQueue::new(), 100), 200);
        assert_eq!(hold(EventQueue::new(), 50, 200), 450);
        assert_eq!(
            push_pop(
                EventQueue::with_backend(CalendarQueue::with_delay_bound(DELAY_BOUND)),
                100
            ),
            200
        );
    }

    #[test]
    fn structural_script_matches_between_session_and_scratch() {
        let sg = tsg_gen::ring(16, 2, 1.0);
        let script = structural_edit_script(&sg, 9);
        assert_eq!(script.len(), 9);

        let mut session =
            tsg_core::analysis::session::AnalysisSession::open(sg.clone()).expect("cyclic");
        let mut scratch = sg;
        for (i, batch) in script.iter().enumerate() {
            session
                .edit_structure(batch)
                .unwrap_or_else(|e| panic!("batch {i} rejected: {e}"));
            apply_graph_edits(&mut scratch, batch);
            let full = CycleTimeAnalysis::run(&scratch).expect("cyclic");
            assert_analyses_identical(&full, session.analysis(), &format!("batch {i}"));
        }
        // Splits added one fresh event per even-indexed batch.
        assert_eq!(scratch.event_count(), 16 + 5);
    }

    #[test]
    fn delay_is_bounded_and_continuous() {
        let mut distinct = std::collections::HashSet::new();
        for i in 0..1000 {
            let d = delay(i);
            assert!((0.25..DELAY_BOUND).contains(&d), "{d}");
            distinct.insert(d.to_bits());
        }
        assert!(distinct.len() > 900, "{} distinct values", distinct.len());
    }
}
