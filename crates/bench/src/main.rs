//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro                 # run all experiments
//! repro --experiment ex3
//! repro --threads 4     # pool size for the batch experiment
//! repro --list
//! ```
//!
//! Experiment ids follow DESIGN.md: `fig1b fig1c fig1d ex3 ex4 ex56 tab8c
//! tab8d fig4 perf8b complexity`, plus the post-paper `batch` sweep that
//! exercises the tsg-sim kernel's parallel scenario execution.

use std::fmt::Write as _;
use std::time::Instant;

use tsg_baselines::CycleInventory;
use tsg_core::analysis::asymptotic::delta_series;
use tsg_core::analysis::diagram::{self, DiagramOptions};
use tsg_core::analysis::initiated::InitiatedSimulation;
use tsg_core::analysis::sim::TimingSimulation;
use tsg_core::analysis::CycleTimeAnalysis;
use tsg_core::SignalGraph;

/// Pool size for the batch experiment, set once from `--threads N`.
/// `None` defers to [`tsg_sim::BatchRunner::sized`]'s default (all
/// cores) — the same resolution rule every other tool uses.
static THREADS: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        match tsg_sim::BatchRunner::parse_threads(args.get(pos + 1).map(String::as_str)) {
            Ok(n) => THREADS.set(Some(n)).expect("set once"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        args.drain(pos..(pos + 2).min(args.len()));
    }
    let all = experiments();
    match args.first().map(String::as_str) {
        Some("--list") => {
            for (id, _) in &all {
                println!("{id}");
            }
        }
        Some("--experiment") => {
            let want = args.get(1).map(String::as_str).unwrap_or("");
            match all.iter().find(|(id, _)| *id == want) {
                Some((id, f)) => print!("{}", banner(id, f())),
                None => {
                    eprintln!("unknown experiment {want:?}; try --list");
                    std::process::exit(1);
                }
            }
        }
        _ => {
            for (id, f) in &all {
                print!("{}", banner(id, f()));
            }
        }
    }
}

fn banner(id: &str, body: String) -> String {
    format!("\n===== {id} =====\n{body}")
}

type Experiment = (&'static str, fn() -> String);

fn experiments() -> Vec<Experiment> {
    vec![
        ("fig1b", fig1b),
        ("fig1c", fig1c),
        ("fig1d", fig1d),
        ("ex3", ex3),
        ("ex4", ex4),
        ("ex56", ex56),
        ("tab8c", tab8c),
        ("tab8d", tab8d),
        ("fig4", fig4),
        ("perf8b", perf8b),
        ("complexity", complexity),
        ("batch", batch),
    ]
}

fn oscillator() -> SignalGraph {
    tsg_circuit::library::c_element_oscillator_tsg()
}

fn muller5() -> SignalGraph {
    tsg_extract::extract(
        &tsg_circuit::library::muller_ring(5, 1.0),
        tsg_extract::ExtractOptions::default(),
    )
    .expect("the Muller ring is distributive")
}

/// Figure 1b: the Timed Signal Graph of the C-element oscillator, extracted
/// from the gate-level netlist.
fn fig1b() -> String {
    let mut out = String::new();
    let nl = tsg_circuit::library::c_element_oscillator();
    let report = tsg_extract::explore(&nl, 100_000);
    let _ = writeln!(
        out,
        "netlist: {} signals, {} gates; reachable states {}, semimodular: {}",
        nl.signal_count(),
        nl.gate_count(),
        report.states,
        report.is_semimodular()
    );
    let sg = tsg_extract::extract(&nl, tsg_extract::ExtractOptions::default())
        .expect("oscillator is distributive");
    let _ = writeln!(
        out,
        "extracted TSG: {} events, {} arcs (paper: 8 events, 11 arcs)",
        sg.event_count(),
        sg.arc_count()
    );
    for a in sg.arc_ids() {
        let arc = sg.arc(a);
        let _ = writeln!(
            out,
            "  {} -{}{}{}-> {}",
            sg.label(arc.src()),
            arc.delay(),
            if arc.is_marked() { " *token*" } else { "" },
            if arc.is_disengageable() { " once" } else { "" },
            sg.label(arc.dst()),
        );
    }
    out
}

/// Figure 1c: the timing diagram of the full simulation.
fn fig1c() -> String {
    let sg = oscillator();
    let sim = TimingSimulation::run(&sg, 3);
    diagram::render(&sg, &sim, DiagramOptions::default())
}

/// Figure 1d: the a+-initiated timing diagram — occurrence distances
/// 10, 10, 10, … immediately.
fn fig1d() -> String {
    let sg = oscillator();
    let ap = sg.event_by_label("a+").expect("a+ exists");
    let sim = InitiatedSimulation::run(&sg, ap, 3).expect("a+ is repetitive");
    let mut out = diagram::render_initiated(&sg, &sim, DiagramOptions::default());
    let distances: Vec<String> = sim
        .distance_series()
        .iter()
        .map(|(i, _, d)| format!("δ(a+_{i})={d}"))
        .collect();
    let _ = writeln!(out, "{}", distances.join("  "));
    out
}

/// Example 3: the occurrence-time table of the first eleven events.
fn ex3() -> String {
    let sg = oscillator();
    let sim = TimingSimulation::run(&sg, 2);
    let mut out = String::from("event   ");
    let cols = [
        ("e-", 0),
        ("f-", 0),
        ("a+", 0),
        ("b+", 0),
        ("c+", 0),
        ("a-", 0),
        ("b-", 0),
        ("c-", 0),
        ("a+", 1),
        ("b+", 1),
        ("c+", 1),
    ];
    for (l, i) in cols {
        let _ = write!(out, "{l}{i:<4}");
    }
    let _ = writeln!(out);
    let _ = write!(out, "t(event)");
    for (l, i) in cols {
        let t = sim
            .time(sg.event_by_label(l).expect("event"), i)
            .expect("simulated");
        let _ = write!(out, "{t:<6}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "paper:  0  3  2  4  6  8  7  11  13  12  16");
    out
}

/// Example 4: the b+0-initiated simulation table.
fn ex4() -> String {
    let sg = oscillator();
    let bp = sg.event_by_label("b+").expect("b+ exists");
    let sim = InitiatedSimulation::run(&sg, bp, 2).expect("repetitive");
    let cols = [
        ("b+", 0),
        ("c+", 0),
        ("a-", 0),
        ("b-", 0),
        ("c-", 0),
        ("a+", 1),
        ("b+", 1),
        ("c+", 1),
    ];
    let mut out = String::from("event        ");
    for (l, i) in cols {
        let _ = write!(out, "{l}{i:<4}");
    }
    let _ = writeln!(out);
    let _ = write!(out, "t_b+0(event) ");
    for (l, i) in cols {
        let t = sim.time_or_zero(sg.event_by_label(l).expect("event"), i);
        let _ = write!(out, "{t:<6}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "paper:       0  2  4  3  7  9  8  12");
    out
}

/// Examples 5 and 6: the four simple cycles and τ = max{10,8,8,6} = 10.
fn ex56() -> String {
    let sg = oscillator();
    let inv = CycleInventory::build(&sg, 1000).expect("small graph");
    let mut out = String::new();
    let _ = writeln!(out, "{} simple cycles (paper: 4):", inv.len());
    let mut rows: Vec<String> = inv
        .cycles
        .iter()
        .map(|(arcs, len, eps)| {
            format!(
                "  C = {}  length {len}, ε = {eps}, C/ε = {}",
                sg.display_path(arcs),
                len / *eps as f64
            )
        })
        .collect();
    rows.sort();
    for r in rows {
        let _ = writeln!(out, "{r}");
    }
    let (arcs, len, eps) = inv.critical().expect("has cycles");
    let _ = writeln!(
        out,
        "τ = max{{C/ε}} = {} (paper: 10); critical cycle {}",
        len / *eps as f64,
        sg.display_path(arcs)
    );
    out
}

/// Section VIII.C: the two border-event-initiated simulations and the
/// resulting cycle time.
fn tab8c() -> String {
    let sg = oscillator();
    let mut out = String::new();
    let events = [
        ("a+", 0),
        ("b+", 0),
        ("c+", 0),
        ("a-", 0),
        ("b-", 0),
        ("c-", 0),
        ("a+", 1),
        ("b+", 1),
        ("c+", 1),
        ("a-", 1),
        ("b-", 1),
        ("c-", 1),
        ("a+", 2),
        ("b+", 2),
    ];
    let mut header = String::from("event        ");
    for (l, i) in events {
        let _ = write!(header, "{l}{i:<3}");
    }
    let _ = writeln!(out, "{header}");
    for origin in ["a+", "b+"] {
        let g = sg.event_by_label(origin).expect("border event");
        let sim = InitiatedSimulation::run(&sg, g, 2).expect("repetitive");
        let _ = write!(out, "t_{origin}0(event)");
        for (l, i) in events {
            let t = sim.time_or_zero(sg.event_by_label(l).expect("event"), i);
            let _ = write!(out, "{t:<6}");
        }
        let _ = writeln!(out);
        for (i, t, d) in sim.distance_series() {
            let _ = write!(out, "  δ_{origin}0({origin}{i}) = {t}/{i} = {d}  ");
        }
        let _ = writeln!(out);
    }
    let a = CycleTimeAnalysis::run(&sg).expect("cyclic");
    let _ = writeln!(
        out,
        "τ = max{{10, 10, 8, 9}} = {} (paper: 10)",
        a.cycle_time()
    );
    let _ = writeln!(
        out,
        "critical cycle: {}",
        sg.display_path(a.critical_cycle())
    );
    let _ = writeln!(
        out,
        "note: the paper's VIII.C text prints the critical cycle as a+->c+->b-->c-->a+ \
         (length 8), contradicting its own Example 5/6 where C1 (length 10) is critical; \
         we report C1. See EXPERIMENTS.md."
    );
    out
}

/// Section VIII.D: the Muller ring table over ten periods.
fn tab8d() -> String {
    let sg = muller5();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "extracted Muller ring (5 C-elements): {} events, {} arcs",
        sg.event_count(),
        sg.arc_count()
    );
    let borders: Vec<String> = sg
        .border_events()
        .iter()
        .map(|&e| sg.label(e).to_string())
        .collect();
    let _ = writeln!(
        out,
        "border events: {} (paper: a+, b+, c+, e- in its lettering)",
        borders.join(", ")
    );
    let s0 = sg.event_by_label("s0+").expect("s0+ exists");
    let sim = InitiatedSimulation::run(&sg, s0, 10).expect("repetitive");
    let _ = writeln!(
        out,
        "i            1    2    3    4    5    6    7    8    9    10"
    );
    let mut t_row = String::from("t_a+0(a+_i) ");
    let mut d_row = String::from("δ per step  ");
    let mut avg_row = String::from("δ_a+0(a+_i) ");
    let mut prev = 0.0;
    for i in 1..=10u32 {
        let t = sim.time(s0, i).expect("reached");
        let _ = write!(t_row, "{t:<5}");
        let _ = write!(d_row, "{:<5}", t - prev);
        let _ = write!(avg_row, "{:<5.2}", t / i as f64);
        prev = t;
    }
    let _ = writeln!(out, "{t_row}");
    let _ = writeln!(out, "{d_row}");
    let _ = writeln!(out, "{avg_row}");
    let _ = writeln!(out, "paper row 1: 6 13 20 26 33 40 46 53 60 66");
    let _ = writeln!(out, "paper row 2: 6 7 7 6 7 7 6 7 7 6");
    let a = CycleTimeAnalysis::run(&sg).expect("cyclic");
    let _ = writeln!(
        out,
        "τ = {} (paper: 20/3 ≈ 6.67), critical cycle spans {} periods",
        a.cycle_time(),
        a.cycle_time().periods()
    );
    out
}

/// Figure 4: asymptotic behaviour of δ_{e0}(e_i) for an event on the
/// critical cycle (a+) and one off it (b+).
fn fig4() -> String {
    let sg = oscillator();
    let mut out = String::new();
    for (label, claim) in [
        ("a+", "on a critical cycle"),
        ("b+", "off the critical cycle"),
    ] {
        let e = sg.event_by_label(label).expect("event");
        let series = delta_series(&sg, e, 40).expect("repetitive");
        let _ = writeln!(out, "{label} ({claim}):");
        let shown: Vec<String> = series
            .iter()
            .take(8)
            .map(|p| format!("{:.4}", p.delta))
            .collect();
        let _ = writeln!(
            out,
            "  δ series: {} ... -> {:.4} at i=40",
            shown.join(", "),
            series.last().expect("non-empty").delta
        );
        let attains = series.iter().any(|p| p.delta == 10.0);
        let _ = writeln!(out, "  attains τ=10: {attains}");
    }
    out
}

/// Section VIII.B: runtime on the 66-event / 112-arc stack-class graph.
fn perf8b() -> String {
    let sg = tsg_gen::stack66();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph: {} events, {} arcs, {} border events (paper: 66 events, 112 arcs)",
        sg.event_count(),
        sg.arc_count(),
        sg.border_events().len()
    );
    // Warm up, then time many runs.
    let a = CycleTimeAnalysis::run(&sg).expect("cyclic");
    let runs = 1000;
    let start = Instant::now();
    for _ in 0..runs {
        let _ = CycleTimeAnalysis::run(&sg).expect("cyclic");
    }
    let per_run = start.elapsed().as_secs_f64() / runs as f64;
    let _ = writeln!(out, "cycle time: {}", a.cycle_time());
    let _ = writeln!(
        out,
        "analysis time: {:.3} ms/run over {runs} runs (paper: 74 ms on a DEC 5000)",
        per_run * 1e3
    );
    out
}

/// Parallel scenario sweep on the tsg-sim kernel: the long-run estimator
/// over a mixed batch of generated workloads, sequential vs. batched,
/// cross-checked against the exact analysis.
fn batch() -> String {
    use tsg_sim::BatchRunner;

    let mut scenarios: Vec<(String, SignalGraph)> = Vec::new();
    for n in [64usize, 256] {
        scenarios.push((format!("ring n={n} b=2"), tsg_gen::ring(n, 2, 1.0)));
    }
    for side in [4usize, 6] {
        scenarios.push((
            format!("torus {side}x{side}"),
            tsg_gen::torus(side, side, 2.0, 3.0),
        ));
    }
    for stages in [4usize, 8] {
        scenarios.push((
            format!("pipeline stages={stages}"),
            tsg_gen::handshake_pipeline(stages, tsg_gen::PipelineConfig::default()),
        ));
    }
    for seed in 0..6u64 {
        scenarios.push((
            format!("random seed={seed}"),
            tsg_gen::random_live_tsg(seed, tsg_gen::RandomTsgConfig::default()),
        ));
    }
    let graphs: Vec<SignalGraph> = scenarios.iter().map(|(_, sg)| sg.clone()).collect();
    let periods = 192;

    let t_seq = Instant::now();
    let sequential: Vec<Option<f64>> = graphs
        .iter()
        .map(|sg| tsg_baselines::longrun_estimate(sg, periods))
        .collect();
    let t_seq = t_seq.elapsed();

    // One explicit runner — sized by `--threads N` or the machine — so
    // the reported thread count is the one that actually executed it.
    let runner = BatchRunner::sized(THREADS.get().copied().flatten());
    let t_par = Instant::now();
    let batched: Vec<Option<f64>> =
        tsg_baselines::longrun_estimate_batch_on(&runner, &graphs, periods);
    let t_par = t_par.elapsed();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} scenarios × {periods} periods on {} thread(s)",
        graphs.len(),
        runner.threads()
    );
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12} {:>8}",
        "scenario", "longrun", "exact τ", "agree"
    );
    for (i, (name, sg)) in scenarios.iter().enumerate() {
        let est = batched[i].expect("all scenarios are live");
        let exact = CycleTimeAnalysis::run(sg)
            .expect("cyclic")
            .cycle_time()
            .as_f64();
        let agree = (est - exact).abs() <= exact * 0.05 + 1e-9;
        let _ = writeln!(out, "{name:<24} {est:>12.4} {exact:>12.4} {agree:>8}");
    }
    assert_eq!(batched, sequential, "batch must equal the sequential loop");
    let _ = writeln!(
        out,
        "sequential {:.1} ms, batched {:.1} ms ({:.2}x)",
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3,
        t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9)
    );

    // The same sweep through the exact analysis: `analyze_batch` fans
    // whole cycle-time analyses (each itself b border simulations) over
    // per-worker arenas, bit-identical to the sequential loop.
    let t_seq = Instant::now();
    let seq_exact: Vec<f64> = graphs
        .iter()
        .map(|sg| {
            CycleTimeAnalysis::run(sg)
                .expect("cyclic")
                .cycle_time()
                .as_f64()
        })
        .collect();
    let t_seq = t_seq.elapsed();
    let t_par = Instant::now();
    let par_exact: Vec<f64> = CycleTimeAnalysis::analyze_batch(&graphs, &runner)
        .into_iter()
        .map(|a| a.expect("cyclic").cycle_time().as_f64())
        .collect();
    let t_par = t_par.elapsed();
    assert!(
        seq_exact
            .iter()
            .zip(&par_exact)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "analyze_batch must be bit-identical to sequential analyses"
    );
    let _ = writeln!(
        out,
        "analyze_batch: sequential {:.1} ms, batched {:.1} ms ({:.2}x) — bit-identical",
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3,
        t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9)
    );
    out
}

/// Section VII: the O(b²m) scaling claim, against the baselines.
fn complexity() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>8} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "workload", "events", "arcs", "b", "paper(µs)", "howard(µs)", "karp(µs)", "lawler(µs)"
    );
    let mut bench = |name: String, sg: &SignalGraph| {
        let time_us = |f: &dyn Fn() -> f64| {
            let start = Instant::now();
            let mut sink = 0.0;
            let mut n = 0;
            while start.elapsed().as_millis() < 30 {
                sink += f();
                n += 1;
            }
            let _ = sink;
            start.elapsed().as_secs_f64() * 1e6 / n as f64
        };
        let paper = time_us(&|| {
            CycleTimeAnalysis::run(sg)
                .expect("cyclic")
                .cycle_time()
                .as_f64()
        });
        let howard = time_us(&|| {
            tsg_baselines::howard_cycle_time(sg)
                .expect("cyclic")
                .as_f64()
        });
        let karp = time_us(&|| tsg_baselines::karp_cycle_time(sg).expect("cyclic").as_f64());
        let lawler = time_us(&|| {
            tsg_baselines::lawler_cycle_time(sg, 60)
                .expect("cyclic")
                .as_f64()
        });
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>8} {:>6} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            name,
            sg.event_count(),
            sg.arc_count(),
            sg.border_events().len(),
            paper,
            howard,
            karp,
            lawler
        );
    };
    for n in [64usize, 256, 1024, 4096] {
        let sg = tsg_gen::ring(n, 2, 1.0);
        bench(format!("ring n={n} b=2"), &sg);
    }
    for stages in [4usize, 16, 64, 256] {
        let sg = tsg_gen::handshake_pipeline(stages, tsg_gen::PipelineConfig::default());
        bench(format!("pipeline stages={stages}"), &sg);
    }
    for tokens in [1usize, 4, 16, 64] {
        let sg = tsg_gen::ring(1024, tokens, 1.0);
        bench(format!("ring n=1024 b={tokens}"), &sg);
    }
    let _ = writeln!(
        out,
        "expected shape: paper column linear in arcs at fixed b; quadratic-ish in b at fixed n."
    );
    out
}
