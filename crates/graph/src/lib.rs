//! Directed-graph algorithms substrate for the `tsg` workspace.
//!
//! This crate provides the small set of classical graph algorithms that the
//! Timed-Signal-Graph analyses in `tsg-core` and the baseline
//! maximum-cycle-ratio solvers in `tsg-baselines` are built on:
//!
//! * [`DiGraph`] — a compact directed multigraph with stable integer ids,
//! * [`scc::tarjan_scc`] — Tarjan's strongly connected components,
//! * [`topo::topological_order`] — Kahn's algorithm with cycle detection,
//! * [`reach::descendants`] — DFS descendant sets,
//! * [`cycles::simple_cycles`] — Johnson's simple-cycle enumeration,
//! * [`bellman::positive_cycle`] — Bellman–Ford positive-cycle detection
//!   (the feasibility oracle used by Lawler's binary search).
//!
//! The types here are deliberately free of any Signal-Graph semantics; nodes
//! and edges are plain indices and all labelling lives in the caller.
//!
//! # Examples
//!
//! ```
//! use tsg_graph::DiGraph;
//!
//! let mut g = DiGraph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! g.add_edge(a, b);
//! g.add_edge(b, a);
//! assert_eq!(tsg_graph::scc::tarjan_scc(&g).len(), 1);
//! ```

pub mod bellman;
pub mod cycles;
pub mod digraph;
pub mod reach;
pub mod scc;
pub mod topo;

pub use digraph::{DiGraph, EdgeId, NodeId};
