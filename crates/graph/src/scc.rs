//! Tarjan's strongly connected components, iterative formulation.

use crate::{DiGraph, NodeId};

/// Computes the strongly connected components of `g`.
///
/// Components are returned in reverse topological order of the condensation
/// (a component appears before any component that can reach it), which is the
/// order Tarjan's algorithm emits them in. Every node appears in exactly one
/// component.
///
/// # Examples
///
/// ```
/// use tsg_graph::DiGraph;
/// use tsg_graph::scc::tarjan_scc;
///
/// let mut g = DiGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b);
/// g.add_edge(b, a);
/// g.add_edge(b, c);
/// let sccs = tarjan_scc(&g);
/// assert_eq!(sccs.len(), 2);
/// ```
pub fn tarjan_scc(g: &DiGraph) -> Vec<Vec<NodeId>> {
    const UNVISITED: u32 = u32::MAX;
    let n = g.node_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut components = Vec::new();

    // Explicit DFS stack: (node, next out-edge position to examine).
    let mut call: Vec<(NodeId, usize)> = Vec::new();

    for root in g.nodes() {
        if index[root.index()] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root.index()] = next_index;
        lowlink[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;

        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos < g.out_degree(v) {
                let e = g.out_edges(v)[*pos];
                *pos += 1;
                let w = g.dst(e);
                if index[w.index()] == UNVISITED {
                    index[w.index()] = next_index;
                    lowlink[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    call.push((w, 0));
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                }
                if lowlink[v.index()] == index[v.index()] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w.index()] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }
    components
}

/// Returns, for each node, the index of its component in `tarjan_scc(g)`.
pub fn component_index(g: &DiGraph) -> Vec<usize> {
    let comps = tarjan_scc(g);
    let mut idx = vec![0usize; g.node_count()];
    for (ci, comp) in comps.iter().enumerate() {
        for &n in comp {
            idx[n.index()] = ci;
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> DiGraph {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node()).collect();
        for i in 0..n {
            g.add_edge(ids[i], ids[(i + 1) % n]);
        }
        g
    }

    #[test]
    fn single_cycle_is_one_component() {
        let g = ring(5);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 5);
    }

    #[test]
    fn dag_has_singleton_components() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(a, c);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn emits_reverse_topological_order() {
        // a -> b, with self-cycles so both are nontrivial components.
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, a);
        g.add_edge(b, b);
        g.add_edge(a, b);
        let sccs = tarjan_scc(&g);
        // b's component (a sink) must come first.
        assert_eq!(sccs[0], vec![b]);
        assert_eq!(sccs[1], vec![a]);
    }

    #[test]
    fn two_cycles_bridged() {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node()).collect();
        for i in 0..3 {
            g.add_edge(n[i], n[(i + 1) % 3]);
        }
        for i in 3..6 {
            g.add_edge(n[i], n[3 + (i + 1 - 3) % 3]);
        }
        g.add_edge(n[0], n[3]);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 2);
        let idx = component_index(&g);
        assert_eq!(idx[n[0].index()], idx[n[1].index()]);
        assert_ne!(idx[n[0].index()], idx[n[4].index()]);
    }

    #[test]
    fn deep_path_no_stack_overflow() {
        // 100_000-node path exercises the iterative DFS.
        let mut g = DiGraph::new();
        let n = 100_000;
        let first = g.add_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId(first.0 + i as u32), NodeId(first.0 + i as u32 + 1));
        }
        assert_eq!(tarjan_scc(&g).len(), n);
    }

    #[test]
    fn self_loop_component() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        g.add_edge(a, a);
        assert_eq!(tarjan_scc(&g), vec![vec![a]]);
    }
}
