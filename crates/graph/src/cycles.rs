//! Enumeration of simple cycles (Johnson's algorithm, edge-level).
//!
//! Cycles are reported as sequences of *edges* so that parallel edges — which
//! in a Timed Signal Graph carry distinct delays and markings — yield
//! distinct cycles. A cycle is *node-simple*: no node repeats.

use std::collections::HashSet;

use crate::{DiGraph, EdgeId, NodeId};

/// A simple cycle, as the list of edges traversed in order.
///
/// The destination of each edge equals the source of the next one (cyclically).
pub type Cycle = Vec<EdgeId>;

/// Error returned when cycle enumeration exceeds the caller-supplied bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TooManyCycles {
    /// The bound that was exceeded.
    pub limit: usize,
}

impl std::fmt::Display for TooManyCycles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "more than {} simple cycles", self.limit)
    }
}

impl std::error::Error for TooManyCycles {}

/// Enumerates every simple cycle of `g`.
///
/// The number of simple cycles can be exponential in the number of edges
/// (the "straightforward approach" the paper's Section II warns against);
/// this unbounded variant is intended for small graphs and tests. Prefer
/// [`simple_cycles_bounded`] in library code.
pub fn simple_cycles(g: &DiGraph) -> Vec<Cycle> {
    simple_cycles_bounded(g, usize::MAX).expect("usize::MAX bound cannot be exceeded")
}

/// Enumerates the simple cycles of `g`, failing once more than `limit`
/// cycles have been produced.
///
/// # Errors
///
/// Returns [`TooManyCycles`] when the enumeration would exceed `limit`.
pub fn simple_cycles_bounded(g: &DiGraph, limit: usize) -> Result<Vec<Cycle>, TooManyCycles> {
    let mut finder = Johnson {
        g,
        blocked: vec![false; g.node_count()],
        block_map: vec![HashSet::new(); g.node_count()],
        stack: Vec::new(),
        result: Vec::new(),
        start: NodeId(0),
        limit,
    };
    for s in g.nodes() {
        finder.start = s;
        finder.blocked.iter_mut().for_each(|b| *b = false);
        finder.block_map.iter_mut().for_each(|m| m.clear());
        finder.circuit(s)?;
        debug_assert!(finder.stack.is_empty());
    }
    Ok(finder.result)
}

struct Johnson<'g> {
    g: &'g DiGraph,
    blocked: Vec<bool>,
    block_map: Vec<HashSet<NodeId>>,
    stack: Vec<EdgeId>,
    result: Vec<Cycle>,
    start: NodeId,
    limit: usize,
}

impl Johnson<'_> {
    /// Recursive Johnson circuit search restricted to nodes with id >= start.
    fn circuit(&mut self, v: NodeId) -> Result<bool, TooManyCycles> {
        let mut found = false;
        self.blocked[v.index()] = true;
        for i in 0..self.g.out_degree(v) {
            let e = self.g.out_edges(v)[i];
            let w = self.g.dst(e);
            if w < self.start {
                continue; // enumerated from an earlier start node already
            }
            if w == self.start {
                if self.result.len() == self.limit {
                    return Err(TooManyCycles { limit: self.limit });
                }
                let mut cycle = self.stack.clone();
                cycle.push(e);
                self.result.push(cycle);
                found = true;
            } else if !self.blocked[w.index()] {
                self.stack.push(e);
                let sub = self.circuit(w)?;
                self.stack.pop();
                found |= sub;
            }
        }
        if found {
            self.unblock(v);
        } else {
            for i in 0..self.g.out_degree(v) {
                let w = self.g.dst(self.g.out_edges(v)[i]);
                if w >= self.start {
                    self.block_map[w.index()].insert(v);
                }
            }
        }
        Ok(found)
    }

    fn unblock(&mut self, v: NodeId) {
        self.blocked[v.index()] = false;
        let waiting: Vec<NodeId> = self.block_map[v.index()].drain().collect();
        for w in waiting {
            if self.blocked[w.index()] {
                self.unblock(w);
            }
        }
    }
}

/// Checks that `cycle` is a well-formed node-simple cycle of `g`.
///
/// Useful as a test helper and as a validator for externally supplied
/// critical cycles.
pub fn is_simple_cycle(g: &DiGraph, cycle: &[EdgeId]) -> bool {
    if cycle.is_empty() {
        return false;
    }
    let mut seen = HashSet::new();
    for (i, &e) in cycle.iter().enumerate() {
        let next = cycle[(i + 1) % cycle.len()];
        if g.dst(e) != g.src(next) {
            return false;
        }
        if !seen.insert(g.src(e)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> DiGraph {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node()).collect();
        for i in 0..n {
            g.add_edge(ids[i], ids[(i + 1) % n]);
        }
        g
    }

    #[test]
    fn single_ring_has_one_cycle() {
        let g = ring(6);
        let cycles = simple_cycles(&g);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 6);
        assert!(is_simple_cycle(&g, &cycles[0]));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        g.add_edge(a, a);
        let cycles = simple_cycles(&g);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 1);
    }

    #[test]
    fn parallel_edges_give_distinct_cycles() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(a, b);
        g.add_edge(b, a);
        // two choices for a->b, one for b->a: two 2-cycles
        assert_eq!(simple_cycles(&g).len(), 2);
    }

    #[test]
    fn complete_digraph_k4_cycle_count() {
        // K4 (complete digraph, no self loops) has 20 simple cycles:
        // 12 of length 2? no: C(4,2)=6 2-cycles, 4*2=8 3-cycles, 6 4-cycles = 20.
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node()).collect();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    g.add_edge(n[i], n[j]);
                }
            }
        }
        let cycles = simple_cycles(&g);
        assert_eq!(cycles.len(), 20);
        assert!(cycles.iter().all(|c| is_simple_cycle(&g, c)));
    }

    #[test]
    fn oscillator_shape_has_four_cycles() {
        // The paper's Example 5 topology: a+,b+ -> c+ -> a-,b- -> c- -> a+,b+
        let mut g = DiGraph::new();
        let ap = g.add_node();
        let bp = g.add_node();
        let cp = g.add_node();
        let am = g.add_node();
        let bm = g.add_node();
        let cm = g.add_node();
        g.add_edge(ap, cp);
        g.add_edge(bp, cp);
        g.add_edge(cp, am);
        g.add_edge(cp, bm);
        g.add_edge(am, cm);
        g.add_edge(bm, cm);
        g.add_edge(cm, ap);
        g.add_edge(cm, bp);
        assert_eq!(simple_cycles(&g).len(), 4);
    }

    #[test]
    fn bound_is_enforced() {
        let g = ring(3);
        assert!(simple_cycles_bounded(&g, 0).is_err());
        assert_eq!(simple_cycles_bounded(&g, 1).unwrap().len(), 1);
    }

    #[test]
    fn dag_has_no_cycles() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        assert!(simple_cycles(&g).is_empty());
    }

    #[test]
    fn is_simple_cycle_rejects_malformed() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let e1 = g.add_edge(a, b);
        let e2 = g.add_edge(b, c);
        let e3 = g.add_edge(c, a);
        let e4 = g.add_edge(b, a);
        assert!(is_simple_cycle(&g, &[e1, e2, e3]));
        assert!(!is_simple_cycle(&g, &[e1, e2])); // does not close
        assert!(!is_simple_cycle(&g, &[])); // empty
        assert!(is_simple_cycle(&g, &[e1, e4]));
    }
}
