//! Bellman–Ford positive-cycle detection over real edge weights.
//!
//! This is the feasibility oracle of Lawler's binary search for the maximum
//! cycle ratio: a candidate ratio `λ` is too small exactly when the graph
//! with weights `delay(e) − λ·tokens(e)` contains a strictly positive cycle.

use crate::{DiGraph, EdgeId, NodeId};

/// Searches for a strictly positive-weight directed cycle.
///
/// Runs longest-path Bellman–Ford from an implicit super-source that reaches
/// every node with distance 0. If any node can still be improved after
/// `n` rounds, a positive cycle exists and one such cycle is extracted from
/// the parent pointers and returned as its list of edges (in traversal
/// order). Returns `None` when every cycle has weight `<= epsilon`.
///
/// `epsilon` guards against floating-point jitter: improvements smaller than
/// `epsilon` are ignored. Pass `0.0` for exact integer-valued weights.
///
/// # Examples
///
/// ```
/// use tsg_graph::DiGraph;
/// use tsg_graph::bellman::positive_cycle;
///
/// let mut g = DiGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b);
/// g.add_edge(b, a);
/// // weights +1, -2: total cycle weight -1 => no positive cycle
/// assert!(positive_cycle(&g, |e| if e.0 == 0 { 1.0 } else { -2.0 }, 0.0).is_none());
/// // weights +1, -0.5: total +0.5 => positive cycle found
/// assert!(positive_cycle(&g, |e| if e.0 == 0 { 1.0 } else { -0.5 }, 0.0).is_some());
/// ```
pub fn positive_cycle(
    g: &DiGraph,
    mut weight: impl FnMut(EdgeId) -> f64,
    epsilon: f64,
) -> Option<Vec<EdgeId>> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let w: Vec<f64> = g.edge_ids().map(&mut weight).collect();
    let mut dist = vec![0.0f64; n];
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];

    let mut updated_node: Option<NodeId> = None;
    for round in 0..n {
        let mut any = false;
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            let cand = dist[u.index()] + w[e.index()];
            if cand > dist[v.index()] + epsilon {
                dist[v.index()] = cand;
                parent[v.index()] = Some(e);
                any = true;
                if round == n - 1 {
                    updated_node = Some(v);
                }
            }
        }
        if !any {
            return None;
        }
    }

    let start = updated_node?;
    // Walk back n steps to guarantee we are standing inside a cycle.
    let mut v = start;
    for _ in 0..n {
        let e = parent[v.index()].expect("node updated in last round must have a parent");
        v = g.src(e);
    }
    // Collect the cycle by walking parents until v repeats.
    let anchor = v;
    let mut rev = Vec::new();
    loop {
        let e = parent[v.index()].expect("cycle nodes have parents");
        rev.push(e);
        v = g.src(e);
        if v == anchor {
            break;
        }
    }
    rev.reverse();
    Some(rev)
}

/// Sum of `weight` over the edges of `cycle`.
pub fn cycle_weight(cycle: &[EdgeId], mut weight: impl FnMut(EdgeId) -> f64) -> f64 {
    cycle.iter().map(|&e| weight(e)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_with_weights(ws: &[f64]) -> (DiGraph, Vec<f64>) {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..ws.len()).map(|_| g.add_node()).collect();
        for i in 0..ws.len() {
            g.add_edge(n[i], n[(i + 1) % ws.len()]);
        }
        (g, ws.to_vec())
    }

    #[test]
    fn zero_cycle_is_not_positive() {
        let (g, w) = ring_with_weights(&[1.0, -1.0]);
        assert!(positive_cycle(&g, |e| w[e.index()], 0.0).is_none());
    }

    #[test]
    fn finds_positive_ring() {
        let (g, w) = ring_with_weights(&[1.0, 1.0, -1.0]);
        let c = positive_cycle(&g, |e| w[e.index()], 0.0).unwrap();
        assert_eq!(c.len(), 3);
        assert!(cycle_weight(&c, |e| w[e.index()]) > 0.0);
    }

    #[test]
    fn picks_the_positive_one_of_two_cycles() {
        // Two disjoint 2-cycles; only the second is positive.
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_edge(a, b); // 0: -1
        g.add_edge(b, a); // 1: -1
        g.add_edge(c, d); // 2: +2
        g.add_edge(d, c); // 3: -1
        let w = [-1.0, -1.0, 2.0, -1.0];
        let cyc = positive_cycle(&g, |e| w[e.index()], 0.0).unwrap();
        assert!(cycle_weight(&cyc, |e| w[e.index()]) > 0.0);
        let nodes: Vec<_> = cyc.iter().map(|&e| g.src(e)).collect();
        assert!(nodes.contains(&c) && nodes.contains(&d));
    }

    #[test]
    fn positive_self_loop() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        g.add_edge(a, a);
        let c = positive_cycle(&g, |_| 0.25, 0.0).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn acyclic_graph_never_positive() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        assert!(positive_cycle(&g, |_| 100.0, 0.0).is_none());
    }

    #[test]
    fn epsilon_suppresses_jitter() {
        let (g, w) = ring_with_weights(&[1e-12, -1e-13]);
        // Tiny positive total, below the tolerance.
        assert!(positive_cycle(&g, |e| w[e.index()], 1e-9).is_none());
    }

    #[test]
    fn extracted_cycle_is_well_formed() {
        let (g, w) = ring_with_weights(&[2.0, -0.5, 0.25, 0.1]);
        let c = positive_cycle(&g, |e| w[e.index()], 0.0).unwrap();
        assert!(crate::cycles::is_simple_cycle(&g, &c));
    }
}
