//! Reachability queries: descendant sets by depth-first search.

use crate::{DiGraph, NodeId};

/// Returns the set of nodes reachable from `source` (including `source`
/// itself) as a boolean membership vector indexed by node id.
///
/// # Examples
///
/// ```
/// use tsg_graph::DiGraph;
/// use tsg_graph::reach::descendants;
///
/// let mut g = DiGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b);
/// let reach = descendants(&g, a);
/// assert!(reach[a.index()] && reach[b.index()] && !reach[c.index()]);
/// ```
pub fn descendants(g: &DiGraph, source: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![source];
    seen[source.index()] = true;
    while let Some(v) = stack.pop() {
        for &e in g.out_edges(v) {
            let w = g.dst(e);
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    seen
}

/// Returns the set of nodes that can reach `target` (including `target`
/// itself) as a boolean membership vector indexed by node id.
pub fn ancestors(g: &DiGraph, target: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![target];
    seen[target.index()] = true;
    while let Some(v) = stack.pop() {
        for &e in g.in_edges(v) {
            let w = g.src(e);
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descendants_follow_direction() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, c);
        let r = descendants(&g, b);
        assert!(!r[a.index()]);
        assert!(r[b.index()]);
        assert!(r[c.index()]);
    }

    #[test]
    fn ancestors_mirror_descendants() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, c);
        let r = ancestors(&g, b);
        assert!(r[a.index()]);
        assert!(r[b.index()]);
        assert!(!r[c.index()]);
    }

    #[test]
    fn cycle_reaches_everything() {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..3).map(|_| g.add_node()).collect();
        for i in 0..3 {
            g.add_edge(n[i], n[(i + 1) % 3]);
        }
        assert!(descendants(&g, n[0]).iter().all(|&x| x));
        assert!(ancestors(&g, n[0]).iter().all(|&x| x));
    }
}
