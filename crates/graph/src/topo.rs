//! Topological ordering with cycle detection (Kahn's algorithm).

use crate::{DiGraph, EdgeId, NodeId};

/// Error returned when a graph (or masked subgraph) contains a cycle and
/// therefore has no topological order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleDetected {
    /// Nodes that could not be ordered; every cycle of the (sub)graph lies
    /// within this set.
    pub remaining: Vec<NodeId>,
}

impl std::fmt::Display for CycleDetected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph contains a cycle through {} unordered node(s)",
            self.remaining.len()
        )
    }
}

impl std::error::Error for CycleDetected {}

/// Computes a topological order of all nodes of `g`.
///
/// # Errors
///
/// Returns [`CycleDetected`] when `g` has a directed cycle; the error carries
/// the set of nodes involved in (or downstream of) cycles.
///
/// # Examples
///
/// ```
/// use tsg_graph::DiGraph;
/// use tsg_graph::topo::topological_order;
///
/// let mut g = DiGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b);
/// assert_eq!(topological_order(&g).unwrap(), vec![a, b]);
/// ```
pub fn topological_order(g: &DiGraph) -> Result<Vec<NodeId>, CycleDetected> {
    topological_order_masked(g, |_| true)
}

/// Computes a topological order of `g` considering only edges for which
/// `edge_enabled` returns `true`.
///
/// This is the form used by the timing simulation: the unmarked-arc subgraph
/// of a live Signal Graph must be acyclic, and its topological order defines
/// the within-period evaluation order.
///
/// # Errors
///
/// Returns [`CycleDetected`] when the masked subgraph has a directed cycle.
pub fn topological_order_masked(
    g: &DiGraph,
    edge_enabled: impl FnMut(EdgeId) -> bool,
) -> Result<Vec<NodeId>, CycleDetected> {
    let mut order = Vec::new();
    topological_order_masked_into(g, edge_enabled, &mut TopoScratch::new(), &mut order)?;
    Ok(order)
}

/// Reusable working buffers of [`topological_order_masked_into`]: a
/// caller re-running Kahn's algorithm per analysis (the cycle-time
/// engine rebuilds its evaluation structure for every graph it
/// analyses) keeps one of these warm instead of allocating the
/// in-degree/enabled/queue vectors each time.
#[derive(Clone, Debug, Default)]
pub struct TopoScratch {
    indeg: Vec<usize>,
    enabled: Vec<bool>,
    queue: Vec<NodeId>,
}

impl TopoScratch {
    /// Empty scratch; the first run sizes it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Buffer-reusing form of [`topological_order_masked`]: clears `order`
/// and fills it in place, with all working state in `scratch` — no
/// allocation once both have warmed to the graph's size.
///
/// # Errors
///
/// Returns [`CycleDetected`] when the masked subgraph has a directed
/// cycle (`order` is left holding the partial order).
pub fn topological_order_masked_into(
    g: &DiGraph,
    mut edge_enabled: impl FnMut(EdgeId) -> bool,
    scratch: &mut TopoScratch,
    order: &mut Vec<NodeId>,
) -> Result<(), CycleDetected> {
    let n = g.node_count();
    let TopoScratch {
        indeg,
        enabled,
        queue,
    } = scratch;
    indeg.clear();
    indeg.resize(n, 0);
    enabled.clear();
    enabled.resize(g.edge_count(), false);
    for e in g.edge_ids() {
        if edge_enabled(e) {
            enabled[e.index()] = true;
            indeg[g.dst(e).index()] += 1;
        }
    }
    queue.clear();
    queue.extend(g.nodes().filter(|v| indeg[v.index()] == 0));
    order.clear();
    order.reserve(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &e in g.out_edges(v) {
            if !enabled[e.index()] {
                continue;
            }
            let w = g.dst(e);
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                queue.push(w);
            }
        }
    }
    if order.len() == n {
        Ok(())
    } else {
        let mut seen = vec![false; n];
        for &v in order.iter() {
            seen[v.index()] = true;
        }
        Err(CycleDetected {
            remaining: g.nodes().filter(|v| !seen[v.index()]).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_a_dag() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(a, c);
        let order = topological_order(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn detects_cycle() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, a);
        let err = topological_order(&g).unwrap_err();
        assert_eq!(err.remaining.len(), 2);
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn masked_order_ignores_disabled_edges() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let fwd = g.add_edge(a, b);
        let back = g.add_edge(b, a);
        // Full graph is cyclic...
        assert!(topological_order(&g).is_err());
        // ...but masking out the back edge makes it a DAG.
        let order = topological_order_masked(&g, |e| e != back).unwrap();
        assert_eq!(order.len(), 2);
        let _ = fwd;
    }

    #[test]
    fn empty_graph_orders_trivially() {
        let g = DiGraph::new();
        assert!(topological_order(&g).unwrap().is_empty());
    }

    #[test]
    fn isolated_nodes_all_appear() {
        let mut g = DiGraph::new();
        g.add_nodes(4);
        assert_eq!(topological_order(&g).unwrap().len(), 4);
    }
}
