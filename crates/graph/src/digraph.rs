//! A compact directed multigraph with stable integer identifiers.

use std::fmt;

/// Identifier of a node in a [`DiGraph`].
///
/// Node ids are dense indices: the `i`-th added node has id `i`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

/// Identifier of an edge in a [`DiGraph`].
///
/// Edge ids are dense indices: the `i`-th added edge has id `i`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed multigraph stored as edge lists plus per-node adjacency.
///
/// Parallel edges and self-loops are permitted (Timed Signal Graphs use
/// self-loops for single-signal oscillators and parallel arcs for
/// distinct-delay constraints between the same pair of events).
///
/// # Examples
///
/// ```
/// use tsg_graph::DiGraph;
///
/// let mut g = DiGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let e = g.add_edge(a, b);
/// assert_eq!(g.src(e), a);
/// assert_eq!(g.dst(e), b);
/// assert_eq!(g.out_edges(a), &[e]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiGraph {
    edges: Vec<(NodeId, NodeId)>,
    out: Vec<Vec<EdgeId>>,
    inn: Vec<Vec<EdgeId>>,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity reserved for `nodes` nodes and
    /// `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            edges: Vec::with_capacity(edges),
            out: Vec::with_capacity(nodes),
            inn: Vec::with_capacity(nodes),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.out.len() as u32);
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        id
    }

    /// Adds `n` nodes and returns the id of the first one.
    pub fn add_nodes(&mut self, n: usize) -> NodeId {
        let first = NodeId(self.out.len() as u32);
        for _ in 0..n {
            self.add_node();
        }
        first
    }

    /// Adds a directed edge `src -> dst` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a node of this graph.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        assert!(src.index() < self.out.len(), "src node out of bounds");
        assert!(dst.index() < self.out.len(), "dst node out of bounds");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push((src, dst));
        self.out[src.index()].push(id);
        self.inn[dst.index()].push(id);
        id
    }

    /// Detaches edge `e` from its endpoints' adjacency lists.
    ///
    /// The edge's endpoint record stays in place — [`edge_count`]
    /// (Self::edge_count) is unchanged, [`src`](Self::src)/[`dst`]
    /// (Self::dst) keep answering, and no other edge's id shifts — but
    /// [`out_edges`](Self::out_edges)/[`in_edges`](Self::in_edges) no
    /// longer report `e`. This tombstoning is what keeps dense edge ids
    /// stable across removals; callers that iterate `edge_ids` must
    /// track liveness themselves. Removing an already-detached edge is
    /// a no-op. `O(degree)`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an edge of this graph.
    pub fn remove_edge(&mut self, e: EdgeId) {
        assert!(e.index() < self.edges.len(), "edge out of bounds");
        let (s, d) = self.edges[e.index()];
        self.out[s.index()].retain(|&x| x != e);
        self.inn[d.index()].retain(|&x| x != e);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Source node of `e`.
    #[inline]
    pub fn src(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].0
    }

    /// Destination node of `e`.
    #[inline]
    pub fn dst(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].1
    }

    /// Endpoint pair `(src, dst)` of `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// Edges leaving `n`, in insertion order.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out[n.index()]
    }

    /// Edges entering `n`, in insertion order.
    #[inline]
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.inn[n.index()]
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out[n.index()].len()
    }

    /// In-degree of `n`.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.inn[n.index()].len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.out.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Returns `true` when every node can reach every other node.
    ///
    /// The empty graph is considered strongly connected; a single node with
    /// no edges is as well.
    pub fn is_strongly_connected(&self) -> bool {
        self.node_count() <= 1 || crate::scc::tarjan_scc(self).len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn adjacency_bookkeeping() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let e1 = g.add_edge(a, b);
        let e2 = g.add_edge(a, c);
        let e3 = g.add_edge(b, c);
        assert_eq!(g.out_edges(a), &[e1, e2]);
        assert_eq!(g.in_edges(c), &[e2, e3]);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.endpoints(e3), (b, c));
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e1 = g.add_edge(a, b);
        let e2 = g.add_edge(a, b);
        let e3 = g.add_edge(a, a);
        assert_ne!(e1, e2);
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.src(e3), g.dst(e3));
    }

    #[test]
    fn add_nodes_bulk() {
        let mut g = DiGraph::new();
        let first = g.add_nodes(5);
        assert_eq!(first, NodeId(0));
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_invalid_node_panics() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        g.add_edge(a, NodeId(7));
    }

    #[test]
    fn remove_edge_detaches_but_keeps_ids_stable() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e1 = g.add_edge(a, b);
        let e2 = g.add_edge(a, b);
        let e3 = g.add_edge(b, a);
        g.remove_edge(e1);
        assert_eq!(g.edge_count(), 3, "tombstoned edge keeps its slot");
        assert_eq!(g.out_edges(a), &[e2]);
        assert_eq!(g.in_edges(b), &[e2]);
        assert_eq!(g.endpoints(e1), (a, b), "endpoint record survives");
        assert_eq!(g.out_edges(b), &[e3]);
        // Removing again is a no-op.
        g.remove_edge(e1);
        assert_eq!(g.out_edges(a), &[e2]);
        // A later edge still gets the next dense id.
        let e4 = g.add_edge(a, a);
        assert_eq!(e4, EdgeId(3));
    }

    #[test]
    fn remove_self_loop() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let e = g.add_edge(a, a);
        g.remove_edge(e);
        assert!(g.out_edges(a).is_empty());
        assert!(g.in_edges(a).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn remove_edge_invalid_id_panics() {
        let mut g = DiGraph::new();
        g.add_node();
        g.remove_edge(EdgeId(0));
    }

    #[test]
    fn strongly_connected_cycle() {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node()).collect();
        for i in 0..4 {
            g.add_edge(n[i], n[(i + 1) % 4]);
        }
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn not_strongly_connected_path() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        assert!(!g.is_strongly_connected());
    }

    #[test]
    fn display_ids() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(EdgeId(0).to_string(), "e0");
    }
}
