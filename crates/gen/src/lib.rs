//! # tsg-gen — workload generators for Timed Signal Graph analyses
//!
//! Deterministic, seeded generators for the graphs the paper's evaluation
//! uses (Section VIII) and for the scaling/property-test workloads:
//!
//! * [`ring`] — an `n`-event ring with `k` evenly spaced tokens,
//! * [`handshake_pipeline`] — a ladder of 4-event handshake stages,
//! * [`stack66`] — the 66-event / 112-arc stack-class graph matching the
//!   size data point of Section VIII.B,
//! * [`torus()`](torus::torus) — 2-D torus marked graphs with a closed-form cycle time,
//! * [`random_live_tsg`] — seeded random live, strongly connected,
//!   initially safe graphs for property tests and sweeps.

pub mod pipeline;
pub mod random;
pub mod rings;
pub mod torus;

pub use pipeline::{handshake_pipeline, stack66, PipelineConfig};
pub use random::{random_live_tsg, RandomTsgConfig};
pub use rings::ring;
pub use torus::torus;
