//! Ring generators.

use tsg_core::SignalGraph;

/// Builds an `n`-event ring with `tokens` initial tokens spread as evenly
/// as possible, every arc carrying `delay`.
///
/// The cycle time is exactly `n * delay / tokens`, which makes rings the
/// calibration workload of the scaling benchmarks: the border set has
/// `tokens` events regardless of `n`, so the paper's algorithm runs in
/// time `O(tokens² · n)` — linear in `n` at fixed token count.
///
/// # Panics
///
/// Panics if `n == 0`, `tokens == 0` or `tokens > n`.
///
/// # Examples
///
/// ```
/// use tsg_core::analysis::CycleTimeAnalysis;
///
/// let sg = tsg_gen::ring(10, 2, 3.0);
/// let analysis = CycleTimeAnalysis::run(&sg).unwrap();
/// assert_eq!(analysis.cycle_time().as_f64(), 15.0); // 10*3/2
/// ```
pub fn ring(n: usize, tokens: usize, delay: f64) -> SignalGraph {
    assert!(n > 0, "ring needs at least one event");
    assert!(tokens > 0, "a live ring needs at least one token");
    assert!(tokens <= n, "at most one token per arc (initial safety)");
    let mut b = SignalGraph::builder();
    let events: Vec<_> = (0..n).map(|i| b.event(&format!("v{i}"))).collect();
    // Token on arc i -> i+1 when the segment index advances.
    for i in 0..n {
        let next = (i + 1) % n;
        let marked = (i + 1) * tokens / n != i * tokens / n;
        if marked {
            b.marked_arc(events[i], events[next], delay);
        } else {
            b.arc(events[i], events[next], delay);
        }
    }
    b.build().expect("ring construction is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_core::analysis::CycleTimeAnalysis;

    #[test]
    fn single_token_ring() {
        let sg = ring(8, 1, 2.0);
        assert_eq!(sg.event_count(), 8);
        assert_eq!(sg.arc_count(), 8);
        assert_eq!(sg.border_events().len(), 1);
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(a.cycle_time().as_f64(), 16.0);
    }

    #[test]
    fn token_count_matches() {
        for tokens in 1..=6 {
            let sg = ring(6, tokens, 1.0);
            let marked = sg.arc_ids().filter(|&a| sg.arc(a).is_marked()).count();
            assert_eq!(marked, tokens, "tokens={tokens}");
            assert_eq!(sg.border_events().len(), tokens);
        }
    }

    #[test]
    fn cycle_time_formula() {
        for (n, k) in [(5, 1), (12, 3), (9, 2), (7, 7)] {
            let sg = ring(n, k, 4.0);
            let a = CycleTimeAnalysis::run(&sg).unwrap();
            let want = n as f64 * 4.0 / k as f64;
            assert!(
                (a.cycle_time().as_f64() - want).abs() < 1e-9,
                "n={n} k={k}: {} != {want}",
                a.cycle_time().as_f64()
            );
        }
    }

    #[test]
    fn saturated_ring_all_marked() {
        let sg = ring(4, 4, 1.0);
        assert!(sg.arc_ids().all(|a| sg.arc(a).is_marked()));
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(a.cycle_time().as_f64(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_tokens_panics() {
        let _ = ring(4, 0, 1.0);
    }
}
