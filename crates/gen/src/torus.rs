//! Two-dimensional torus marked graphs (systolic-array-shaped workloads).
//!
//! An `h × w` torus has an event per grid cell, a rightward arc along each
//! row ring and a downward arc along each column ring, with one token per
//! row ring and one per column ring. Any simple cycle wraps the torus `a`
//! times horizontally and `b` times vertically, giving ratio
//! `(a·w·d_row + b·h·d_col) / (a + b)` — maximised by a pure row or column
//! ring, so the cycle time is exactly `max(w·d_row, h·d_col)`. That closed
//! form makes the torus a self-checking workload for the property tests
//! and a 2-D-structured scaling benchmark (rings and pipelines are 1-D).

use tsg_core::SignalGraph;

/// Builds the `h × w` torus with the given per-arc delays.
///
/// The cycle time is exactly `max(w as f64 * d_row, h as f64 * d_col)`.
///
/// # Panics
///
/// Panics if `h < 2` or `w < 2`.
///
/// # Examples
///
/// ```
/// use tsg_core::analysis::CycleTimeAnalysis;
///
/// let sg = tsg_gen::torus(3, 5, 2.0, 4.0);
/// let tau = CycleTimeAnalysis::run(&sg).unwrap().cycle_time();
/// assert_eq!(tau.as_f64(), 12.0); // max(5*2, 3*4)
/// ```
pub fn torus(h: usize, w: usize, d_row: f64, d_col: f64) -> SignalGraph {
    assert!(h >= 2 && w >= 2, "torus needs at least 2x2 cells");
    let mut b = SignalGraph::builder();
    let mut cells = Vec::with_capacity(h * w);
    for r in 0..h {
        for c in 0..w {
            cells.push(b.event(&format!("x{r}_{c}")));
        }
    }
    let at = |r: usize, c: usize| cells[r * w + c];
    for r in 0..h {
        for c in 0..w {
            // rightward arc; the wrap-around arc carries the row token
            let dst = at(r, (c + 1) % w);
            if c + 1 == w {
                b.marked_arc(at(r, c), dst, d_row);
            } else {
                b.arc(at(r, c), dst, d_row);
            }
            // downward arc; the wrap-around arc carries the column token
            let dst = at((r + 1) % h, c);
            if r + 1 == h {
                b.marked_arc(at(r, c), dst, d_col);
            } else {
                b.arc(at(r, c), dst, d_col);
            }
        }
    }
    b.build().expect("torus construction is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_core::analysis::CycleTimeAnalysis;

    #[test]
    fn closed_form_cycle_time() {
        for (h, w, dr, dc) in [
            (2usize, 2usize, 1.0, 1.0),
            (3, 5, 2.0, 4.0),
            (4, 3, 1.0, 5.0),
            (6, 6, 3.0, 2.0),
        ] {
            let sg = torus(h, w, dr, dc);
            let want = (w as f64 * dr).max(h as f64 * dc);
            let got = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
            assert!(
                (got - want).abs() < 1e-9,
                "torus({h},{w},{dr},{dc}): {got} != {want}"
            );
        }
    }

    #[test]
    fn structure_counts() {
        let sg = torus(3, 4, 1.0, 1.0);
        assert_eq!(sg.event_count(), 12);
        assert_eq!(sg.arc_count(), 24);
        // one token per row ring (3) + one per column ring (4)
        let tokens = sg.arc_ids().filter(|&a| sg.arc(a).is_marked()).count();
        assert_eq!(tokens, 7);
    }

    #[test]
    fn border_set_is_rows_plus_columns() {
        // Heads of row tokens: (r, 0) for each row; heads of column tokens:
        // (0, c) for each column. (0,0) is shared: h + w - 1 borders.
        let sg = torus(4, 5, 1.0, 1.0);
        assert_eq!(sg.border_events().len(), 4 + 5 - 1);
    }

    #[test]
    fn critical_cycle_is_the_slower_ring() {
        let sg = torus(3, 5, 10.0, 1.0); // rows much slower: τ = 50
        let analysis = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(analysis.cycle_time().as_f64(), 50.0);
        // the witness must be a row ring: 5 arcs, 1 token
        assert_eq!(analysis.critical_cycle().len(), 5);
        assert_eq!(analysis.cycle_time().periods(), 1);
    }

    #[test]
    fn baselines_agree_on_torus() {
        let sg = torus(4, 4, 3.0, 2.0);
        let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        assert_eq!(tsg_baselines_check::howard(&sg), want);
    }

    // tiny indirection so the dev-dependency is only named once
    mod tsg_baselines_check {
        pub fn howard(sg: &tsg_core::SignalGraph) -> f64 {
            // tsg-gen cannot depend on tsg-baselines (cycle); emulate via
            // enumeration over the repetitive view instead.
            let view = sg.repetitive_view();
            let cycles = tsg_graph_cycles(&view.graph);
            cycles
                .iter()
                .map(|c| {
                    let len: f64 = c
                        .iter()
                        .map(|e| sg.arc(view.arcs[e.index()]).delay().get())
                        .sum();
                    let eps = c
                        .iter()
                        .filter(|e| sg.arc(view.arcs[e.index()]).is_marked())
                        .count() as f64;
                    len / eps
                })
                .fold(0.0, f64::max)
        }

        fn tsg_graph_cycles(g: &tsg_graph::DiGraph) -> Vec<Vec<tsg_graph::EdgeId>> {
            tsg_graph::cycles::simple_cycles_bounded(g, 1_000_000).unwrap()
        }
    }
}
