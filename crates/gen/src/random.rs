//! Seeded random live Timed Signal Graphs.
//!
//! Construction guarantees every structural invariant the builder checks:
//!
//! 1. lay all `n` events on a Hamiltonian ring with `tokens` marked arcs —
//!    this gives strong connectivity and liveness;
//! 2. add random chord arcs: a chord that respects the topological order of
//!    the current unmarked subgraph stays unmarked, any other chord is
//!    added marked (which can never create a token-free cycle);
//! 3. draw integer delays uniformly from `0..=max_delay` (integral values
//!    keep cycle-time comparisons exact in tests);
//! 4. optionally attach a prefix (an initial event with disengageable arcs
//!    into a few border events), exercising the non-repetitive machinery.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tsg_core::SignalGraph;

/// Parameters of [`random_live_tsg`].
#[derive(Clone, Copy, Debug)]
pub struct RandomTsgConfig {
    /// Number of repetitive events (>= 2).
    pub events: usize,
    /// Number of initial tokens on the base ring (1..=events).
    pub tokens: usize,
    /// Number of extra chord arcs.
    pub chords: usize,
    /// Maximum integer delay (inclusive).
    pub max_delay: u32,
    /// Attach an initial event with disengageable arcs into the graph.
    pub with_prefix: bool,
}

impl Default for RandomTsgConfig {
    fn default() -> Self {
        RandomTsgConfig {
            events: 12,
            tokens: 3,
            chords: 10,
            max_delay: 9,
            with_prefix: false,
        }
    }
}

/// Generates a random valid Timed Signal Graph from a seed.
///
/// The same `(seed, config)` pair always yields the same graph.
///
/// # Panics
///
/// Panics if `config.events < 2` or `config.tokens` is not in
/// `1..=config.events`.
///
/// # Examples
///
/// ```
/// use tsg_gen::{random_live_tsg, RandomTsgConfig};
/// use tsg_core::analysis::CycleTimeAnalysis;
///
/// let sg = random_live_tsg(42, RandomTsgConfig::default());
/// assert!(CycleTimeAnalysis::run(&sg).is_ok());
/// ```
pub fn random_live_tsg(seed: u64, config: RandomTsgConfig) -> SignalGraph {
    assert!(config.events >= 2, "need at least two events");
    assert!(
        (1..=config.events).contains(&config.tokens),
        "tokens must be in 1..=events"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = config.events;
    let mut b = SignalGraph::builder();
    let events: Vec<_> = (0..n).map(|i| b.event(&format!("v{i}"))).collect();

    let delay = |rng: &mut SmallRng| rng.gen_range(0..=config.max_delay) as f64;

    // 1. Hamiltonian ring with evenly spread tokens.
    // `order[v]` is the position of v in the topological order of the
    // unmarked subgraph: cutting the ring at the arc after the last token
    // makes positions 0..n well-defined.
    let mut order = vec![0usize; n];
    let marked_ring: Vec<bool> = (0..n)
        .map(|i| (i + 1) * config.tokens / n != i * config.tokens / n)
        .collect();
    // Rotate so that the ring arc n-1 -> 0 is marked, making 0..n a valid
    // topological position assignment for unmarked ring arcs.
    let last_marked = (0..n)
        .rev()
        .find(|&i| marked_ring[i])
        .expect("tokens >= 1 guarantees a marked arc");
    let start = (last_marked + 1) % n;
    for (pos, off) in (0..n).enumerate() {
        order[(start + off) % n] = pos;
    }
    let d = delay(&mut rng);
    for i in 0..n {
        let next = (i + 1) % n;
        let del = if i == 0 { d } else { delay(&mut rng) };
        if marked_ring[i] {
            b.marked_arc(events[i], events[next], del);
        } else {
            b.arc(events[i], events[next], del);
        }
    }

    // 2. Random chords.
    for _ in 0..config.chords {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            // self-chords must carry a token to stay live
            b.marked_arc(events[u], events[v], delay(&mut rng));
        } else if order[u] < order[v] {
            b.arc(events[u], events[v], delay(&mut rng));
        } else {
            b.marked_arc(events[u], events[v], delay(&mut rng));
        }
    }

    // 3. Optional prefix.
    if config.with_prefix {
        let init = b.initial_event("go");
        let fin = b.finite_event("armed");
        b.arc(init, fin, delay(&mut rng));
        // Disengageable arcs into up to three ring heads of marked arcs
        // (border events), which may legally receive prefix constraints.
        let mut attached = 0;
        for i in 0..n {
            if marked_ring[i] && attached < 3 {
                let head = events[(i + 1) % n];
                b.disengageable_arc(fin, head, delay(&mut rng));
                attached += 1;
            }
        }
    }

    b.build().expect("construction maintains all invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_core::analysis::CycleTimeAnalysis;

    #[test]
    fn deterministic_for_seed() {
        let a = random_live_tsg(7, RandomTsgConfig::default());
        let b = random_live_tsg(7, RandomTsgConfig::default());
        assert_eq!(a.event_count(), b.event_count());
        assert_eq!(a.arc_count(), b.arc_count());
        for (x, y) in a.arc_ids().zip(b.arc_ids()) {
            assert_eq!(a.arc(x).delay(), b.arc(y).delay());
            assert_eq!(a.arc(x).src(), b.arc(y).src());
        }
    }

    #[test]
    fn many_seeds_build_and_analyze() {
        for seed in 0..50 {
            let sg = random_live_tsg(seed, RandomTsgConfig::default());
            let analysis =
                CycleTimeAnalysis::run(&sg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(analysis.cycle_time().as_f64() >= 0.0);
        }
    }

    #[test]
    fn prefix_variant_builds() {
        for seed in 0..20 {
            let cfg = RandomTsgConfig {
                with_prefix: true,
                ..RandomTsgConfig::default()
            };
            let sg = random_live_tsg(seed, cfg);
            assert!(sg.prefix_events().count() >= 2, "seed {seed}");
            assert!(CycleTimeAnalysis::run(&sg).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn dense_variant_builds() {
        let cfg = RandomTsgConfig {
            events: 30,
            tokens: 7,
            chords: 120,
            max_delay: 20,
            with_prefix: false,
        };
        for seed in 0..10 {
            let sg = random_live_tsg(seed, cfg);
            assert_eq!(sg.event_count(), 30);
            assert_eq!(sg.arc_count(), 30 + 120);
            assert!(CycleTimeAnalysis::run(&sg).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn token_extremes() {
        for tokens in [1, 6, 12] {
            let cfg = RandomTsgConfig {
                tokens,
                ..RandomTsgConfig::default()
            };
            let sg = random_live_tsg(3, cfg);
            assert!(!sg.border_events().is_empty());
        }
    }
}
