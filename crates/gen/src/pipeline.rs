//! Handshake-pipeline and stack-controller generators.

use tsg_core::{EventId, SignalGraph, SignalGraphBuilder};

/// Delay parameters of a handshake stage.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Delay of request-side logic (C-element-class), default 2.
    pub req_delay: f64,
    /// Delay of acknowledge-side logic (inverter-class), default 1.
    pub ack_delay: f64,
    /// Delay of the inter-stage wiring, default 1.
    pub coupling_delay: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            req_delay: 2.0,
            ack_delay: 1.0,
            coupling_delay: 1.0,
        }
    }
}

struct Stage {
    rp: EventId,
    rm: EventId,
    ap: EventId,
    am: EventId,
}

fn add_stage(b: &mut SignalGraphBuilder, k: usize, cfg: &PipelineConfig) -> Stage {
    let rp = b.event(&format!("r{k}+"));
    let rm = b.event(&format!("r{k}-"));
    let ap = b.event(&format!("a{k}+"));
    let am = b.event(&format!("a{k}-"));
    // Four-phase handshake cycle of the stage, one token on the return arc.
    b.arc(rp, ap, cfg.req_delay);
    b.arc(ap, rm, cfg.ack_delay);
    b.arc(rm, am, cfg.req_delay);
    b.marked_arc(am, rp, cfg.ack_delay);
    Stage { rp, rm, ap, am }
}

fn couple(b: &mut SignalGraphBuilder, k: usize, left: &Stage, right: &Stage, cfg: &PipelineConfig) {
    // Data flows forward on acknowledges. Alternate stage boundaries hold a
    // data token (half-full initialisation, as in a Muller pipeline), which
    // keeps the environment loop's token count proportional to depth and
    // the cycle time constant — the "constant response time" property.
    if k % 2 == 1 {
        b.marked_arc(left.ap, right.rp, cfg.coupling_delay);
    } else {
        b.arc(left.ap, right.rp, cfg.coupling_delay);
    }
    b.marked_arc(right.ap, left.rp, cfg.coupling_delay);
    b.arc(right.am, left.rm, cfg.coupling_delay);
}

/// Builds a linear pipeline of `stages` four-phase handshake stages with a
/// closing environment loop, so the graph is autonomous and strongly
/// connected.
///
/// Event count is `4·stages + 2`; arc count `7·stages`
/// (4 intra-stage arcs, 3 arcs per stage boundary, plus a 3-arc
/// environment loop).
///
/// # Panics
///
/// Panics if `stages == 0`.
///
/// # Examples
///
/// ```
/// use tsg_core::analysis::CycleTimeAnalysis;
/// use tsg_gen::{handshake_pipeline, PipelineConfig};
///
/// let sg = handshake_pipeline(4, PipelineConfig::default());
/// assert_eq!(sg.event_count(), 18);
/// assert!(CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64() > 0.0);
/// ```
pub fn handshake_pipeline(stages: usize, cfg: PipelineConfig) -> SignalGraph {
    assert!(stages > 0, "pipeline needs at least one stage");
    let mut b = SignalGraph::builder();
    let built: Vec<Stage> = (0..stages).map(|k| add_stage(&mut b, k, &cfg)).collect();
    for (k, w) in built.windows(2).enumerate() {
        couple(&mut b, k, &w[0], &w[1], &cfg);
    }
    // Environment: output of the last stage feeds a sink/source pair that
    // restarts the first stage.
    let out = b.event("out");
    let inp = b.event("in");
    b.arc(built[stages - 1].ap, out, cfg.coupling_delay);
    b.arc(out, inp, cfg.coupling_delay);
    b.marked_arc(inp, built[0].rp, cfg.coupling_delay);
    b.build().expect("pipeline construction is always valid")
}

/// The "asynchronous stack with constant response time" stand-in of Section
/// VIII.B: a 16-stage handshake ladder with environment loop — exactly
/// **66 events and 112 arcs**, the size the paper reports analysing in
/// 74 ms on a DEC 5000.
///
/// # Examples
///
/// ```
/// let sg = tsg_gen::stack66();
/// assert_eq!(sg.event_count(), 66);
/// assert_eq!(sg.arc_count(), 112);
/// ```
pub fn stack66() -> SignalGraph {
    let sg = handshake_pipeline(16, PipelineConfig::default());
    debug_assert_eq!(sg.event_count(), 66);
    debug_assert_eq!(sg.arc_count(), 112);
    sg
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_core::analysis::CycleTimeAnalysis;

    #[test]
    fn stack66_dimensions_match_the_paper() {
        let sg = stack66();
        assert_eq!(sg.event_count(), 66);
        assert_eq!(sg.arc_count(), 112);
    }

    #[test]
    fn stack66_analyzes() {
        let sg = stack66();
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert!(a.cycle_time().as_f64() > 0.0);
        assert!(!a.critical_cycle().is_empty());
    }

    #[test]
    fn pipeline_size_formulas() {
        for stages in 1..10 {
            let sg = handshake_pipeline(stages, PipelineConfig::default());
            assert_eq!(sg.event_count(), 4 * stages + 2);
            assert_eq!(sg.arc_count(), 7 * stages);
        }
    }

    #[test]
    fn border_grows_with_stages() {
        let b4 = handshake_pipeline(4, PipelineConfig::default())
            .border_events()
            .len();
        let b8 = handshake_pipeline(8, PipelineConfig::default())
            .border_events()
            .len();
        assert!(b8 > b4);
    }

    #[test]
    fn constant_response_time() {
        // The defining property of the Section VIII.B stack: cycle time
        // stays bounded as the pipeline deepens.
        let cfg = PipelineConfig::default();
        let taus: Vec<f64> = [1usize, 2, 4, 8, 16, 32]
            .into_iter()
            .map(|s| {
                CycleTimeAnalysis::run(&handshake_pipeline(s, cfg))
                    .unwrap()
                    .cycle_time()
                    .as_f64()
            })
            .collect();
        let stage_cycle = 2.0 * cfg.req_delay + 2.0 * cfg.ack_delay;
        for (i, tau) in taus.iter().enumerate() {
            assert!(*tau >= stage_cycle - 1e-9, "idx {i}: {tau}");
            assert!(*tau <= 2.0 * stage_cycle, "idx {i}: {tau} not constant-ish");
        }
    }
}
