//! End-to-end `tsg serve` tests against the real binary.
//!
//! The acceptance bar: a mixed multi-request script piped into
//! `tsg serve` comes back with one response line per request, in request
//! order, and each `output` field is byte-identical to the equivalent
//! one-shot `tsg analyze` / `tsg sim` invocation.

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use tsg_serve::json::Json;

fn tsg() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tsg"))
}

/// Runs a one-shot `tsg` invocation and returns its stdout.
fn one_shot(args: &[&str]) -> String {
    let out = tsg().args(args).output().expect("spawn tsg");
    assert!(
        out.status.success(),
        "tsg {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("tsg output is UTF-8")
}

/// Pipes `script` into `tsg serve` and returns the parsed response
/// lines.
fn serve_session(script: &str, extra: &[&str]) -> Vec<Json> {
    let mut child = tsg()
        .arg("serve")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsg serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("serve exits on EOF");
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("responses are UTF-8")
        .lines()
        .map(|line| Json::parse(line).expect("response lines are JSON"))
        .collect()
}

/// Writes the test fixtures once, returning their paths.
fn fixtures() -> (PathBuf, PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join("tsg-cli-serve-test");
    std::fs::create_dir_all(&dir).unwrap();
    let osc_g = dir.join("osc.g");
    let ring_g = dir.join("ring5.g");
    let osc_ckt = dir.join("osc.ckt");
    std::fs::write(&osc_g, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
    std::fs::write(&ring_g, tsg_stg::EXAMPLE_RING5).unwrap();
    std::fs::write(
        &osc_ckt,
        tsg_circuit::parse::write_ckt(&tsg_circuit::library::c_element_oscillator()),
    )
    .unwrap();
    (osc_g, ring_g, osc_ckt)
}

#[test]
fn mixed_50_request_script_is_in_order_and_byte_identical() {
    let (osc_g, ring_g, osc_ckt) = fixtures();
    let (osc_g, ring_g, osc_ckt) = (
        osc_g.to_string_lossy().into_owned(),
        ring_g.to_string_lossy().into_owned(),
        osc_ckt.to_string_lossy().into_owned(),
    );

    // Five request shapes, each with its equivalent one-shot invocation.
    // The serve pool runs 4 workers; ordering must come from the
    // protocol, not from timing.
    let shapes: Vec<(String, Vec<&str>)> = vec![
        (
            format!(
                r#""cmd":"analyze","path":{}"#,
                Json::from(osc_g.as_str()).dump()
            ),
            vec!["analyze", &osc_g],
        ),
        (
            format!(
                r#""cmd":"analyze","path":{},"baselines":true,"slack":true"#,
                Json::from(osc_g.as_str()).dump()
            ),
            vec!["analyze", &osc_g, "--baselines", "--slack"],
        ),
        (
            format!(
                r#""cmd":"sim","path":{},"periods":2"#,
                Json::from(osc_g.as_str()).dump()
            ),
            vec!["sim", &osc_g, "--periods", "2"],
        ),
        (
            format!(
                r#""cmd":"sim","path":{},"horizon":400,"queue":"calendar""#,
                Json::from(osc_ckt.as_str()).dump()
            ),
            vec!["sim", &osc_ckt, "--horizon", "400", "--queue", "calendar"],
        ),
        (
            format!(
                r#""cmd":"sim","path":{}"#,
                Json::from(ring_g.as_str()).dump()
            ),
            vec!["sim", &ring_g],
        ),
    ];
    let expected: HashMap<usize, String> = shapes
        .iter()
        .enumerate()
        .map(|(k, (_, args))| (k, one_shot(args)))
        .collect();

    let mut script = String::new();
    for id in 0..50usize {
        let (body, _) = &shapes[id % shapes.len()];
        script.push_str(&format!("{{\"id\":{id},{body}}}\n"));
    }
    // Rider requests: a failing one and a stats probe, still in order.
    script.push_str("{\"id\":50,\"cmd\":\"analyze\",\"path\":\"/nonexistent/x.g\"}\n");
    script.push_str("{\"id\":51,\"cmd\":\"stats\"}\n");

    let responses = serve_session(&script, &["--threads", "4"]);
    assert_eq!(responses.len(), 52, "one response per request");
    for (i, response) in responses.iter().enumerate() {
        assert_eq!(
            response.get("id").and_then(Json::as_f64),
            Some(i as f64),
            "responses must stream in request order"
        );
    }
    for id in 0..50usize {
        let response = &responses[id];
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "request {id}");
        let output = response.get("output").and_then(Json::as_str).unwrap();
        assert_eq!(
            output,
            expected[&(id % shapes.len())],
            "request {id}: served output must be byte-identical to the one-shot CLI"
        );
    }
    assert_eq!(responses[50].get("ok"), Some(&Json::Bool(false)));
    assert!(responses[50]
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("reading /nonexistent/x.g"));
    // With 4 workers the stats snapshot is a lower bound only; exact
    // counters are covered by the single-worker test below.
    assert_eq!(responses[51].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(responses[51].get("threads"), Some(&Json::Num(4.0)));
}

#[test]
fn single_worker_stats_count_exactly() {
    let (osc_g, _, _) = fixtures();
    let osc_g = osc_g.to_string_lossy().into_owned();
    let p = Json::from(osc_g.as_str()).dump();
    let script = format!(
        "{{\"id\":1,\"cmd\":\"analyze\",\"path\":{p}}}\n\
         {{\"id\":2,\"cmd\":\"analyze\",\"path\":\"/nonexistent/y.g\"}}\n\
         {{\"id\":3,\"cmd\":\"sim\",\"path\":{p},\"periods\":1}}\n\
         {{\"id\":4,\"cmd\":\"stats\"}}\n"
    );
    let responses = serve_session(&script, &["--threads", "1"]);
    assert_eq!(responses.len(), 4);
    assert_eq!(responses[3].get("served"), Some(&Json::Num(2.0)));
    assert_eq!(responses[3].get("failed"), Some(&Json::Num(1.0)));
    assert_eq!(responses[3].get("threads"), Some(&Json::Num(1.0)));
}

#[test]
fn session_script_through_the_binary_matches_explore() {
    let (osc_g, _, _) = fixtures();
    let osc_g = osc_g.to_string_lossy().into_owned();
    let p = Json::from(osc_g.as_str()).dump();
    let script = format!(
        "{{\"id\":1,\"cmd\":\"session.open\",\"session\":\"s\",\"path\":{p}}}\n\
         {{\"id\":2,\"cmd\":\"session.edit\",\"session\":\"s\",\"edits\":\
         [{{\"src\":\"a+\",\"dst\":\"c+\",\"delay\":8}}]}}\n\
         {{\"id\":3,\"cmd\":\"session.close\",\"session\":\"s\"}}\n"
    );
    let responses = serve_session(&script, &["--threads", "2"]);
    assert_eq!(responses.len(), 3);
    for r in &responses {
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
    }
    let edited = responses[1].get("output").and_then(Json::as_str).unwrap();
    assert!(edited.contains("cycle time: 15"), "{edited}");
    assert!(edited.contains("re-simulated"), "{edited}");
    // The served session and the one-shot explore command walk the same
    // code path: their summaries agree on the edited cycle time.
    let explored = one_shot(&["explore", &osc_g, "--edit", "a+->c+=8"]);
    assert!(explored.contains("cycle time: 15"), "{explored}");
    assert!(responses[2]
        .get("output")
        .and_then(Json::as_str)
        .unwrap()
        .contains("after 1 edit(s)"),);
}

#[test]
fn serve_rejects_bad_flags() {
    let out = tsg().args(["serve", "--wat"]).output().unwrap();
    assert!(!out.status.success());
    let out = tsg()
        .args(["serve", "--listen", "carrier-pigeon:coop"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("tcp:HOST:PORT"));
    let out = tsg()
        .args(["serve", "--max-connections", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = tsg()
        .args(["bench-serve", "--connections", "zero"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

/// `tsg bench-serve --quick` runs a real in-process load test and
/// leaves the tracked benchmark artifact behind with sane numbers.
#[test]
fn bench_serve_quick_writes_benchmark_json() {
    let dir = std::env::temp_dir().join("tsg-cli-bench-serve-test");
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("BENCH_serve.json");
    let _ = std::fs::remove_file(&out_path);
    let stdout = one_shot(&[
        "bench-serve",
        "--quick",
        "--threads",
        "2",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(stdout.contains("bench-serve: 4 connection(s) x 8 request(s)"));
    assert!(stdout.contains("latency: p50"));
    let doc = Json::parse(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
    assert_eq!(doc.get("bench"), Some(&Json::from("serve")));
    assert_eq!(doc.get("connections"), Some(&Json::Num(4.0)));
    let ok = doc.get("total_ok").and_then(Json::as_f64).unwrap();
    let failed = doc.get("total_failed").and_then(Json::as_f64).unwrap();
    assert_eq!(ok + failed, 32.0, "every request accounted for");
    assert_eq!(failed, 0.0, "a clean run fails nothing");
    assert!(doc.get("throughput_rps").and_then(Json::as_f64).unwrap() > 0.0);
    let latency = doc.get("latency_ms").expect("latency block");
    for key in ["p50", "p95", "max"] {
        assert!(latency.get(key).and_then(Json::as_f64).unwrap() >= 0.0);
    }
    let server = doc.get("server").expect("server counters");
    assert_eq!(server.get("served").and_then(Json::as_f64), Some(32.0));
}
