//! `tsg` — command-line performance analyzer for Timed Signal Graphs.
//!
//! ```text
//! tsg analyze FILE [--diagram] [--dot] [--baselines] [--default-delay X]
//! tsg demo {oscillator|muller5|stack66}
//! ```
//!
//! `.g` files are parsed as Signal Transition Graphs (marked-graph
//! subclass, with the `.delay` timing extension); `.ckt` files are parsed
//! as gate-level netlists, checked for semimodularity, and run through the
//! TRASPEC-style extraction first.

use std::process::ExitCode;

use tsg_core::analysis::diagram::{self, DiagramOptions};
use tsg_core::analysis::event_sim::EventSimulation;
use tsg_core::analysis::sim::TimingSimulation;
use tsg_core::analysis::CycleTimeAnalysis;
use tsg_core::SignalGraph;
use tsg_sim::TraceRecorder;

const USAGE: &str = "\
tsg — performance analysis based on timing simulation (DAC'94)

USAGE:
    tsg analyze FILE [--diagram] [--dot] [--baselines] [--slack] [--default-delay X]
    tsg sim FILE.g [--periods N] [--vcd PATH] [--default-delay X]
    tsg sim FILE.ckt [--horizon X] [--vcd PATH]
    tsg convert FILE --to {g|dot}
    tsg demo {oscillator|muller5|stack66}

FILE formats (by extension):
    .g     Signal Transition Graph (astg dialect, `.delay` extension)
    .ckt   gate-level netlist (extracted via the TRASPEC-style flow;
           `sim` runs the netlist directly through the event-driven
           transport-delay simulator)

`sim` runs the shared tsg-sim event kernel and prints the transition
stream; `--vcd PATH` additionally dumps a waveform any VCD viewer opens.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    diagram: bool,
    dot: bool,
    baselines: bool,
    slack: bool,
    default_delay: f64,
}

fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("analyze") => {
            let file = args.get(1).ok_or("analyze needs a FILE argument")?;
            let mut opts = Options {
                diagram: false,
                dot: false,
                baselines: false,
                slack: false,
                default_delay: 1.0,
            };
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--diagram" => opts.diagram = true,
                    "--dot" => opts.dot = true,
                    "--baselines" => opts.baselines = true,
                    "--slack" => opts.slack = true,
                    "--default-delay" => {
                        i += 1;
                        opts.default_delay = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .ok_or("--default-delay needs a number")?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
                i += 1;
            }
            let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            let sg = load(file, &text, opts.default_delay)?;
            Ok(report(&sg, &opts))
        }
        Some("sim") => {
            let file = args.get(1).ok_or("sim needs a FILE argument")?;
            let mut periods: Option<u32> = None;
            let mut horizon: Option<f64> = None;
            let mut vcd: Option<String> = None;
            let mut default_delay: Option<f64> = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--periods" => {
                        i += 1;
                        periods = Some(
                            args.get(i)
                                .and_then(|v| v.parse().ok())
                                .filter(|&p| p >= 1)
                                .ok_or("--periods needs a positive integer")?,
                        );
                    }
                    "--horizon" => {
                        i += 1;
                        horizon = Some(
                            args.get(i)
                                .and_then(|v| v.parse().ok())
                                .filter(|h: &f64| h.is_finite() && *h > 0.0)
                                .ok_or("--horizon needs a positive number")?,
                        );
                    }
                    "--vcd" => {
                        i += 1;
                        vcd = Some(args.get(i).cloned().ok_or("--vcd needs an output PATH")?);
                    }
                    "--default-delay" => {
                        i += 1;
                        default_delay = Some(
                            args.get(i)
                                .and_then(|v| v.parse().ok())
                                .ok_or("--default-delay needs a number")?,
                        );
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
                i += 1;
            }
            let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            if file.ends_with(".ckt") {
                if periods.is_some() {
                    return Err(
                        "--periods applies to .g signal graphs; netlist simulations take \
                         --horizon"
                            .to_owned(),
                    );
                }
                if default_delay.is_some() {
                    return Err(
                        "--default-delay applies to .g signal graphs; netlists carry their \
                         own pin delays"
                            .to_owned(),
                    );
                }
                let nl = tsg_circuit::parse::parse_ckt(&text).map_err(|e| e.to_string())?;
                simulate_netlist(&nl, horizon.unwrap_or(100.0), vcd.as_deref())
            } else {
                if horizon.is_some() {
                    return Err(
                        "--horizon applies to .ckt netlists; signal-graph simulations take \
                         --periods"
                            .to_owned(),
                    );
                }
                let sg = tsg_stg::parse_stg(
                    &text,
                    tsg_stg::StgOptions {
                        default_delay: default_delay.unwrap_or(1.0),
                    },
                )
                .map_err(|e| e.to_string())?;
                simulate_graph(&sg, periods.unwrap_or(4), vcd.as_deref())
            }
        }
        Some("convert") => {
            let file = args.get(1).ok_or("convert needs a FILE argument")?;
            let to = match (args.get(2).map(String::as_str), args.get(3)) {
                (Some("--to"), Some(t)) => t.as_str(),
                _ => return Err("convert needs `--to {g|dot}`".to_owned()),
            };
            let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            let sg = load(file, &text, 1.0)?;
            match to {
                "g" => tsg_stg::write_stg(&sg, "converted").map_err(|e| e.to_string()),
                "dot" => Ok(tsg_core::dot::to_dot(&sg, "converted")),
                other => Err(format!("unknown target format {other:?}")),
            }
        }
        Some("demo") => {
            let which = args.get(1).map(String::as_str).unwrap_or("oscillator");
            let opts = Options {
                diagram: true,
                dot: false,
                baselines: true,
                slack: false,
                default_delay: 1.0,
            };
            let sg = match which {
                "oscillator" => tsg_circuit::library::c_element_oscillator_tsg(),
                "muller5" => tsg_extract::extract(
                    &tsg_circuit::library::muller_ring(5, 1.0),
                    tsg_extract::ExtractOptions::default(),
                )
                .map_err(|e| e.to_string())?,
                "stack66" => tsg_gen::stack66(),
                other => return Err(format!("unknown demo {other:?}")),
            };
            Ok(report(&sg, &opts))
        }
        Some("--help") | Some("-h") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

/// `tsg sim` on a gate-level netlist: the event-driven transport-delay
/// simulator on the shared kernel, with optional VCD capture.
fn simulate_netlist(
    nl: &tsg_circuit::Netlist,
    horizon: f64,
    vcd: Option<&str>,
) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut sim = tsg_circuit::EventDrivenSim::new(nl);
    if vcd.is_some() {
        sim.enable_trace();
    }
    let trace = sim
        .run(horizon, 2_000_000)
        .map_err(|e| format!("simulation failed: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulated {} transition(s) on {} signal(s) to horizon {horizon}",
        trace.len(),
        nl.signal_count()
    );
    for s in nl.signals() {
        if let Some(period) = tsg_circuit::EventDrivenSim::steady_period(&trace, s, true) {
            let _ = writeln!(out, "  {:<8} steady period {period}", nl.name(s));
        }
    }
    if let Some(path) = vcd {
        let recorder = sim.take_trace().expect("trace was enabled");
        recorder
            .dump_vcd(path)
            .map_err(|e| format!("writing {path}: {e}"))?;
        let _ = writeln!(out, "VCD waveform written to {path}");
    }
    Ok(out)
}

/// `tsg sim` on a Signal Graph: the kernel-backed event simulation over
/// a fixed number of periods, with optional VCD capture.
fn simulate_graph(sg: &SignalGraph, periods: u32, vcd: Option<&str>) -> Result<String, String> {
    use std::fmt::Write as _;
    let sim = EventSimulation::run(sg, periods);
    let chron = sim.chronological(sg);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulated {} occurrence(s) of {} event(s) over {periods} period(s)",
        chron.len(),
        sg.event_count()
    );
    for (e, i, t) in &chron {
        let _ = writeln!(out, "  t({}_{i}) = {t}", sg.label(*e));
    }
    if let Some(path) = vcd {
        let mut recorder = TraceRecorder::new("tsg");
        sim.record_trace(sg, &mut recorder);
        recorder
            .dump_vcd(path)
            .map_err(|e| format!("writing {path}: {e}"))?;
        let _ = writeln!(out, "VCD waveform written to {path}");
    }
    Ok(out)
}

fn load(file: &str, text: &str, default_delay: f64) -> Result<SignalGraph, String> {
    if file.ends_with(".ckt") {
        let nl = tsg_circuit::parse::parse_ckt(text).map_err(|e| e.to_string())?;
        if nl.signal_count() <= 24 {
            let rep = tsg_extract::explore(&nl, 2_000_000);
            if !rep.is_semimodular() {
                return Err(format!(
                    "circuit is not semimodular ({} violation(s)); not speed-independent",
                    rep.violations.len()
                ));
            }
        }
        tsg_extract::extract(&nl, tsg_extract::ExtractOptions::default()).map_err(|e| e.to_string())
    } else {
        tsg_stg::parse_stg(text, tsg_stg::StgOptions { default_delay }).map_err(|e| e.to_string())
    }
}

fn report(sg: &SignalGraph, opts: &Options) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph: {} events, {} arcs, {} border event(s)",
        sg.event_count(),
        sg.arc_count(),
        sg.border_events().len()
    );
    match CycleTimeAnalysis::run(sg) {
        Ok(a) => {
            let _ = writeln!(out, "cycle time: {}", a.cycle_time());
            let _ = writeln!(
                out,
                "critical cycle: {}",
                sg.display_path(a.critical_cycle())
            );
            let borders: Vec<String> = a
                .critical_borders()
                .iter()
                .map(|&e| sg.label(e).to_string())
                .collect();
            let _ = writeln!(out, "critical border event(s): {}", borders.join(", "));
            for rec in a.records() {
                let cells: Vec<String> = rec
                    .distances
                    .iter()
                    .map(|(i, t, d)| format!("δ({i})={t}/{i}={d:.4}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "  {:<6} {}",
                    sg.label(rec.event).to_string(),
                    cells.join("  ")
                );
            }
        }
        Err(e) => {
            let _ = writeln!(out, "cycle time: undefined ({e})");
        }
    }
    if opts.baselines {
        let _ = writeln!(out, "baselines:");
        if let Some(t) = tsg_baselines::howard_cycle_time(sg) {
            let _ = writeln!(out, "  howard        : {}", t.as_f64());
        }
        if let Some(t) = tsg_baselines::karp_cycle_time(sg) {
            let _ = writeln!(out, "  karp          : {}", t.as_f64());
        }
        if let Some(t) = tsg_baselines::lawler_cycle_time(sg, 60) {
            let _ = writeln!(out, "  lawler        : {}", t.as_f64());
        }
        if let Ok(Some(t)) = tsg_baselines::enumerate_cycle_time(sg, 100_000) {
            let _ = writeln!(out, "  enumeration   : {}", t.as_f64());
        }
        if let Some(t) = tsg_baselines::longrun_estimate(sg, 64) {
            let _ = writeln!(out, "  long-run sim  : {t}");
        }
    }
    if opts.slack {
        match tsg_core::analysis::slack::SlackAnalysis::run(sg) {
            Ok(sa) => {
                let critical = sa.critical_arcs(1e-9);
                let _ = writeln!(
                    out,
                    "slack: {} of {} cyclic arcs are timing-critical",
                    critical.len(),
                    sg.arc_ids().filter(|&a| sa.slack(a).is_some()).count()
                );
                for a in sg.arc_ids() {
                    if let Some(s) = sa.slack(a) {
                        let arc = sg.arc(a);
                        let _ = writeln!(
                            out,
                            "  {} -> {} : {}",
                            sg.label(arc.src()),
                            sg.label(arc.dst()),
                            if s <= 1e-9 {
                                "CRITICAL".to_owned()
                            } else {
                                format!("slack {s}")
                            }
                        );
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(out, "slack: unavailable ({e})");
            }
        }
    }
    if opts.diagram && sg.repetitive_count() > 0 {
        let sim = TimingSimulation::run(sg, 3);
        let _ = writeln!(out, "timing diagram (3 periods):");
        out.push_str(&diagram::render(sg, &sim, DiagramOptions::default()));
    }
    if opts.dot {
        out.push_str(&tsg_core::dot::to_dot(sg, "tsg"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_is_printed() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
        let out = run(&["--help".into()]).unwrap();
        assert!(out.contains("analyze"));
    }

    #[test]
    fn demo_oscillator_reports_tau_10() {
        let out = run(&["demo".into(), "oscillator".into()]).unwrap();
        assert!(out.contains("cycle time: 10"), "{out}");
        assert!(out.contains("critical cycle: a+ -3-> c+ -2-> a- -3-> c- -2*-> a+"));
        assert!(out.contains("howard"));
    }

    #[test]
    fn demo_muller5_reports_20_3() {
        let out = run(&["demo".into(), "muller5".into()]).unwrap();
        assert!(out.contains("cycle time: 20/3"), "{out}");
    }

    #[test]
    fn demo_stack66_runs() {
        let out = run(&["demo".into(), "stack66".into()]).unwrap();
        assert!(out.contains("66 events, 112 arcs"), "{out}");
    }

    #[test]
    fn unknown_flags_error() {
        assert!(run(&["analyze".into(), "x.g".into(), "--wat".into()]).is_err());
        assert!(run(&["frob".into()]).is_err());
        assert!(run(&["demo".into(), "nope".into()]).is_err());
    }

    #[test]
    fn analyze_stg_file() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("osc.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let out = run(&[
            "analyze".into(),
            path.to_string_lossy().into_owned(),
            "--baselines".into(),
        ])
        .unwrap();
        assert!(out.contains("cycle time: 10"), "{out}");
        assert!(out.contains("enumeration   : 10"));
    }

    #[test]
    fn convert_stg_to_dot() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ring.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_RING5).unwrap();
        let out = run(&[
            "convert".into(),
            path.to_string_lossy().into_owned(),
            "--to".into(),
            "dot".into(),
        ])
        .unwrap();
        assert!(out.starts_with("digraph"));
        let out = run(&[
            "convert".into(),
            path.to_string_lossy().into_owned(),
            "--to".into(),
            "g".into(),
        ])
        .unwrap();
        assert!(out.contains(".marking"));
        assert!(run(&[
            "convert".into(),
            path.to_string_lossy().into_owned(),
            "--to".into(),
            "pdf".into(),
        ])
        .is_err());
    }

    #[test]
    fn analyze_with_slack() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("osc2.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let out = run(&[
            "analyze".into(),
            path.to_string_lossy().into_owned(),
            "--slack".into(),
        ])
        .unwrap();
        assert!(out.contains("CRITICAL"), "{out}");
        assert!(out.contains("timing-critical"), "{out}");
    }

    #[test]
    fn sim_stg_file_prints_occurrences() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim-osc.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let out = run(&[
            "sim".into(),
            path.to_string_lossy().into_owned(),
            "--periods".into(),
            "2".into(),
        ])
        .unwrap();
        assert!(out.contains("over 2 period(s)"), "{out}");
        assert!(out.contains("t(a+_0)"), "{out}");
    }

    #[test]
    fn sim_stg_file_writes_vcd() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim-vcd.g");
        let vcd = dir.join("sim-vcd.vcd");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let out = run(&[
            "sim".into(),
            path.to_string_lossy().into_owned(),
            "--vcd".into(),
            vcd.to_string_lossy().into_owned(),
        ])
        .unwrap();
        assert!(out.contains("VCD waveform written"), "{out}");
        let dump = std::fs::read_to_string(&vcd).unwrap();
        assert!(dump.contains("$timescale 1ps $end"), "{dump}");
        assert!(dump.contains("$var wire 1"), "{dump}");
    }

    #[test]
    fn sim_ckt_file_reports_steady_period_and_vcd() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim-osc.ckt");
        let vcd = dir.join("sim-osc.vcd");
        let nl = tsg_circuit::library::c_element_oscillator();
        std::fs::write(&path, tsg_circuit::parse::write_ckt(&nl)).unwrap();
        let out = run(&[
            "sim".into(),
            path.to_string_lossy().into_owned(),
            "--horizon".into(),
            "400".into(),
            "--vcd".into(),
            vcd.to_string_lossy().into_owned(),
        ])
        .unwrap();
        assert!(out.contains("steady period 10"), "{out}");
        assert!(out.contains("VCD waveform written"), "{out}");
        assert!(std::fs::read_to_string(&vcd).unwrap().contains("$dumpvars"));
    }

    #[test]
    fn sim_flag_validation() {
        assert!(run(&["sim".into()]).is_err());
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flags.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let p = path.to_string_lossy().into_owned();
        assert!(run(&["sim".into(), p.clone(), "--periods".into(), "0".into()]).is_err());
        assert!(run(&["sim".into(), p.clone(), "--horizon".into(), "nan".into()]).is_err());
        assert!(run(&["sim".into(), p.clone(), "--vcd".into()]).is_err());
        assert!(run(&["sim".into(), p.clone(), "--wat".into()]).is_err());
        // Flags that do not apply to the input kind are rejected, not
        // silently ignored.
        let err = run(&["sim".into(), p, "--horizon".into(), "50".into()]).unwrap_err();
        assert!(err.contains("--periods"), "{err}");
        let ckt = dir.join("flags.ckt");
        let nl = tsg_circuit::library::c_element_oscillator();
        std::fs::write(&ckt, tsg_circuit::parse::write_ckt(&nl)).unwrap();
        let c = ckt.to_string_lossy().into_owned();
        let err = run(&["sim".into(), c.clone(), "--periods".into(), "3".into()]).unwrap_err();
        assert!(err.contains("--horizon"), "{err}");
        let err = run(&["sim".into(), c, "--default-delay".into(), "5".into()]).unwrap_err();
        assert!(err.contains("--default-delay"), "{err}");
    }

    #[test]
    fn analyze_ckt_file() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("osc.ckt");
        let nl = tsg_circuit::library::c_element_oscillator();
        std::fs::write(&path, tsg_circuit::parse::write_ckt(&nl)).unwrap();
        let out = run(&[
            "analyze".into(),
            path.to_string_lossy().into_owned(),
            "--diagram".into(),
        ])
        .unwrap();
        assert!(out.contains("cycle time: 10"), "{out}");
        assert!(out.contains("timing diagram"));
    }
}
