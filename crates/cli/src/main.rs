//! `tsg` — command-line performance analyzer for Timed Signal Graphs.
//!
//! ```text
//! tsg analyze FILE [--diagram] [--dot] [--baselines] [--default-delay X]
//! tsg serve [--threads N] [--listen tcp:ADDR|unix:PATH]
//! tsg demo {oscillator|muller5|stack66}
//! ```
//!
//! `.g` files are parsed as Signal Transition Graphs (marked-graph
//! subclass, with the `.delay` timing extension); `.ckt` files are parsed
//! as gate-level netlists, checked for semimodularity, and run through the
//! TRASPEC-style extraction first. The analysis/simulation helpers live
//! in `tsg_serve::ops`, shared with the long-running `tsg serve` mode so
//! served responses are byte-identical to one-shot invocations.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use tsg_core::analysis::session::AnalysisSession;
use tsg_core::analysis::{Corner, KernelBackend, ScenarioSet};
use tsg_serve::json::Json;
use tsg_serve::ops::{self, AnalyzeOptions, EditSpec, SimOptions};
use tsg_serve::ServeOptions;
use tsg_sim::BatchRunner;

const USAGE: &str = "\
tsg — performance analysis based on timing simulation (DAC'94)

USAGE:
    tsg analyze FILE [--diagram] [--dot] [--baselines] [--slack] [--default-delay X]
                     [--threads N] [--kernel {auto|portable|sse2|avx2}]
                     [--corners min,typ,max] [--derate PCT]
                     [--samples K] [--seed S]
    tsg sim FILE.g... [--periods N] [--vcd PATH] [--default-delay X]
                      [--threads N] [--queue {heap|calendar}]
    tsg sim FILE.ckt... [--horizon X] [--vcd PATH] [--threads N]
                        [--queue {heap|calendar}]
    tsg explore FILE [--edit SRC->DST=DELAY]... [--default-delay X]
                     [--kernel {auto|portable|sse2|avx2}]
                     [--report {text|json}]
                     [--optimize [--moves N] [--seed S] [--samples K]
                                 [--objective {tau|tau-p95}]]
    tsg serve [--threads N] [--max-sessions N] [--max-pending N]
              [--default-deadline MS] [--drain-deadline MS]
              [--io-timeout MS] [--max-request-bytes N]
              [--max-connections N]
              [--listen tcp:HOST:PORT | --listen unix:PATH]
              [--kernel {auto|portable|sse2|avx2}]
    tsg ping {tcp:HOST:PORT|unix:PATH} [--count N] [--deadline-ms MS]
             [--retries N] [--max-backoff-ms MS]
    tsg bench-serve [--connections N] [--requests N] [--threads N]
                    [--out PATH] [--quick]
    tsg convert FILE --to {g|dot}
    tsg demo {oscillator|muller5|stack66}

FILE formats (by extension):
    .g     Signal Transition Graph (astg dialect, `.delay` extension)
    .ckt   gate-level netlist (extracted via the TRASPEC-style flow;
           `sim` runs the netlist directly through the event-driven
           transport-delay simulator)

`sim` runs the shared tsg-sim event kernel and prints the transition
stream; `--vcd PATH` additionally dumps a waveform any VCD viewer opens.
`--queue` selects the kernel queue backend (default: heap). Several
files fan out across a `--threads N` pool (default: all cores); the
analysis itself also runs its b border simulations on that pool, in
lockstep lane chunks of the SIMD-friendly wide kernel.

`--kernel` pins the wide-kernel backend (default `auto`: the widest
the CPU supports — AVX2, then SSE2, then the portable loop). All
backends are bit-identical; requesting one the CPU lacks is an error,
never a silent downgrade.

`analyze --corners min,typ,max` sweeps delay corners as extra scenario
lanes of the same wide-kernel pass — every arc derated by `--derate`
PCT (default 10) for `min`, inflated for `max` — and reports τ per
corner, the τ distribution, and per-arc criticality (the fraction of
scenarios in which the arc lies on the critical cycle). `--samples K
--seed S` sweeps K seeded Monte-Carlo delay scenarios instead (each
arc's delay drawn uniformly within ±PCT); sample j of K is
bit-identical regardless of K. Corners win when both are given.

`explore` opens an incremental analysis session on FILE and applies
each --edit (delay reassignment of the arc SRC->DST) in order,
re-simulating only the dirty region per edit and reporting the cycle
time after each step — the paper's bottleneck-hunting loop. With
--optimize the session then runs the speculative design-exploration
loop: --moves N candidate edits (delay nudges, arc rewires,
pipeline-stage insertions; default 16) are proposed by a --seed-driven
deterministic generator, each scored by incremental re-analysis
against a snapshot, committed only when it strictly lowers the
--objective, and rolled back otherwise, so the accepted trajectory is
monotone. `--objective tau` (the default) minimises the nominal cycle
time; `--objective tau-p95` enables `--samples K` (default 16) seeded
delay scenarios on the session and minimises the 95th-percentile τ
over them — robust optimization under delay variation.
`--report json` renders the whole trajectory as one JSON object per
line (per-edit/per-move tau, critical cycle, rows resumed) for
downstream tooling. In every mode the final state is verified
bit-identical to a from-scratch analysis.

`serve` runs the long-running analysis service: newline-delimited JSON
requests (analyze/sim/batch/stats/session.open/session.edit/
session.close) on stdin — or a TCP/Unix socket with --listen, where a
single readiness event loop multiplexes every connection onto one
shared pool (thousands of idle or slow clients cost buffers, not
threads; `--max-connections N` caps the live set, excess clients wait
in the OS accept backlog) — answered in request order by a persistent
warm worker pool. Workers are supervised: one dying mid-request
answers that request `worker_lost` and respawns with a fresh
workspace. Responses are byte-identical to the
one-shot commands; EOF or Ctrl-C shuts down gracefully. Each open
incremental session pins O(b²·n) warm state to a worker for its whole
life, so long-lived deployments should cap them: `--max-sessions N`
answers any session.open beyond N open sessions with a structured
error until one closes (default: unbounded).

Serve hardening knobs: every request may carry `deadline_ms`
(`--default-deadline MS` applies one to requests that do not); a fired
deadline answers a structured `deadline_exceeded` error with the
partial progress. `--max-pending N` bounds the dispatch queue —
past it requests are answered `overloaded` with a retry-after hint.
`--drain-deadline MS` (default 5000) bounds graceful shutdown: after
Ctrl-C, in-flight work gets that long before being cancelled.
`--io-timeout MS` arms socket read/write timeouts so stalled clients
cannot hold connections forever; `--max-request-bytes N` (default
1048576) bounds one request line. The `TSG_CHAOS` environment variable
arms fault injection (see the README's Operations section).

`ping` is the matching load probe: it sends `--count N` stats requests
(default 1) over one connection, honours `overloaded` retry-after
hints with decorrelated-jitter backoff — each sleep is drawn uniformly
between the server's `retry_after_ms` hint (the floor) and 3x the
previous sleep, capped by `--max-backoff-ms MS` (default 5000), so a
fleet of synchronized clients spreads out instead of thundering back
at a recovering server in lockstep (`--retries N`, default 3) — and
reports ok/failed counts and latency; `--deadline-ms` attaches a
deadline to each probe.

`bench-serve` is the serve-tier load generator: it spawns an in-process
TCP server and `--connections N` concurrent client connections (default
8), each issuing `--requests N` requests (default 32) drawn from three
mixes (inline analyze, session open/edit/close, stats+sim), and writes
throughput plus p50/p95/max latency into `BENCH_serve.json` (`--out
PATH`) so the serve tier joins the tracked perf trajectory. `--quick`
shrinks the run for smoke tests; `TSG_CHAOS` faults apply, making it a
ready-made hostile-load harness.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn parse_threads(args: &[String], i: usize) -> Result<usize, String> {
    BatchRunner::parse_threads(args.get(i).map(String::as_str))
}

/// Parses a millisecond duration argument for `flag`.
fn parse_ms(args: &[String], i: usize, flag: &str) -> Result<Duration, String> {
    args.get(i)
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms >= 1)
        .map(Duration::from_millis)
        .ok_or(format!("{flag} needs a positive number of milliseconds"))
}

/// Parses and strictly resolves a `--kernel` argument: an unknown name
/// or a backend the CPU lacks is a flag error up front, never a silent
/// downgrade mid-run.
fn parse_kernel(args: &[String], i: usize) -> Result<KernelBackend, String> {
    args.get(i)
        .ok_or("--kernel needs {auto|portable|sse2|avx2}".to_owned())?
        .parse::<KernelBackend>()
        .map_err(|e| e.to_string())?
        .resolve()
        .map_err(|e| e.to_string())
}

fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("analyze") => {
            let file = args.get(1).ok_or("analyze needs a FILE argument")?;
            let mut opts = AnalyzeOptions::default();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--diagram" => opts.diagram = true,
                    "--dot" => opts.dot = true,
                    "--baselines" => opts.baselines = true,
                    "--slack" => opts.slack = true,
                    "--default-delay" => {
                        i += 1;
                        opts.default_delay = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .ok_or("--default-delay needs a number")?;
                    }
                    "--threads" => {
                        i += 1;
                        opts.threads = Some(parse_threads(args, i)?);
                    }
                    "--kernel" => {
                        i += 1;
                        opts.kernel = parse_kernel(args, i)?;
                    }
                    "--corners" => {
                        i += 1;
                        let list = args
                            .get(i)
                            .ok_or("--corners needs a comma-separated list (min,typ,max)")?;
                        opts.corners = list
                            .split(',')
                            .map(|c| c.trim().parse::<Corner>().map_err(|e| e.to_string()))
                            .collect::<Result<Vec<_>, _>>()?;
                        if opts.corners.is_empty() {
                            return Err("--corners needs at least one corner name".to_owned());
                        }
                    }
                    "--derate" => {
                        i += 1;
                        opts.derate = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .filter(|d: &f64| d.is_finite() && *d >= 0.0 && *d < 100.0)
                            .ok_or("--derate needs a percentage in [0, 100)")?;
                    }
                    "--samples" => {
                        i += 1;
                        opts.samples = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .filter(|&k: &usize| (1..=4096).contains(&k))
                            .ok_or("--samples needs an integer in 1..=4096")?;
                    }
                    "--seed" => {
                        i += 1;
                        opts.seed = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .ok_or("--seed needs a non-negative integer")?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
                i += 1;
            }
            let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            let sg = ops::load(file, &text, opts.default_delay)?;
            Ok(ops::report(&sg, &opts))
        }
        Some("sim") => {
            let mut files: Vec<String> = Vec::new();
            let mut i = 1;
            while i < args.len() && !args[i].starts_with("--") {
                files.push(args[i].clone());
                i += 1;
            }
            if files.is_empty() {
                return Err("sim needs a FILE argument".to_owned());
            }
            let mut threads: Option<usize> = None;
            let mut opts = SimOptions::default();
            while i < args.len() {
                match args[i].as_str() {
                    "--periods" => {
                        i += 1;
                        opts.periods = Some(
                            args.get(i)
                                .and_then(|v| v.parse().ok())
                                .filter(|&p| p >= 1)
                                .ok_or("--periods needs a positive integer")?,
                        );
                    }
                    "--horizon" => {
                        i += 1;
                        opts.horizon = Some(
                            args.get(i)
                                .and_then(|v| v.parse().ok())
                                .filter(|h: &f64| h.is_finite() && *h > 0.0)
                                .ok_or("--horizon needs a positive number")?,
                        );
                    }
                    "--vcd" => {
                        i += 1;
                        opts.vcd = Some(args.get(i).cloned().ok_or("--vcd needs an output PATH")?);
                    }
                    "--default-delay" => {
                        i += 1;
                        opts.default_delay = Some(
                            args.get(i)
                                .and_then(|v| v.parse().ok())
                                .ok_or("--default-delay needs a number")?,
                        );
                    }
                    "--threads" => {
                        i += 1;
                        threads = Some(parse_threads(args, i)?);
                    }
                    "--queue" => {
                        i += 1;
                        opts.queue = args.get(i).ok_or("--queue needs a backend name")?.parse()?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
                i += 1;
            }
            if files.len() > 1 && opts.vcd.is_some() {
                return Err(
                    "--vcd writes one waveform; simulate one FILE at a time with it".to_owned(),
                );
            }
            // Independent files fan out across the kernel's batch pool;
            // results come back in input order, so the printout is
            // identical to a sequential loop. Per-file failures don't
            // discard the other files' transcripts: every section is
            // printed, failed ones inline, and the command still exits
            // nonzero if anything failed.
            let outputs: Vec<Result<String, String>> =
                BatchRunner::sized(threads).run(&files, |file| ops::simulate_file(file, &opts));
            let single = files.len() == 1;
            if single {
                // Single-file errors already name the file where it
                // matters (read/parse failures); no prefix, matching the
                // pre-fan-out behaviour.
                return outputs.into_iter().next().expect("one file, one result");
            }
            let mut out = String::new();
            let mut failed: Vec<&String> = Vec::new();
            for (file, result) in files.iter().zip(outputs) {
                out.push_str(&format!("== {file} ==\n"));
                match result {
                    Ok(section) => out.push_str(&section),
                    Err(e) => {
                        out.push_str(&format!("error: {e}\n"));
                        failed.push(file);
                    }
                }
            }
            if failed.is_empty() {
                Ok(out)
            } else {
                print!("{out}");
                Err(format!(
                    "{} of {} file(s) failed: {}",
                    failed.len(),
                    files.len(),
                    failed
                        .iter()
                        .map(|f| f.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            }
        }
        Some("explore") => {
            let file = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("explore needs a FILE argument")?;
            let mut edits: Vec<EditSpec> = Vec::new();
            let mut default_delay = 1.0;
            let mut kernel = KernelBackend::Auto;
            let mut optimize = false;
            let mut moves: usize = 16;
            let mut seed: u64 = 0;
            let mut objective = ops::Objective::Tau;
            let mut samples: usize = 16;
            let mut optimizer_flag: Option<&str> = None;
            let mut report_json = false;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--edit" => {
                        i += 1;
                        let spec = args.get(i).ok_or("--edit needs SRC->DST=DELAY")?;
                        edits.push(EditSpec::parse(spec)?);
                    }
                    "--default-delay" => {
                        i += 1;
                        default_delay = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .ok_or("--default-delay needs a number")?;
                    }
                    "--kernel" => {
                        i += 1;
                        kernel = parse_kernel(args, i)?;
                    }
                    "--optimize" => optimize = true,
                    "--moves" => {
                        i += 1;
                        moves = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .filter(|&n: &usize| n >= 1)
                            .ok_or("--moves needs a positive integer")?;
                        optimizer_flag.get_or_insert("--moves");
                    }
                    "--seed" => {
                        i += 1;
                        seed = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .ok_or("--seed needs a non-negative integer")?;
                        optimizer_flag.get_or_insert("--seed");
                    }
                    "--objective" => {
                        i += 1;
                        objective = ops::Objective::parse(
                            args.get(i)
                                .ok_or("--objective needs a name (tau, tau-p95)")?,
                        )?;
                        optimizer_flag.get_or_insert("--objective");
                    }
                    "--samples" => {
                        i += 1;
                        samples = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .filter(|&k: &usize| (1..=4096).contains(&k))
                            .ok_or("--samples needs an integer in 1..=4096")?;
                        optimizer_flag.get_or_insert("--samples");
                    }
                    "--report" => {
                        i += 1;
                        report_json = match args.get(i).map(String::as_str) {
                            Some("text") => false,
                            Some("json") => true,
                            _ => return Err("--report takes text or json".to_owned()),
                        };
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
                i += 1;
            }
            if let (Some(flag), false) = (optimizer_flag, optimize) {
                return Err(format!("{flag} requires --optimize"));
            }
            let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            let sg = ops::load(file, &text, default_delay)?;
            let mut session =
                AnalysisSession::open_with_kernel(sg, kernel).map_err(|e| e.to_string())?;
            let critical_of = |session: &AnalysisSession| {
                session
                    .graph()
                    .display_path(session.analysis().critical_cycle())
                    .to_string()
            };
            let mut out = String::new();
            if report_json {
                let critical = critical_of(&session);
                let line = Json::Obj(vec![
                    ("opened".to_owned(), Json::from(file.as_str())),
                    (
                        "events".to_owned(),
                        Json::from(session.graph().event_count() as u64),
                    ),
                    (
                        "arcs".to_owned(),
                        Json::from(session.graph().arc_count() as u64),
                    ),
                    (
                        "borders".to_owned(),
                        Json::from(session.analysis().border_events().len() as u64),
                    ),
                    (
                        "tau".to_owned(),
                        Json::Num(session.analysis().cycle_time().as_f64()),
                    ),
                    ("critical".to_owned(), Json::from(critical.as_str())),
                ]);
                let _ = writeln!(out, "{}", line.dump());
            } else {
                let _ = writeln!(
                    out,
                    "opened session on {file}: {} events, {} arcs, {} border event(s)",
                    session.graph().event_count(),
                    session.graph().arc_count(),
                    session.analysis().border_events().len()
                );
                out.push_str(&ops::session_summary(&session));
            }
            for spec in &edits {
                let delta = ops::apply_edits(&mut session, std::slice::from_ref(spec))?;
                if report_json {
                    let edit = format!("{}->{}={}", spec.src, spec.dst, spec.delay);
                    let critical = critical_of(&session);
                    let line = Json::Obj(vec![
                        ("edit".to_owned(), Json::from(edit.as_str())),
                        ("tau".to_owned(), Json::Num(delta.after.as_f64())),
                        ("critical".to_owned(), Json::from(critical.as_str())),
                        ("dirty".to_owned(), Json::from(delta.dirty as u64)),
                        ("borders".to_owned(), Json::from(delta.borders as u64)),
                        ("rows".to_owned(), Json::from(delta.rows as u64)),
                        ("rows_total".to_owned(), Json::from(delta.rows_total as u64)),
                    ]);
                    let _ = writeln!(out, "{}", line.dump());
                } else {
                    let _ = writeln!(
                        out,
                        "edit {}->{}={}: re-simulated {} of {} border simulation(s) ({} of {} \
                         rows)",
                        spec.src,
                        spec.dst,
                        spec.delay,
                        delta.dirty,
                        delta.borders,
                        delta.rows,
                        delta.rows_total
                    );
                    out.push_str(&ops::session_summary(&session));
                }
            }
            let outcome = if optimize {
                // The robust objective scores over sampled delay
                // scenarios, so the session needs lanes to score.
                if objective == ops::Objective::TauP95 && session.scenario_analysis().is_none() {
                    let set =
                        ScenarioSet::samples(samples, seed, 10.0, session.graph().arc_count())
                            .map_err(|e| e.to_string())?;
                    session.enable_scenarios(&set).map_err(|e| e.to_string())?;
                }
                if !report_json {
                    if let Some(sa) = session.scenario_analysis() {
                        let _ = writeln!(
                            out,
                            "objective: {objective} over {} scenario lane(s)",
                            sa.len()
                        );
                    }
                }
                Some(ops::optimize_session(
                    &mut session,
                    moves,
                    seed,
                    objective,
                    None,
                ))
            } else {
                None
            };
            if let Some(outcome) = &outcome {
                for m in &outcome.trajectory {
                    if report_json {
                        let line = Json::Obj(vec![
                            ("move".to_owned(), Json::from(m.index as u64)),
                            ("action".to_owned(), Json::from(m.action.as_str())),
                            ("tau_before".to_owned(), Json::Num(m.tau_before)),
                            ("tau_after".to_owned(), Json::Num(m.tau_after)),
                            ("critical".to_owned(), Json::from(m.critical.as_str())),
                            ("accepted".to_owned(), Json::Bool(m.accepted)),
                            ("rows".to_owned(), Json::from(m.rows as u64)),
                            ("rows_total".to_owned(), Json::from(m.rows_total as u64)),
                        ]);
                        let _ = writeln!(out, "{}", line.dump());
                    } else {
                        let _ = writeln!(
                            out,
                            "move {}: {}: tau {} -> {} ({}, {} of {} rows)",
                            m.index,
                            m.action,
                            m.tau_before,
                            m.tau_after,
                            if m.accepted { "accepted" } else { "rejected" },
                            m.rows,
                            m.rows_total
                        );
                    }
                }
                if !report_json {
                    let _ = writeln!(
                        out,
                        "optimized: tau {} -> {} after {} accepted of {} proposed move(s)",
                        outcome.initial,
                        outcome.final_tau,
                        outcome.accepted,
                        outcome.trajectory.len()
                    );
                    out.push_str(&ops::session_summary(&session));
                    if let Some(sa) = session.scenario_analysis() {
                        let _ = writeln!(
                            out,
                            "tau distribution: mean {:.4}  p50 {:.4}  p95 {:.4}  max {:.4}",
                            sa.tau_mean(),
                            sa.tau_quantile(0.5),
                            sa.tau_quantile(0.95),
                            sa.tau_quantile(1.0)
                        );
                    }
                }
            }
            // Trust, but verify: the final incremental state must be
            // bit-identical to a from-scratch analysis of the edited
            // graph.
            ops::verify_session(&session)?;
            if report_json {
                let mut fields = vec![
                    ("verified".to_owned(), Json::Bool(true)),
                    ("edits".to_owned(), Json::from(session.edits_applied())),
                ];
                if let Some(outcome) = &outcome {
                    fields.extend([
                        ("objective".to_owned(), Json::from(objective.name())),
                        ("initial".to_owned(), Json::Num(outcome.initial)),
                        ("final".to_owned(), Json::Num(outcome.final_tau)),
                        ("accepted".to_owned(), Json::from(outcome.accepted as u64)),
                        (
                            "proposed".to_owned(),
                            Json::from(outcome.trajectory.len() as u64),
                        ),
                    ]);
                }
                let _ = writeln!(out, "{}", Json::Obj(fields).dump());
            } else {
                let _ = writeln!(
                    out,
                    "verified: bit-identical to a from-scratch analysis after {} edit(s)",
                    session.edits_applied()
                );
            }
            Ok(out)
        }
        Some("serve") => {
            let mut opts = ServeOptions::default();
            let mut listen: Option<String> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--threads" => {
                        i += 1;
                        opts.threads = Some(parse_threads(args, i)?);
                    }
                    "--kernel" => {
                        i += 1;
                        opts.kernel = parse_kernel(args, i)?;
                    }
                    "--max-sessions" => {
                        i += 1;
                        opts.max_sessions = Some(
                            args.get(i)
                                .and_then(|v| v.parse().ok())
                                .filter(|&n: &u64| n >= 1)
                                .ok_or("--max-sessions needs a positive integer")?,
                        );
                    }
                    "--max-pending" => {
                        i += 1;
                        opts.max_pending = Some(
                            args.get(i)
                                .and_then(|v| v.parse().ok())
                                .filter(|&n: &usize| n >= 1)
                                .ok_or("--max-pending needs a positive integer")?,
                        );
                    }
                    "--default-deadline" => {
                        i += 1;
                        opts.default_deadline = Some(parse_ms(args, i, "--default-deadline")?);
                    }
                    "--drain-deadline" => {
                        i += 1;
                        opts.drain_deadline = parse_ms(args, i, "--drain-deadline")?;
                    }
                    "--io-timeout" => {
                        i += 1;
                        opts.io_timeout = Some(parse_ms(args, i, "--io-timeout")?);
                    }
                    "--max-request-bytes" => {
                        i += 1;
                        opts.max_request_bytes = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .filter(|&n: &usize| n >= 1)
                            .ok_or("--max-request-bytes needs a positive integer")?;
                    }
                    "--max-connections" => {
                        i += 1;
                        opts.max_connections = Some(
                            args.get(i)
                                .and_then(|v| v.parse().ok())
                                .filter(|&n: &usize| n >= 1)
                                .ok_or("--max-connections needs a positive integer")?,
                        );
                    }
                    "--listen" => {
                        i += 1;
                        listen = Some(
                            args.get(i)
                                .cloned()
                                .ok_or("--listen needs tcp:HOST:PORT or unix:PATH")?,
                        );
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
                i += 1;
            }
            serve(&opts, listen.as_deref())
        }
        Some("ping") => {
            let target = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("ping needs tcp:HOST:PORT or unix:PATH")?;
            let mut count = 1u32;
            let mut deadline_ms: Option<u64> = None;
            let mut retries = 3u32;
            let mut max_backoff_ms = 5000u64;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--count" => {
                        i += 1;
                        count = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .filter(|&n: &u32| n >= 1)
                            .ok_or("--count needs a positive integer")?;
                    }
                    "--deadline-ms" => {
                        i += 1;
                        deadline_ms = Some(
                            args.get(i)
                                .and_then(|v| v.parse().ok())
                                .filter(|&ms: &u64| ms >= 1)
                                .ok_or("--deadline-ms needs a positive number of milliseconds")?,
                        );
                    }
                    "--retries" => {
                        i += 1;
                        retries = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .ok_or("--retries needs an integer")?;
                    }
                    "--max-backoff-ms" => {
                        i += 1;
                        max_backoff_ms = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .filter(|&ms: &u64| ms >= 1)
                            .ok_or("--max-backoff-ms needs a positive number of milliseconds")?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
                i += 1;
            }
            ping(target, count, deadline_ms, retries, max_backoff_ms)
        }
        Some("bench-serve") => {
            let mut connections = 8usize;
            let mut requests = 32usize;
            let mut threads: Option<usize> = None;
            let mut out_path = "BENCH_serve.json".to_owned();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--connections" => {
                        i += 1;
                        connections = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .filter(|&n: &usize| n >= 1)
                            .ok_or("--connections needs a positive integer")?;
                    }
                    "--requests" => {
                        i += 1;
                        requests = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .filter(|&n: &usize| n >= 1)
                            .ok_or("--requests needs a positive integer")?;
                    }
                    "--threads" => {
                        i += 1;
                        threads = Some(parse_threads(args, i)?);
                    }
                    "--out" => {
                        i += 1;
                        out_path = args.get(i).cloned().ok_or("--out needs a path")?;
                    }
                    "--quick" => {
                        connections = 4;
                        requests = 8;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
                i += 1;
            }
            bench_serve(connections, requests, threads, &out_path)
        }
        Some("convert") => {
            let file = args.get(1).ok_or("convert needs a FILE argument")?;
            let to = match (args.get(2).map(String::as_str), args.get(3)) {
                (Some("--to"), Some(t)) => t.as_str(),
                _ => return Err("convert needs `--to {g|dot}`".to_owned()),
            };
            let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            let sg = ops::load(file, &text, 1.0)?;
            match to {
                "g" => tsg_stg::write_stg(&sg, "converted").map_err(|e| e.to_string()),
                "dot" => Ok(tsg_core::dot::to_dot(&sg, "converted")),
                other => Err(format!("unknown target format {other:?}")),
            }
        }
        Some("demo") => {
            let which = args.get(1).map(String::as_str).unwrap_or("oscillator");
            let opts = AnalyzeOptions {
                diagram: true,
                baselines: true,
                ..AnalyzeOptions::default()
            };
            let sg = match which {
                "oscillator" => tsg_circuit::library::c_element_oscillator_tsg(),
                "muller5" => tsg_extract::extract(
                    &tsg_circuit::library::muller_ring(5, 1.0),
                    tsg_extract::ExtractOptions::default(),
                )
                .map_err(|e| e.to_string())?,
                "stack66" => tsg_gen::stack66(),
                other => return Err(format!("unknown demo {other:?}")),
            };
            Ok(ops::report(&sg, &opts))
        }
        Some("--help") | Some("-h") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

/// The `tsg serve` front-end: picks the transport, installs the SIGINT
/// flag, runs the warm-pool request loop, and reports the session
/// counters on stderr (stdout stays pure protocol).
fn serve(opts: &ServeOptions, listen: Option<&str>) -> Result<String, String> {
    let shutdown = tsg_serve::install_sigint_flag();
    let pool = BatchRunner::sized(opts.threads).threads();
    let stats = match listen {
        None => {
            eprintln!("tsg serve: reading requests from stdin ({pool} worker thread(s))");
            tsg_serve::serve(
                std::io::BufReader::new(std::io::stdin()),
                std::io::stdout(),
                opts,
                Some(shutdown),
            )
        }
        Some(spec) => match spec.split_once(':') {
            Some(("tcp", addr)) => {
                let listener = std::net::TcpListener::bind(addr)
                    .map_err(|e| format!("binding tcp {addr}: {e}"))?;
                let local = listener.local_addr().map_err(|e| e.to_string())?;
                eprintln!("tsg serve: listening on tcp {local} ({pool} worker thread(s))");
                tsg_serve::serve_tcp(listener, opts, Some(shutdown), None)
            }
            #[cfg(unix)]
            Some(("unix", path)) => {
                // A previous non-graceful exit (kill -9, double Ctrl-C)
                // leaves the socket file behind; unbound stale files must
                // not block restarts on the same path.
                if std::fs::metadata(path).is_ok()
                    && std::os::unix::net::UnixStream::connect(path).is_err()
                {
                    let _ = std::fs::remove_file(path);
                }
                let listener = std::os::unix::net::UnixListener::bind(path)
                    .map_err(|e| format!("binding unix {path}: {e}"))?;
                eprintln!("tsg serve: listening on unix {path} ({pool} worker thread(s))");
                let result = tsg_serve::serve_unix(listener, opts, Some(shutdown), None);
                let _ = std::fs::remove_file(path);
                result
            }
            _ => return Err("--listen takes tcp:HOST:PORT or unix:PATH".to_owned()),
        },
    }
    .map_err(|e| format!("serve: {e}"))?;
    eprintln!(
        "tsg serve: shut down after {} ok / {} failed request(s) on {} worker thread(s)",
        stats.served, stats.failed, stats.threads
    );
    if stats.rejected_overloaded
        + stats.deadline_exceeded
        + stats.cancelled
        + stats.timed_out_connections
        + stats.drained_in_flight
        > 0
    {
        eprintln!(
            "tsg serve: {} overloaded, {} deadline-exceeded, {} cancelled, \
             {} timed-out connection(s), {} drained in flight",
            stats.rejected_overloaded,
            stats.deadline_exceeded,
            stats.cancelled,
            stats.timed_out_connections,
            stats.drained_in_flight
        );
    }
    if stats.worker_lost + stats.worker_respawns > 0 {
        eprintln!(
            "tsg serve: {} request(s) lost to dead workers, {} worker respawn(s)",
            stats.worker_lost, stats.worker_respawns
        );
    }
    Ok(String::new())
}

/// One decorrelated-jitter backoff step: uniform between the server's
/// `retry_after_ms` hint (the floor — the server knows its queue) and
/// three times the previous sleep, capped at `cap`. Unlike plain
/// exponential backoff, every client draws a different sleep, so a
/// fleet rejected together does not thunder back together; the floor
/// still wins over the cap when the server asks for a longer wait.
fn backoff_ms(prev: u64, hint: u64, cap: u64, rng: &mut ops::SplitMix64) -> u64 {
    let floor = hint.max(1);
    let ceiling = prev.saturating_mul(3).clamp(floor, cap.max(floor));
    floor + rng.below(ceiling - floor + 1)
}

/// The `tsg ping` load probe: sends `count` stats requests over one
/// connection, honouring `overloaded` retry-after hints with
/// decorrelated-jitter backoff under `max_backoff` (see [`backoff_ms`]),
/// and reports ok/failed counts and latency.
fn ping(
    target: &str,
    count: u32,
    deadline_ms: Option<u64>,
    retries: u32,
    max_backoff: u64,
) -> Result<String, String> {
    use std::io::{BufRead, BufReader, Write};
    let (mut reader, mut writer): (Box<dyn BufRead>, Box<dyn Write>) = match target.split_once(':')
    {
        Some(("tcp", addr)) => {
            let stream = std::net::TcpStream::connect(addr)
                .map_err(|e| format!("connecting tcp {addr}: {e}"))?;
            let clone = stream.try_clone().map_err(|e| e.to_string())?;
            (Box::new(BufReader::new(clone)), Box::new(stream))
        }
        #[cfg(unix)]
        Some(("unix", path)) => {
            let stream = std::os::unix::net::UnixStream::connect(path)
                .map_err(|e| format!("connecting unix {path}: {e}"))?;
            let clone = stream.try_clone().map_err(|e| e.to_string())?;
            (Box::new(BufReader::new(clone)), Box::new(stream))
        }
        _ => return Err("ping takes tcp:HOST:PORT or unix:PATH".to_owned()),
    };
    let mut ok = 0u32;
    let mut failed = 0u32;
    let mut retried = 0u32;
    let mut latencies: Vec<Duration> = Vec::with_capacity(count as usize);
    let mut last = String::new();
    // Seeded per process so concurrent probes decorrelate from each
    // other — the whole point of jittered backoff.
    let mut rng = ops::SplitMix64(u64::from(std::process::id()) ^ 0xD6E8_FEB8_6659_FD93);
    for k in 0..count {
        let request = match deadline_ms {
            Some(ms) => format!("{{\"id\":{k},\"cmd\":\"stats\",\"deadline_ms\":{ms}}}\n"),
            None => format!("{{\"id\":{k},\"cmd\":\"stats\"}}\n"),
        };
        let mut attempt = 0u32;
        let mut prev_sleep = 0u64;
        loop {
            let start = Instant::now();
            writer
                .write_all(request.as_bytes())
                .and_then(|()| writer.flush())
                .map_err(|e| format!("sending probe {k}: {e}"))?;
            let mut line = String::new();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("reading probe {k} response: {e}"))?;
            if n == 0 {
                return Err(format!("server closed the connection after {ok} probe(s)"));
            }
            let elapsed = start.elapsed();
            let doc = Json::parse(line.trim()).ok();
            let code = doc
                .as_ref()
                .and_then(|d| d.get("code"))
                .and_then(Json::as_str)
                .map(str::to_owned);
            if code.as_deref() == Some("overloaded") && attempt < retries {
                let hint = doc
                    .as_ref()
                    .and_then(|d| d.get("retry_after_ms"))
                    .and_then(Json::as_f64)
                    .unwrap_or(50.0);
                attempt += 1;
                retried += 1;
                prev_sleep = backoff_ms(prev_sleep, hint as u64, max_backoff, &mut rng);
                std::thread::sleep(Duration::from_millis(prev_sleep));
                continue;
            }
            let succeeded = doc
                .as_ref()
                .and_then(|d| d.get("ok"))
                .is_some_and(|v| *v == Json::Bool(true));
            if succeeded {
                ok += 1;
            } else {
                failed += 1;
            }
            latencies.push(elapsed);
            last = line.trim().to_owned();
            break;
        }
    }
    let ms = |d: &Duration| d.as_secs_f64() * 1e3;
    let min = latencies.iter().min().map(ms).unwrap_or(0.0);
    let max = latencies.iter().max().map(ms).unwrap_or(0.0);
    let mean = latencies.iter().map(ms).sum::<f64>() / latencies.len().max(1) as f64;
    let mut out = format!(
        "pinged {target}: {ok} ok, {failed} failed of {count} probe(s) ({retried} retried)\n"
    );
    let _ = writeln!(
        out,
        "latency: min {min:.2} ms / mean {mean:.2} ms / max {max:.2} ms"
    );
    let _ = writeln!(out, "last response: {last}");
    Ok(out)
}

/// What one bench connection observed: per-request outcomes and
/// latencies, plus how often it had to redial after the server (or an
/// injected fault) dropped the connection mid-stream.
struct BenchOutcome {
    ok: u64,
    failed: u64,
    reconnects: u64,
    latencies: Vec<Duration>,
}

/// The `tsg bench-serve` load generator: boots an in-process TCP serve
/// loop on a loopback port, drives it with `connections` concurrent
/// client threads issuing `requests` requests each (three workload
/// mixes assigned round-robin: inline `analyze`, incremental
/// `session.open`/`edit`/`close`, and `stats`+`sim`), then writes
/// throughput and latency percentiles into `out_path` as JSON.
fn bench_serve(
    connections: usize,
    requests: usize,
    threads: Option<usize>,
    out_path: &str,
) -> Result<String, String> {
    use std::sync::atomic::AtomicBool;
    use std::sync::atomic::Ordering::SeqCst;

    let listener =
        std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("binding bench: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let opts = ServeOptions {
        threads,
        ..ServeOptions::default()
    };
    let workers = BatchRunner::sized(threads).threads();
    // The tiny oscillator travels inline (a JSON string literal), so
    // the bench needs no fixture files on disk.
    let text = Json::from(tsg_stg::EXAMPLE_OSCILLATOR).dump();
    let shutdown = AtomicBool::new(false);

    let started = Instant::now();
    let (stats, outcomes) = std::thread::scope(|scope| {
        let server = scope.spawn(|| tsg_serve::serve_tcp(listener, &opts, Some(&shutdown), None));
        let clients: Vec<_> = (0..connections)
            .map(|index| {
                let text = text.as_str();
                scope.spawn(move || bench_client(addr, index, requests, text))
            })
            .collect();
        let outcomes: Vec<BenchOutcome> = clients
            .into_iter()
            .map(|h| h.join().expect("bench client thread"))
            .collect();
        shutdown.store(true, SeqCst);
        (server.join().expect("bench server thread"), outcomes)
    });
    let stats = stats.map_err(|e| format!("bench server: {e}"))?;
    let wall = started.elapsed();

    let mut latencies: Vec<Duration> = outcomes
        .iter()
        .flat_map(|o| o.latencies.iter().copied())
        .collect();
    latencies.sort_unstable();
    let total_ok: u64 = outcomes.iter().map(|o| o.ok).sum();
    let total_failed: u64 = outcomes.iter().map(|o| o.failed).sum();
    let reconnects: u64 = outcomes.iter().map(|o| o.reconnects).sum();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let pct = |p: f64| -> f64 {
        match latencies.len() {
            0 => 0.0,
            n => ms(latencies[((n - 1) as f64 * p).round() as usize]),
        }
    };
    let throughput = latencies.len() as f64 / wall.as_secs_f64().max(1e-9);

    let doc = Json::Obj(vec![
        ("bench".into(), Json::from("serve")),
        ("connections".into(), Json::from(connections as u64)),
        (
            "requests_per_connection".into(),
            Json::from(requests as u64),
        ),
        ("threads".into(), Json::from(workers as u64)),
        ("total_ok".into(), Json::from(total_ok)),
        ("total_failed".into(), Json::from(total_failed)),
        ("reconnects".into(), Json::from(reconnects)),
        ("wall_s".into(), Json::Num(wall.as_secs_f64())),
        ("throughput_rps".into(), Json::Num(throughput)),
        (
            "latency_ms".into(),
            Json::Obj(vec![
                ("p50".into(), Json::Num(pct(0.50))),
                ("p95".into(), Json::Num(pct(0.95))),
                ("max".into(), Json::Num(pct(1.0))),
            ]),
        ),
        (
            "server".into(),
            Json::Obj(vec![
                ("served".into(), Json::from(stats.served)),
                ("failed".into(), Json::from(stats.failed)),
                (
                    "rejected_overloaded".into(),
                    Json::from(stats.rejected_overloaded),
                ),
                ("worker_lost".into(), Json::from(stats.worker_lost)),
                ("worker_respawns".into(), Json::from(stats.worker_respawns)),
                (
                    "timed_out_connections".into(),
                    Json::from(stats.timed_out_connections),
                ),
            ]),
        ),
    ]);
    std::fs::write(out_path, doc.dump() + "\n").map_err(|e| format!("writing {out_path}: {e}"))?;

    let mut out = format!(
        "bench-serve: {connections} connection(s) x {requests} request(s) on {workers} worker thread(s)\n"
    );
    let _ = writeln!(
        out,
        "{total_ok} ok / {total_failed} failed, {reconnects} reconnect(s), {throughput:.0} req/s"
    );
    let _ = writeln!(
        out,
        "latency: p50 {:.2} ms / p95 {:.2} ms / max {:.2} ms",
        pct(0.50),
        pct(0.95),
        pct(1.0)
    );
    let _ = writeln!(
        out,
        "server: {} served, {} failed, {} worker respawn(s)",
        stats.served, stats.failed, stats.worker_respawns
    );
    let _ = writeln!(out, "wrote {out_path}");
    Ok(out)
}

/// One bench connection: issues `requests` requests from the mix its
/// index selects, redialling (a bounded number of times) when the
/// connection drops mid-stream so injected faults degrade throughput
/// instead of aborting the run.
fn bench_client(
    addr: std::net::SocketAddr,
    index: usize,
    requests: usize,
    text: &str,
) -> BenchOutcome {
    use std::io::{BufRead, BufReader, Write};
    type Wire = (BufReader<std::net::TcpStream>, std::net::TcpStream);
    let connect = || -> Option<Wire> {
        for _ in 0..50 {
            if let Ok(stream) = std::net::TcpStream::connect(addr) {
                let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
                if let Ok(clone) = stream.try_clone() {
                    return Some((BufReader::new(clone), stream));
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        None
    };
    let mut out = BenchOutcome {
        ok: 0,
        failed: 0,
        reconnects: 0,
        latencies: Vec::with_capacity(requests),
    };
    let Some((mut reader, mut writer)) = connect() else {
        out.failed = requests as u64;
        return out;
    };
    for k in 0..requests {
        let id = (index * requests + k) as u64;
        let request = match index % 3 {
            0 => format!("{{\"id\":{id},\"cmd\":\"analyze\",\"name\":\"bench.g\",\"text\":{text}}}\n"),
            1 => {
                let session = format!("b{index}");
                match k % 3 {
                    0 => format!(
                        "{{\"id\":{id},\"cmd\":\"session.open\",\"session\":\"{session}\",\"name\":\"bench.g\",\"text\":{text}}}\n"
                    ),
                    1 => format!(
                        "{{\"id\":{id},\"cmd\":\"session.edit\",\"session\":\"{session}\",\"edits\":[{{\"src\":\"a+\",\"dst\":\"c+\",\"delay\":{}}}]}}\n",
                        4 + k % 5
                    ),
                    _ => format!(
                        "{{\"id\":{id},\"cmd\":\"session.close\",\"session\":\"{session}\"}}\n"
                    ),
                }
            }
            _ if k % 2 == 0 => format!("{{\"id\":{id},\"cmd\":\"stats\"}}\n"),
            _ => format!(
                "{{\"id\":{id},\"cmd\":\"sim\",\"name\":\"bench.g\",\"text\":{text},\"periods\":1}}\n"
            ),
        };
        let start = Instant::now();
        let mut answered = false;
        for _attempt in 0..3 {
            let sent = writer
                .write_all(request.as_bytes())
                .and_then(|()| writer.flush());
            if sent.is_ok() {
                let mut line = String::new();
                if matches!(reader.read_line(&mut line), Ok(n) if n > 0) {
                    let succeeded = Json::parse(line.trim())
                        .ok()
                        .and_then(|d| d.get("ok").cloned())
                        .is_some_and(|v| v == Json::Bool(true));
                    if succeeded {
                        out.ok += 1;
                    } else {
                        out.failed += 1;
                    }
                    out.latencies.push(start.elapsed());
                    answered = true;
                    break;
                }
            }
            // The connection dropped (server drain, injected rst, ...):
            // dial again and retry this request. A session-mix edit can
            // legitimately fail after a redial — the new connection is a
            // new session namespace — and counts as failed, not fatal.
            out.reconnects += 1;
            match connect() {
                Some((r, w)) => {
                    reader = r;
                    writer = w;
                }
                None => break,
            }
        }
        if !answered {
            out.failed += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_stays_between_hint_floor_and_cap() {
        let mut rng = ops::SplitMix64(42);
        let mut prev = 0u64;
        for _ in 0..200 {
            prev = backoff_ms(prev, 50, 5000, &mut rng);
            assert!((50..=5000).contains(&prev), "{prev}");
        }
        // The server's hint is a floor even when it exceeds the cap:
        // "wait 9 s" must not be shortened by a 5 s client-side cap.
        let sleep = backoff_ms(prev, 9000, 5000, &mut rng);
        assert!(sleep >= 9000, "{sleep}");
        // A zero hint still sleeps at least a millisecond.
        assert!(backoff_ms(0, 0, 5000, &mut rng) >= 1);
    }

    #[test]
    fn backoff_is_jittered_not_lockstep() {
        // Two clients with different seeds must draw different schedules
        // once the window opens up — that is the decorrelation property.
        let (mut a, mut b) = (ops::SplitMix64(1), ops::SplitMix64(2));
        let (mut pa, mut pb) = (0u64, 0u64);
        let mut diverged = false;
        for _ in 0..20 {
            pa = backoff_ms(pa, 50, 5000, &mut a);
            pb = backoff_ms(pb, 50, 5000, &mut b);
            diverged |= pa != pb;
        }
        assert!(diverged);
    }

    #[test]
    fn help_is_printed() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
        let out = run(&["--help".into()]).unwrap();
        assert!(out.contains("analyze"));
    }

    #[test]
    fn demo_oscillator_reports_tau_10() {
        let out = run(&["demo".into(), "oscillator".into()]).unwrap();
        assert!(out.contains("cycle time: 10"), "{out}");
        assert!(out.contains("critical cycle: a+ -3-> c+ -2-> a- -3-> c- -2*-> a+"));
        assert!(out.contains("howard"));
    }

    #[test]
    fn demo_muller5_reports_20_3() {
        let out = run(&["demo".into(), "muller5".into()]).unwrap();
        assert!(out.contains("cycle time: 20/3"), "{out}");
    }

    #[test]
    fn demo_stack66_runs() {
        let out = run(&["demo".into(), "stack66".into()]).unwrap();
        assert!(out.contains("66 events, 112 arcs"), "{out}");
    }

    #[test]
    fn unknown_flags_error() {
        assert!(run(&["analyze".into(), "x.g".into(), "--wat".into()]).is_err());
        assert!(run(&["frob".into()]).is_err());
        assert!(run(&["demo".into(), "nope".into()]).is_err());
    }

    #[test]
    fn serve_max_sessions_flag_validation() {
        for bad in ["0", "-1", "many", ""] {
            let err = run(&["serve".into(), "--max-sessions".into(), bad.into()]).unwrap_err();
            assert!(err.contains("--max-sessions"), "{bad}: {err}");
        }
        let err = run(&["serve".into(), "--max-sessions".into()]).unwrap_err();
        assert!(err.contains("--max-sessions"), "{err}");
    }

    #[test]
    fn analyze_stg_file() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("osc.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let out = run(&[
            "analyze".into(),
            path.to_string_lossy().into_owned(),
            "--baselines".into(),
        ])
        .unwrap();
        assert!(out.contains("cycle time: 10"), "{out}");
        assert!(out.contains("enumeration   : 10"));
    }

    #[test]
    fn convert_stg_to_dot() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ring.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_RING5).unwrap();
        let out = run(&[
            "convert".into(),
            path.to_string_lossy().into_owned(),
            "--to".into(),
            "dot".into(),
        ])
        .unwrap();
        assert!(out.starts_with("digraph"));
        let out = run(&[
            "convert".into(),
            path.to_string_lossy().into_owned(),
            "--to".into(),
            "g".into(),
        ])
        .unwrap();
        assert!(out.contains(".marking"));
        assert!(run(&[
            "convert".into(),
            path.to_string_lossy().into_owned(),
            "--to".into(),
            "pdf".into(),
        ])
        .is_err());
    }

    #[test]
    fn analyze_kernel_flag_matches_auto_and_validates() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kernel-osc.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let p = path.to_string_lossy().into_owned();
        let auto = run(&["analyze".into(), p.clone()]).unwrap();
        let portable = run(&[
            "analyze".into(),
            p.clone(),
            "--kernel".into(),
            "portable".into(),
        ])
        .unwrap();
        assert_eq!(auto, portable, "backends are bit-identical");
        let err = run(&[
            "analyze".into(),
            p.clone(),
            "--kernel".into(),
            "avx512".into(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown kernel backend"), "{err}");
        let err = run(&["analyze".into(), p.clone(), "--kernel".into()]).unwrap_err();
        assert!(err.contains("--kernel"), "{err}");
        // A backend the CPU lacks is refused up front, not downgraded.
        for backend in [KernelBackend::Sse2, KernelBackend::Avx2] {
            if backend.resolve().is_err() {
                let err = run(&[
                    "analyze".into(),
                    p.clone(),
                    "--kernel".into(),
                    backend.name().into(),
                ])
                .unwrap_err();
                assert!(err.contains("not available"), "{err}");
            }
        }
        // explore honours the same flag.
        let out = run(&[
            "explore".into(),
            p,
            "--kernel".into(),
            "portable".into(),
            "--edit".into(),
            "a+->c+=3".into(),
        ])
        .unwrap();
        assert!(out.contains("verified: bit-identical"), "{out}");
    }

    #[test]
    fn analyze_with_slack() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("osc2.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let out = run(&[
            "analyze".into(),
            path.to_string_lossy().into_owned(),
            "--slack".into(),
        ])
        .unwrap();
        assert!(out.contains("CRITICAL"), "{out}");
        assert!(out.contains("timing-critical"), "{out}");
    }

    #[test]
    fn sim_stg_file_prints_occurrences() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim-osc.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let out = run(&[
            "sim".into(),
            path.to_string_lossy().into_owned(),
            "--periods".into(),
            "2".into(),
        ])
        .unwrap();
        assert!(out.contains("over 2 period(s)"), "{out}");
        assert!(out.contains("t(a+_0)"), "{out}");
    }

    #[test]
    fn sim_stg_file_writes_vcd() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim-vcd.g");
        let vcd = dir.join("sim-vcd.vcd");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let out = run(&[
            "sim".into(),
            path.to_string_lossy().into_owned(),
            "--vcd".into(),
            vcd.to_string_lossy().into_owned(),
        ])
        .unwrap();
        assert!(out.contains("VCD waveform written"), "{out}");
        let dump = std::fs::read_to_string(&vcd).unwrap();
        assert!(dump.contains("$timescale 1ps $end"), "{dump}");
        assert!(dump.contains("$var wire 1"), "{dump}");
    }

    #[test]
    fn sim_ckt_file_reports_steady_period_and_vcd() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim-osc.ckt");
        let vcd = dir.join("sim-osc.vcd");
        let nl = tsg_circuit::library::c_element_oscillator();
        std::fs::write(&path, tsg_circuit::parse::write_ckt(&nl)).unwrap();
        let out = run(&[
            "sim".into(),
            path.to_string_lossy().into_owned(),
            "--horizon".into(),
            "400".into(),
            "--vcd".into(),
            vcd.to_string_lossy().into_owned(),
        ])
        .unwrap();
        assert!(out.contains("steady period 10"), "{out}");
        assert!(out.contains("VCD waveform written"), "{out}");
        assert!(std::fs::read_to_string(&vcd).unwrap().contains("$dumpvars"));
    }

    #[test]
    fn sim_many_files_fan_out_in_order() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let osc = dir.join("fan-osc.g");
        let ring = dir.join("fan-ring.g");
        std::fs::write(&osc, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        std::fs::write(&ring, tsg_stg::EXAMPLE_RING5).unwrap();
        let out = run(&[
            "sim".into(),
            osc.to_string_lossy().into_owned(),
            ring.to_string_lossy().into_owned(),
            "--threads".into(),
            "2".into(),
        ])
        .unwrap();
        let osc_pos = out.find("fan-osc.g").unwrap();
        let ring_pos = out.find("fan-ring.g").unwrap();
        assert!(osc_pos < ring_pos, "input order preserved: {out}");
        assert_eq!(out.matches("==").count(), 4, "one banner per file: {out}");
        // --vcd with several files would clobber one waveform.
        assert!(run(&[
            "sim".into(),
            osc.to_string_lossy().into_owned(),
            ring.to_string_lossy().into_owned(),
            "--vcd".into(),
            dir.join("x.vcd").to_string_lossy().into_owned(),
        ])
        .is_err());
        // One bad file fails the command but names the culprit instead
        // of discarding the batch.
        let bad = dir.join("fan-bad.g");
        std::fs::write(&bad, "this is not an stg file").unwrap();
        let err = run(&[
            "sim".into(),
            osc.to_string_lossy().into_owned(),
            bad.to_string_lossy().into_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("1 of 2 file(s) failed"), "{err}");
        assert!(err.contains("fan-bad.g"), "{err}");
    }

    #[test]
    fn sim_queue_backend_selection_is_observable_and_identical() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("queue-osc.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let p = path.to_string_lossy().into_owned();
        let heap = run(&["sim".into(), p.clone(), "--queue".into(), "heap".into()]).unwrap();
        let cal = run(&["sim".into(), p.clone(), "--queue".into(), "calendar".into()]).unwrap();
        assert_eq!(heap, cal, "backends must produce identical transcripts");
        assert!(run(&["sim".into(), p, "--queue".into(), "splay".into()]).is_err());
    }

    #[test]
    fn analyze_threads_flag_matches_sequential() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("threads-osc.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let p = path.to_string_lossy().into_owned();
        let seq = run(&["analyze".into(), p.clone(), "--threads".into(), "1".into()]).unwrap();
        let par = run(&["analyze".into(), p.clone(), "--threads".into(), "4".into()]).unwrap();
        assert_eq!(seq, par);
        assert!(seq.contains("cycle time: 10"), "{seq}");
        assert!(run(&["analyze".into(), p, "--threads".into(), "0".into()]).is_err());
    }

    #[test]
    fn sim_flag_validation() {
        assert!(run(&["sim".into()]).is_err());
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flags.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let p = path.to_string_lossy().into_owned();
        assert!(run(&["sim".into(), p.clone(), "--periods".into(), "0".into()]).is_err());
        assert!(run(&["sim".into(), p.clone(), "--horizon".into(), "nan".into()]).is_err());
        assert!(run(&["sim".into(), p.clone(), "--vcd".into()]).is_err());
        assert!(run(&["sim".into(), p.clone(), "--wat".into()]).is_err());
        // Flags that do not apply to the input kind are rejected, not
        // silently ignored.
        let err = run(&["sim".into(), p, "--horizon".into(), "50".into()]).unwrap_err();
        assert!(err.contains("--periods"), "{err}");
        let ckt = dir.join("flags.ckt");
        let nl = tsg_circuit::library::c_element_oscillator();
        std::fs::write(&ckt, tsg_circuit::parse::write_ckt(&nl)).unwrap();
        let c = ckt.to_string_lossy().into_owned();
        let err = run(&["sim".into(), c.clone(), "--periods".into(), "3".into()]).unwrap_err();
        assert!(err.contains("--horizon"), "{err}");
        let err = run(&["sim".into(), c, "--default-delay".into(), "5".into()]).unwrap_err();
        assert!(err.contains("--default-delay"), "{err}");
    }

    #[test]
    fn explore_applies_edits_incrementally() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("explore.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let p = path.to_string_lossy().into_owned();
        let out = run(&[
            "explore".into(),
            p.clone(),
            "--edit".into(),
            "a+->c+=8".into(),
            "--edit".into(),
            "a+->c+=3".into(),
        ])
        .unwrap();
        assert!(out.contains("opened session"), "{out}");
        assert!(out.contains("cycle time: 15"), "{out}");
        assert!(out.contains("re-simulated"), "{out}");
        assert!(out.contains("verified: bit-identical"), "{out}");
        assert!(
            out.matches("cycle time: 10").count() == 2,
            "first and final state are the original graph: {out}"
        );
        // Flag validation.
        assert!(run(&["explore".into()]).is_err());
        assert!(run(&["explore".into(), p.clone(), "--edit".into()]).is_err());
        let err = run(&[
            "explore".into(),
            p.clone(),
            "--edit".into(),
            "nonsense".into(),
        ])
        .unwrap_err();
        assert!(err.contains("SRC->DST=DELAY"), "{err}");
        let err = run(&["explore".into(), p, "--edit".into(), "zz->a+=1".into()]).unwrap_err();
        assert!(err.contains("no event labelled"), "{err}");
    }

    #[test]
    fn explore_optimize_runs_a_monotone_verified_loop() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("optimize.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let p = path.to_string_lossy().into_owned();
        let argv: Vec<String> = [
            "explore",
            &p,
            "--optimize",
            "--moves",
            "16",
            "--seed",
            "42",
            "--objective",
            "tau",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let out = run(&argv).unwrap();
        assert_eq!(out.matches("move ").count(), 16, "{out}");
        assert!(out.contains("optimized: tau 10 -> "), "{out}");
        assert!(out.contains("verified: bit-identical"), "{out}");
        // The committed τ never climbs: accepted moves strictly improve
        // it, rejected moves leave it where it was.
        let mut committed = 10.0_f64;
        for line in out.lines().filter(|l| l.starts_with("move ")) {
            let rest = line.split("tau ").nth(1).expect("move line shape");
            let (before, rest) = rest.split_once(" -> ").expect("move line shape");
            let before: f64 = before.parse().unwrap();
            let after: f64 = rest.split(' ').next().unwrap().parse().unwrap();
            assert_eq!(before, committed, "{line}");
            if line.contains("(accepted") {
                assert!(after < before, "{line}");
            } else {
                assert_eq!(after, before, "{line}");
            }
            committed = after;
        }
        assert!(committed <= 10.0, "final tau is never worse: {out}");
        // Same seed, same run: the whole trajectory is reproducible.
        assert_eq!(run(&argv).unwrap(), out);
        // Optimizer flags demand --optimize; bad operands are refused.
        for bad in [
            vec!["explore", &p, "--moves", "8"],
            vec!["explore", &p, "--seed", "1"],
            vec!["explore", &p, "--objective", "tau"],
            vec!["explore", &p, "--optimize", "--moves", "0"],
            vec!["explore", &p, "--optimize", "--objective", "area"],
            vec!["explore", &p, "--report", "xml"],
        ] {
            let argv: Vec<String> = bad.iter().map(|s| (*s).to_owned()).collect();
            assert!(run(&argv).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn analyze_corners_and_samples_report_scenarios() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corners.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let p = path.to_string_lossy().into_owned();
        let out = run(&[
            "analyze".into(),
            p.clone(),
            "--corners".into(),
            "min,typ,max".into(),
            "--derate".into(),
            "10".into(),
        ])
        .unwrap();
        assert!(out.contains("scenarios: 3 corner(s), derate 10%"), "{out}");
        assert!(out.contains("tau distribution:"), "{out}");
        assert!(out.contains("arc criticality:"), "{out}");
        // typ is the nominal graph: its corner tau equals the headline tau.
        assert!(out.contains("min"), "{out}");
        // Sampled scenarios instead; sample j is seed-deterministic.
        let sampled = run(&[
            "analyze".into(),
            p.clone(),
            "--samples".into(),
            "4".into(),
            "--seed".into(),
            "7".into(),
        ])
        .unwrap();
        assert!(
            sampled.contains("scenarios: 4 sample(s), jitter 10%, seed 7"),
            "{sampled}"
        );
        assert_eq!(
            sampled,
            run(&[
                "analyze".into(),
                p.clone(),
                "--samples".into(),
                "4".into(),
                "--seed".into(),
                "7".into(),
            ])
            .unwrap(),
            "same seed, same report"
        );
        // Flag validation: bad corner names, derate and samples bounds.
        for bad in [
            vec!["analyze", &p, "--corners", "min,worst"],
            vec!["analyze", &p, "--corners", ""],
            vec!["analyze", &p, "--derate", "100"],
            vec!["analyze", &p, "--derate", "-1"],
            vec!["analyze", &p, "--samples", "0"],
            vec!["analyze", &p, "--samples", "4097"],
            vec!["analyze", &p, "--seed", "x"],
        ] {
            let argv: Vec<String> = bad.iter().map(|s| (*s).to_owned()).collect();
            assert!(run(&argv).is_err(), "{bad:?}");
        }
        let err = run(&["analyze".into(), p, "--corners".into(), "min,worst".into()]).unwrap_err();
        assert!(err.contains("unknown corner"), "{err}");
    }

    #[test]
    fn explore_optimize_tau_p95_is_monotone_over_scenarios() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("optimize-p95.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let p = path.to_string_lossy().into_owned();
        let argv: Vec<String> = [
            "explore",
            &p,
            "--optimize",
            "--moves",
            "12",
            "--seed",
            "42",
            "--objective",
            "tau-p95",
            "--samples",
            "8",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let out = run(&argv).unwrap();
        assert!(
            out.contains("objective: tau-p95 over 8 scenario lane(s)"),
            "{out}"
        );
        assert!(out.contains("tau distribution:"), "{out}");
        assert!(out.contains("verified: bit-identical"), "{out}");
        // The committed objective value (p95 over the scenario lanes)
        // never climbs, exactly like the nominal-tau loop.
        let mut committed: Option<f64> = None;
        for line in out.lines().filter(|l| l.starts_with("move ")) {
            let rest = line.split("tau ").nth(1).expect("move line shape");
            let (before, rest) = rest.split_once(" -> ").expect("move line shape");
            let before: f64 = before.parse().unwrap();
            let after: f64 = rest.split(' ').next().unwrap().parse().unwrap();
            if let Some(c) = committed {
                assert_eq!(before, c, "{line}");
            }
            if line.contains("(accepted") {
                assert!(after < before, "{line}");
            } else {
                assert_eq!(after, before, "{line}");
            }
            committed = Some(after);
        }
        // Same seed, same run: trajectory and distribution reproduce.
        assert_eq!(run(&argv).unwrap(), out);
        // --samples demands --optimize, like the other optimizer flags.
        let err = run(&["explore".into(), p, "--samples".into(), "8".into()]).unwrap_err();
        assert!(err.contains("--samples requires --optimize"), "{err}");
    }

    #[test]
    fn explore_report_json_emits_trajectory_lines() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.g");
        std::fs::write(&path, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
        let p = path.to_string_lossy().into_owned();
        let out = run(&[
            "explore".into(),
            p.clone(),
            "--edit".into(),
            "a+->c+=8".into(),
            "--report".into(),
            "json".into(),
        ])
        .unwrap();
        let lines: Vec<Json> = out
            .lines()
            .map(|l| Json::parse(l).expect("every line is one JSON object"))
            .collect();
        assert_eq!(lines.len(), 3, "opened + one edit + verified: {out}");
        assert_eq!(lines[0].get("tau"), Some(&Json::Num(10.0)));
        assert_eq!(lines[1].get("edit"), Some(&Json::from("a+->c+=8")));
        assert_eq!(lines[1].get("tau"), Some(&Json::Num(15.0)));
        assert!(lines[1].get("critical").is_some(), "{out}");
        assert!(lines[1].get("rows").is_some(), "{out}");
        assert_eq!(lines[2].get("verified"), Some(&Json::Bool(true)));
        assert_eq!(lines[2].get("edits"), Some(&Json::Num(1.0)));
        // The optimizer trajectory renders as JSON too, one move a line.
        let out = run(&[
            "explore".into(),
            p,
            "--optimize".into(),
            "--moves".into(),
            "8".into(),
            "--seed".into(),
            "7".into(),
            "--report".into(),
            "json".into(),
        ])
        .unwrap();
        let lines: Vec<Json> = out.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 10, "opened + 8 moves + summary: {out}");
        for (i, m) in lines[1..9].iter().enumerate() {
            assert_eq!(m.get("move"), Some(&Json::Num(i as f64)), "{out}");
            assert!(m.get("action").is_some(), "{out}");
            assert!(m.get("tau_after").is_some(), "{out}");
            assert!(matches!(m.get("accepted"), Some(Json::Bool(_))), "{out}");
        }
        let summary = &lines[9];
        assert_eq!(summary.get("verified"), Some(&Json::Bool(true)));
        assert_eq!(summary.get("initial"), Some(&Json::Num(10.0)));
        assert_eq!(summary.get("proposed"), Some(&Json::Num(8.0)));
        let final_tau = summary.get("final").and_then(Json::as_f64).unwrap();
        assert!(final_tau <= 10.0, "{out}");
    }

    #[test]
    fn analyze_ckt_file() {
        let dir = std::env::temp_dir().join("tsg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("osc.ckt");
        let nl = tsg_circuit::library::c_element_oscillator();
        std::fs::write(&path, tsg_circuit::parse::write_ckt(&nl)).unwrap();
        let out = run(&[
            "analyze".into(),
            path.to_string_lossy().into_owned(),
            "--diagram".into(),
        ])
        .unwrap();
        assert!(out.contains("cycle time: 10"), "{out}");
        assert!(out.contains("timing diagram"));
    }
}
