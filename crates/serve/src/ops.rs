//! The analysis operations behind both the one-shot CLI and the serve
//! worker loop.
//!
//! `tsg analyze` / `tsg sim` and the `tsg serve` request router execute
//! the *same* functions from this module, so a served response is
//! byte-identical to the one-shot command on the same input. The only
//! difference is allocation strategy:
//!
//! * the one-shot entry points ([`report`], [`simulate_file`]) build
//!   fresh state per invocation (and `report` fans the border
//!   simulations across a thread pool);
//! * a serve worker drives a persistent [`Workspace`] — one warm
//!   [`AnalysisArena`] (the lane-major wide matrix of all `b` lockstep
//!   border simulations plus the scalar finish arena) and pre-sized
//!   event queues — through
//!   [`Workspace::analyze`] / [`Workspace::simulate`], which are
//!   bit-identical to the cold paths (`CycleTimeAnalysis::run_in` ≡
//!   `run_parallel`, `EventSimulation::run_in` ≡ `run_on`; both
//!   equivalences are asserted in the workspace tests).

use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt::{self, Write as _};

use tsg_core::analysis::diagram::{self, DiagramOptions};
use tsg_core::analysis::event_sim::{EventSimScratch, EventSimulation};
use tsg_core::analysis::session::{
    AnalysisSession, CycleTimeDelta, DelayEdit, EditError, GraphEdit,
};
use tsg_core::analysis::sim::TimingSimulation;
use tsg_core::analysis::wide::{AnalysisArena, KernelBackend};
use tsg_core::analysis::{AnalysisError, Corner, CycleTimeAnalysis, ScenarioAnalysis, ScenarioSet};
use tsg_core::{ArcId, EventId, SignalGraph};
use tsg_sim::{BatchRunner, CancelKind, CancelToken, QueueKind, TraceRecorder};

/// Error of a workspace operation: either a plain user-facing message
/// (rendered exactly as before this type existed) or a structured
/// cooperative cancellation the serve tier maps to a coded response.
#[derive(Clone, Debug, PartialEq)]
pub enum OpError {
    /// Plain failure text.
    Msg(String),
    /// The operation observed its cancel token mid-compute.
    Cancelled {
        /// Why the token fired.
        kind: CancelKind,
        /// Work units (matrix rows / event arrivals) done at the abort.
        done: u64,
        /// Units a complete run performs (`done + pending` for event
        /// sims, where the full count is not known up front).
        total: u64,
    },
}

impl From<String> for OpError {
    fn from(msg: String) -> Self {
        OpError::Msg(msg)
    }
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::Msg(m) => f.write_str(m),
            OpError::Cancelled { kind, done, total } => {
                write!(f, "{kind} after {done} of {total} work unit(s)")
            }
        }
    }
}

impl std::error::Error for OpError {}

/// Where a request's specification text comes from.
#[derive(Clone, Debug)]
pub enum Source {
    /// A file on the server's filesystem.
    Path(String),
    /// Text shipped inline with the request; `name` supplies the
    /// extension that selects the parser (`.g` vs `.ckt`).
    Inline {
        /// Name used for format detection and error messages.
        name: String,
        /// The specification text itself.
        text: String,
    },
}

impl Source {
    /// The name used for format detection and error messages.
    pub fn name(&self) -> &str {
        match self {
            Source::Path(p) => p,
            Source::Inline { name, .. } => name,
        }
    }

    /// The specification text.
    ///
    /// # Errors
    ///
    /// Returns a read error message for an unreadable path.
    pub fn read(&self) -> Result<Cow<'_, str>, String> {
        match self {
            Source::Path(file) => std::fs::read_to_string(file)
                .map(Cow::Owned)
                .map_err(|e| format!("reading {file}: {e}")),
            Source::Inline { text, .. } => Ok(Cow::Borrowed(text)),
        }
    }
}

/// One label-addressed delay edit of a `session.edit` request or a
/// `tsg explore --edit` flag: set the delay of the arc `src -> dst`.
#[derive(Clone, Debug, PartialEq)]
pub struct EditSpec {
    /// Label of the arc's source event (e.g. `"a+"`).
    pub src: String,
    /// Label of the arc's destination event.
    pub dst: String,
    /// The new delay.
    pub delay: f64,
}

impl EditSpec {
    /// Parses the CLI form `SRC->DST=DELAY` (e.g. `a+->c+=3.5`).
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for malformed specs.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let err = || format!("--edit takes SRC->DST=DELAY, got {spec:?}");
        let (arc, delay) = spec.rsplit_once('=').ok_or_else(err)?;
        let (src, dst) = arc.split_once("->").ok_or_else(err)?;
        if src.is_empty() || dst.is_empty() {
            return Err(err());
        }
        Ok(EditSpec {
            src: src.to_owned(),
            dst: dst.to_owned(),
            delay: delay.parse().map_err(|_| err())?,
        })
    }
}

/// One label-addressed operation of a `session.edit` batch: a delay
/// assignment (the untyped legacy `{src, dst, delay}` form) or a
/// structural mutation (`{"op": ...}` objects). Labels of events a
/// preceding [`AddEvent`](EditOp::AddEvent) in the *same* batch
/// introduces resolve too, so one batch can splice a pipeline stage.
#[derive(Clone, Debug, PartialEq)]
pub enum EditOp {
    /// Set the delay of the arc `src -> dst`.
    Delay(EditSpec),
    /// Add an arc between the named events.
    AddArc {
        /// Source event label.
        src: String,
        /// Destination event label.
        dst: String,
        /// The new arc's delay.
        delay: f64,
        /// Whether the arc carries an initial token.
        marked: bool,
    },
    /// Remove the (first) arc between the named events.
    RemoveArc {
        /// Source event label.
        src: String,
        /// Destination event label.
        dst: String,
    },
    /// Add a repetitive event with the given label.
    AddEvent {
        /// The new event's label.
        label: String,
    },
    /// Remove the named event (it must have no live arcs left).
    RemoveEvent {
        /// The event's label.
        label: String,
    },
}

/// Resolves a batch of label-addressed [`EditOp`]s against `session`'s
/// graph — labels introduced by earlier `AddEvent` ops in the batch
/// resolve to their yet-to-exist ids, which [`SignalGraph::add_event`]
/// assigns densely — and applies them through
/// [`AnalysisSession::edit_structure`] as one transaction.
///
/// # Errors
///
/// Returns unresolvable labels and rejected batches as
/// [`OpError::Msg`] (the session is unchanged), or
/// [`OpError::Cancelled`] when `cancel` fires mid-rerun (batch applied,
/// analysis stale until the next uncancelled edit heals it).
pub fn apply_struct_edits_with_cancel(
    session: &mut AnalysisSession,
    ops: &[EditOp],
    cancel: Option<&CancelToken>,
) -> Result<CycleTimeDelta, OpError> {
    if ops.iter().all(|op| matches!(op, EditOp::Delay(_))) {
        let specs: Vec<EditSpec> = ops
            .iter()
            .map(|op| match op {
                EditOp::Delay(s) => s.clone(),
                _ => unreachable!("all-delay batch"),
            })
            .collect();
        return apply_edits_with_cancel(session, &specs, cancel);
    }
    // Events an AddEvent earlier in the batch introduces get the next
    // dense ids, so later ops can address them by label already.
    let mut pending: HashMap<&str, EventId> = HashMap::new();
    let mut next_id = session.graph().event_count() as u32;
    let mut edits: Vec<GraphEdit> = Vec::with_capacity(ops.len());
    for op in ops {
        let lookup = |label: &str| {
            session
                .graph()
                .event_by_label(label)
                .or_else(|| pending.get(label).copied())
                .ok_or_else(|| EditError::NoSuchEvent(label.to_owned()).to_string())
        };
        match op {
            EditOp::Delay(spec) => {
                let arc = session
                    .resolve_arc(&spec.src, &spec.dst)
                    .map_err(|e| e.to_string())?;
                edits.push(GraphEdit::Delay {
                    arc,
                    delay: spec.delay,
                });
            }
            EditOp::AddArc {
                src,
                dst,
                delay,
                marked,
            } => {
                let (s, d) = (lookup(src)?, lookup(dst)?);
                edits.push(GraphEdit::AddArc {
                    src: s,
                    dst: d,
                    delay: *delay,
                    marked: *marked,
                });
            }
            EditOp::RemoveArc { src, dst } => {
                let arc = session.resolve_arc(src, dst).map_err(|e| e.to_string())?;
                edits.push(GraphEdit::RemoveArc { arc });
            }
            EditOp::AddEvent { label } => {
                pending.insert(label, EventId(next_id));
                next_id += 1;
                edits.push(GraphEdit::AddEvent {
                    label: label.clone(),
                });
            }
            EditOp::RemoveEvent { label } => {
                let event = lookup(label)?;
                edits.push(GraphEdit::RemoveEvent { event });
            }
        }
    }
    session
        .edit_structure_with_cancel(&edits, cancel)
        .map_err(|e| match e {
            EditError::Cancelled {
                kind,
                rows_done,
                rows_total,
            } => OpError::Cancelled {
                kind,
                done: rows_done as u64,
                total: rows_total as u64,
            },
            other => OpError::Msg(other.to_string()),
        })
}

/// [`apply_struct_edits_with_cancel`] without a token, errors rendered
/// as plain messages — what `tsg explore` calls.
///
/// # Errors
///
/// Returns unresolvable labels and rejected batches as user-facing
/// messages; the session is unchanged then.
pub fn apply_struct_edits(
    session: &mut AnalysisSession,
    ops: &[EditOp],
) -> Result<CycleTimeDelta, String> {
    apply_struct_edits_with_cancel(session, ops, None).map_err(|e| e.to_string())
}

/// Checks that `session`'s incremental analysis is bit-identical to a
/// from-scratch run on its current graph — the self-verification both
/// `tsg explore` and `session.explore` end with.
///
/// # Errors
///
/// Returns a user-facing divergence message (an internal-error class
/// that must never happen).
pub fn verify_session(session: &AnalysisSession) -> Result<(), String> {
    let scratch = CycleTimeAnalysis::run(session.graph()).map_err(|e| e.to_string())?;
    let incremental = session.analysis();
    if incremental.cycle_time().as_f64().to_bits() != scratch.cycle_time().as_f64().to_bits()
        || incremental.critical_cycle() != scratch.critical_cycle()
    {
        return Err(format!(
            "internal error: incremental analysis diverged from scratch ({} vs {})",
            incremental.cycle_time(),
            scratch.cycle_time()
        ));
    }
    // When scenario lanes are enabled, every lane must match a scratch
    // sweep too — the incremental matrices and δ tables get the same
    // bit-identity guarantee as the nominal analysis.
    if let (Some(set), Some(sa)) = (session.scenario_set(), session.scenario_analysis()) {
        let scratch =
            CycleTimeAnalysis::run_scenarios(session.graph(), set).map_err(|e| e.to_string())?;
        for j in 0..sa.len() {
            let (inc, ref_) = (sa.analysis(j), scratch.analysis(j));
            if inc.cycle_time().as_f64().to_bits() != ref_.cycle_time().as_f64().to_bits()
                || inc.critical_cycle() != ref_.critical_cycle()
            {
                return Err(format!(
                    "internal error: scenario {} diverged from scratch ({} vs {})",
                    sa.label(j),
                    inc.cycle_time(),
                    ref_.cycle_time()
                ));
            }
        }
    }
    Ok(())
}

/// What [`optimize_session`]'s accept/reject decisions minimise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Objective {
    /// The nominal cycle time τ.
    #[default]
    Tau,
    /// The 95th-percentile τ over the session's sampled delay
    /// scenarios — robust optimization: a move only counts if it helps
    /// under delay variation, not just at nominal.
    TauP95,
}

impl Objective {
    /// The flag/wire name (`tau`, `tau-p95`).
    pub fn name(self) -> &'static str {
        match self {
            Objective::Tau => "tau",
            Objective::TauP95 => "tau-p95",
        }
    }

    /// Parses the flag form.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message naming the supported objectives.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "tau" => Ok(Objective::Tau),
            "tau-p95" => Ok(Objective::TauP95),
            other => Err(format!(
                "unknown objective {other:?} (expected \"tau\", the cycle time, or \
                 \"tau-p95\", the 95th-percentile cycle time over sampled scenarios)"
            )),
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The scalar a session state scores as under `objective`. `TauP95`
/// falls back to the nominal τ when no scenarios are enabled, so the
/// objective is total either way.
fn objective_value(session: &AnalysisSession, objective: Objective) -> f64 {
    match objective {
        Objective::Tau => session.analysis().cycle_time().as_f64(),
        Objective::TauP95 => session.scenario_analysis().map_or_else(
            || session.analysis().cycle_time().as_f64(),
            |sa| sa.tau_quantile(0.95),
        ),
    }
}

/// Flags of an `analyze` invocation (CLI flags or request fields).
#[derive(Clone, Debug)]
pub struct AnalyzeOptions {
    /// Render a 3-period timing diagram.
    pub diagram: bool,
    /// Append the graph in DOT form.
    pub dot: bool,
    /// Run the related-work baseline algorithms.
    pub baselines: bool,
    /// Run the per-arc slack analysis.
    pub slack: bool,
    /// Delay assigned to arcs without a `.delay` annotation.
    pub default_delay: f64,
    /// Thread-pool size for the one-shot [`report`] path (`None` = all
    /// cores); ignored by the warm per-worker path.
    pub threads: Option<usize>,
    /// Wide-kernel backend. `Auto` means "whatever the executing
    /// workspace is pinned to" (the widest available one by default);
    /// an explicit backend is honoured or refused with a structured
    /// error, never silently downgraded.
    pub kernel: KernelBackend,
    /// Delay corners to sweep as scenario lanes alongside the nominal
    /// analysis (`--corners min,typ,max`). Empty = no corner sweep.
    /// Takes precedence over `samples` when both are given.
    pub corners: Vec<Corner>,
    /// Derate percentage of the min/max corners — and the jitter
    /// percentage of sampled scenarios (`--derate`).
    pub derate: f64,
    /// Number of seeded Monte-Carlo delay scenarios to sweep
    /// (`--samples`; `0` = off).
    pub samples: usize,
    /// Seed of the sampled scenarios' per-lane RNG streams (`--seed`).
    pub seed: u64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            diagram: false,
            dot: false,
            baselines: false,
            slack: false,
            default_delay: 1.0,
            threads: None,
            kernel: KernelBackend::Auto,
            corners: Vec::new(),
            derate: 10.0,
            samples: 0,
            seed: 0,
        }
    }
}

/// The scenario set an `analyze` invocation's flags ask for, over
/// `arc_slots` arc slots: corners win over samples, neither means
/// `None` (nominal-only analysis).
///
/// # Errors
///
/// Returns invalid specifications (derate outside `[0, 100)`) as
/// user-facing messages.
pub fn scenario_set_for(
    opts: &AnalyzeOptions,
    arc_slots: usize,
) -> Result<Option<ScenarioSet>, String> {
    if !opts.corners.is_empty() {
        ScenarioSet::corners(opts.derate, &opts.corners, arc_slots)
            .map(Some)
            .map_err(|e| e.to_string())
    } else if opts.samples > 0 {
        ScenarioSet::samples(opts.samples, opts.seed, opts.derate, arc_slots)
            .map(Some)
            .map_err(|e| e.to_string())
    } else {
        Ok(None)
    }
}

/// Flags of a `sim` invocation, shared by every input file.
#[derive(Clone, Debug, Default)]
pub struct SimOptions {
    /// Periods to simulate (`.g` inputs only).
    pub periods: Option<u32>,
    /// Simulation horizon (`.ckt` inputs only).
    pub horizon: Option<f64>,
    /// Dump a VCD waveform to this path (one-shot CLI only; the serve
    /// protocol has no `vcd` field).
    pub vcd: Option<String>,
    /// Delay for unannotated arcs (`.g` inputs only).
    pub default_delay: Option<f64>,
    /// Kernel queue backend to run on.
    pub queue: QueueKind,
}

/// Parses `text` as the format `file`'s extension names and returns the
/// Signal Graph (netlists go through semimodularity checking and the
/// TRASPEC-style extraction first).
///
/// # Errors
///
/// Returns parse/extraction failures as user-facing messages.
pub fn load(file: &str, text: &str, default_delay: f64) -> Result<SignalGraph, String> {
    if file.ends_with(".ckt") {
        let nl = tsg_circuit::parse::parse_ckt(text).map_err(|e| e.to_string())?;
        if nl.signal_count() <= 24 {
            let rep = tsg_extract::explore(&nl, 2_000_000);
            if !rep.is_semimodular() {
                return Err(format!(
                    "circuit is not semimodular ({} violation(s)); not speed-independent",
                    rep.violations.len()
                ));
            }
        }
        tsg_extract::extract(&nl, tsg_extract::ExtractOptions::default()).map_err(|e| e.to_string())
    } else {
        tsg_stg::parse_stg(text, tsg_stg::StgOptions { default_delay }).map_err(|e| e.to_string())
    }
}

/// The `tsg analyze` report, one-shot path: the `b` border-initiated
/// simulations fan out across a [`BatchRunner`] pool sized by
/// `opts.threads` — and so do the scenario lanes when `opts` asks for
/// a corner or sample sweep (scenarios chunked across the workers,
/// bit-identical at any thread count).
pub fn report(sg: &SignalGraph, opts: &AnalyzeOptions) -> String {
    let runner = BatchRunner::sized(opts.threads);
    let analysis = CycleTimeAnalysis::run_parallel_on(sg, &runner, opts.kernel);
    let scenarios = match scenario_set_for(opts, sg.arc_count()) {
        Ok(None) => Ok(None),
        Ok(Some(set)) => {
            CycleTimeAnalysis::run_scenarios_parallel_on(sg, &set, &runner, opts.kernel, None)
                .map(Some)
                .map_err(|e| e.to_string())
        }
        Err(e) => Err(e),
    };
    render_report(sg, opts, analysis, scenarios)
}

/// The `tsg analyze` report, warm path: all simulations reuse `arena`.
/// Byte-identical to [`report`] — `run_in` and `run_parallel` produce
/// bit-identical analyses.
pub fn report_in(sg: &SignalGraph, opts: &AnalyzeOptions, arena: &mut AnalysisArena) -> String {
    report_in_with_cancel(sg, opts, arena, None).expect("no cancel token was supplied")
}

/// [`report_in`] with a cooperative cancel token. Analysis failures
/// other than cancellation ("no cyclic behavior", kernel refusals) are
/// still rendered *inline* in the report — byte-identical to the
/// uncancelled path — so only a fired token surfaces as an error.
///
/// # Errors
///
/// Returns [`OpError::Cancelled`] when `cancel` fires mid-analysis.
pub fn report_in_with_cancel(
    sg: &SignalGraph,
    opts: &AnalyzeOptions,
    arena: &mut AnalysisArena,
    cancel: Option<&CancelToken>,
) -> Result<String, OpError> {
    let analysis = CycleTimeAnalysis::run_in_with_cancel(sg, None, arena, cancel);
    if let Err(AnalysisError::Cancelled {
        kind,
        rows_done,
        rows_total,
    }) = analysis
    {
        return Err(OpError::Cancelled {
            kind,
            done: rows_done as u64,
            total: rows_total as u64,
        });
    }
    // The scenario sweep reuses the same warm arena the nominal
    // analysis just ran on; only a fired token surfaces as an error,
    // everything else renders inline like the nominal block.
    let scenarios = match scenario_set_for(opts, sg.arc_count()) {
        Ok(None) => Ok(None),
        Ok(Some(set)) => match CycleTimeAnalysis::run_scenarios_in(sg, &set, None, arena, cancel) {
            Ok(sa) => Ok(Some(sa)),
            Err(AnalysisError::Cancelled {
                kind,
                rows_done,
                rows_total,
            }) => {
                return Err(OpError::Cancelled {
                    kind,
                    done: rows_done as u64,
                    total: rows_total as u64,
                });
            }
            Err(e) => Err(e.to_string()),
        },
        Err(e) => Err(e),
    };
    Ok(render_report(sg, opts, analysis, scenarios))
}

fn render_report(
    sg: &SignalGraph,
    opts: &AnalyzeOptions,
    analysis: Result<CycleTimeAnalysis, AnalysisError>,
    scenarios: Result<Option<ScenarioAnalysis>, String>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph: {} events, {} arcs, {} border event(s)",
        sg.event_count(),
        sg.arc_count(),
        sg.border_events().len()
    );
    match analysis {
        Ok(a) => {
            let _ = writeln!(out, "cycle time: {}", a.cycle_time());
            let _ = writeln!(
                out,
                "critical cycle: {}",
                sg.display_path(a.critical_cycle())
            );
            let borders: Vec<String> = a
                .critical_borders()
                .iter()
                .map(|&e| sg.label(e).to_string())
                .collect();
            let _ = writeln!(out, "critical border event(s): {}", borders.join(", "));
            for rec in a.records() {
                let cells: Vec<String> = rec
                    .distances
                    .iter()
                    .map(|(i, t, d)| format!("δ({i})={t}/{i}={d:.4}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "  {:<6} {}",
                    sg.label(rec.event).to_string(),
                    cells.join("  ")
                );
            }
        }
        Err(e) => {
            let _ = writeln!(out, "cycle time: undefined ({e})");
        }
    }
    match scenarios {
        Ok(None) => {}
        Ok(Some(sa)) => {
            if opts.corners.is_empty() {
                let _ = writeln!(
                    out,
                    "scenarios: {} sample(s), jitter {}%, seed {}",
                    sa.len(),
                    opts.derate,
                    opts.seed
                );
            } else {
                let _ = writeln!(
                    out,
                    "scenarios: {} corner(s), derate {}%",
                    sa.len(),
                    opts.derate
                );
            }
            let _ = writeln!(
                out,
                "tau distribution: mean {:.4}  p50 {:.4}  p95 {:.4}  max {:.4}",
                sa.tau_mean(),
                sa.tau_quantile(0.5),
                sa.tau_quantile(0.95),
                sa.tau_quantile(1.0)
            );
            if !opts.corners.is_empty() {
                for j in 0..sa.len() {
                    let _ = writeln!(
                        out,
                        "  {:<6} tau {}",
                        sa.label(j),
                        sa.analysis(j).cycle_time()
                    );
                }
            }
            let _ = writeln!(out, "arc criticality:");
            for (a, p) in sa.criticality() {
                let arc = sg.arc(a);
                let _ = writeln!(
                    out,
                    "  {} -> {} : {:.2}",
                    sg.label(arc.src()),
                    sg.label(arc.dst()),
                    p
                );
            }
        }
        Err(e) => {
            let _ = writeln!(out, "scenarios: unavailable ({e})");
        }
    }
    if opts.baselines {
        let _ = writeln!(out, "baselines:");
        if let Some(t) = tsg_baselines::howard_cycle_time(sg) {
            let _ = writeln!(out, "  howard        : {}", t.as_f64());
        }
        if let Some(t) = tsg_baselines::karp_cycle_time(sg) {
            let _ = writeln!(out, "  karp          : {}", t.as_f64());
        }
        if let Some(t) = tsg_baselines::lawler_cycle_time(sg, 60) {
            let _ = writeln!(out, "  lawler        : {}", t.as_f64());
        }
        if let Ok(Some(t)) = tsg_baselines::enumerate_cycle_time(sg, 100_000) {
            let _ = writeln!(out, "  enumeration   : {}", t.as_f64());
        }
        if let Some(t) = tsg_baselines::longrun_estimate(sg, 64) {
            let _ = writeln!(out, "  long-run sim  : {t}");
        }
    }
    if opts.slack {
        match tsg_core::analysis::slack::SlackAnalysis::run(sg) {
            Ok(sa) => {
                let critical = sa.critical_arcs(1e-9);
                let _ = writeln!(
                    out,
                    "slack: {} of {} cyclic arcs are timing-critical",
                    critical.len(),
                    sg.arc_ids().filter(|&a| sa.slack(a).is_some()).count()
                );
                for a in sg.arc_ids() {
                    if let Some(s) = sa.slack(a) {
                        let arc = sg.arc(a);
                        let _ = writeln!(
                            out,
                            "  {} -> {} : {}",
                            sg.label(arc.src()),
                            sg.label(arc.dst()),
                            if s <= 1e-9 {
                                "CRITICAL".to_owned()
                            } else {
                                format!("slack {s}")
                            }
                        );
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(out, "slack: unavailable ({e})");
            }
        }
    }
    if opts.diagram && sg.repetitive_count() > 0 {
        let sim = TimingSimulation::run(sg, 3);
        let _ = writeln!(out, "timing diagram (3 periods):");
        out.push_str(&diagram::render(sg, &sim, DiagramOptions::default()));
    }
    if opts.dot {
        out.push_str(&tsg_core::dot::to_dot(sg, "tsg"));
    }
    out
}

/// One `tsg sim` input file, one-shot path: fresh state per invocation.
///
/// # Errors
///
/// Returns read/parse/flag-validation failures as user-facing messages.
pub fn simulate_file(file: &str, opts: &SimOptions) -> Result<String, String> {
    Workspace::new()
        .simulate(&Source::Path(file.to_owned()), opts, None)
        .map_err(|e| e.to_string())
}

/// Workspace key of connection `conn`'s session `name`.
fn session_key(conn: u64, name: &str) -> String {
    format!("{conn}/{name}")
}

/// The cycle-time summary lines every session response carries — also
/// what `tsg explore` prints per step, so both front-ends describe a
/// session state identically.
pub fn session_summary(session: &AnalysisSession) -> String {
    let analysis = session.analysis();
    let mut out = String::new();
    let _ = writeln!(out, "cycle time: {}", analysis.cycle_time());
    let _ = writeln!(
        out,
        "critical cycle: {}",
        session.graph().display_path(analysis.critical_cycle())
    );
    out
}

/// Resolves label-addressed `edits` against `session`'s graph and
/// applies them as one batch — shared by the serve handler and `tsg
/// explore`.
///
/// # Errors
///
/// Returns unresolvable labels or invalid delays as user-facing
/// messages; the session is unchanged in that case.
pub fn apply_edits(
    session: &mut AnalysisSession,
    edits: &[EditSpec],
) -> Result<tsg_core::analysis::session::CycleTimeDelta, String> {
    apply_edits_with_cancel(session, edits, None).map_err(|e| e.to_string())
}

/// [`apply_edits`] with a cooperative cancel token. On
/// [`OpError::Cancelled`] the edits *are* applied but the session's
/// analysis is stale ([`AnalysisSession::is_stale`]); the next
/// uncancelled edit call (even with an empty batch) heals it
/// bit-identically, so the session stays usable.
///
/// # Errors
///
/// Returns unresolvable labels or invalid delays as [`OpError::Msg`]
/// (the session is unchanged), or [`OpError::Cancelled`] when `cancel`
/// fires mid-rerun.
pub fn apply_edits_with_cancel(
    session: &mut AnalysisSession,
    edits: &[EditSpec],
    cancel: Option<&CancelToken>,
) -> Result<tsg_core::analysis::session::CycleTimeDelta, OpError> {
    let resolved: Vec<DelayEdit> = edits
        .iter()
        .map(|e| {
            session
                .resolve_arc(&e.src, &e.dst)
                .map(|arc| DelayEdit {
                    arc,
                    delay: e.delay,
                })
                .map_err(|err| err.to_string())
        })
        .collect::<Result<_, _>>()?;
    session
        .edit_delays_with_cancel(&resolved, cancel)
        .map_err(|e| match e {
            EditError::Cancelled {
                kind,
                rows_done,
                rows_total,
            } => OpError::Cancelled {
                kind,
                done: rows_done as u64,
                total: rows_total as u64,
            },
            other => OpError::Msg(other.to_string()),
        })
}

/// One proposed move of [`optimize_session`]'s trajectory — what the
/// explorer tried, what it did to the objective, and how much
/// re-simulation scoring it cost.
#[derive(Clone, Debug)]
pub struct MoveRecord {
    /// Move number, 0-based.
    pub index: usize,
    /// Human-readable description of the proposed edit batch.
    pub action: String,
    /// Objective (cycle time) before the move.
    pub tau_before: f64,
    /// Objective after the move — equals `tau_before` when rejected
    /// (the session was rolled back).
    pub tau_after: f64,
    /// The critical cycle after the move, rendered as a path.
    pub critical: String,
    /// Whether the move improved the objective and was kept.
    pub accepted: bool,
    /// Matrix rows the scoring re-analysis recomputed (0 when the
    /// proposal was rejected by validation before any scoring).
    pub rows: usize,
    /// Rows a from-scratch scoring run would compute.
    pub rows_total: usize,
}

/// Result of [`optimize_session`]: the accepted-move trajectory and the
/// objective's endpoints.
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// Cycle time when the loop started.
    pub initial: f64,
    /// Cycle time of the committed final state (≤ `initial`: only
    /// strict improvements are kept).
    pub final_tau: f64,
    /// Moves that improved the objective and were committed.
    pub accepted: usize,
    /// Every proposed move, in order.
    pub trajectory: Vec<MoveRecord>,
}

/// SplitMix64 — the deterministic inline generator seeding the move
/// proposals, so `--seed` reproduces a whole optimization run exactly.
/// Public because the CLI reuses it for decorrelated retry jitter:
/// one tiny, dependency-free generator for every non-cryptographic use.
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// The next raw 64-bit draw (an RNG, not an iterator — there is no
    /// sensible `Iterator` impl for an infinite entropy stream here).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw uniform in `0..n` (`n = 0` is treated as 1).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The live arcs of the cyclic part — the only arcs whose mutation can
/// move the cycle time, hence the move generator's candidate pool.
fn cyclic_arcs(sg: &SignalGraph) -> Vec<ArcId> {
    sg.arc_ids()
        .filter(|&a| {
            let arc = sg.arc(a);
            sg.is_live_arc(a)
                && !arc.is_disengageable()
                && sg.is_repetitive(arc.src())
                && sg.is_repetitive(arc.dst())
        })
        .collect()
}

/// Proposes one speculative edit batch: a delay nudge, an arc rewire,
/// or a pipeline-stage insertion. Proposals may be structurally invalid
/// (rewires especially) — the optimizer scores through the session's
/// transactional edit API, so a rejected batch just counts as a
/// rejected move.
fn propose_move(
    session: &AnalysisSession,
    rng: &mut SplitMix64,
    fresh: &mut u64,
) -> (String, Vec<GraphEdit>) {
    let sg = session.graph();
    let arcs = cyclic_arcs(sg);
    let a = arcs[rng.below(arcs.len() as u64) as usize];
    let arc = sg.arc(a);
    let (src, dst) = (arc.src(), arc.dst());
    let name = |e: EventId| sg.label(e).to_string();
    match rng.below(3) {
        0 => {
            // Delay nudge: speed the arc up by a quarter.
            let delay = arc.delay().get() * 0.75;
            (
                format!("nudge {}->{} to {delay}", name(src), name(dst)),
                vec![GraphEdit::Delay { arc: a, delay }],
            )
        }
        1 => {
            // Pipeline-stage insertion: split the arc through a fresh
            // event and mark the second half — one more token on the
            // cycle, the classical throughput move.
            let label = loop {
                *fresh += 1;
                let candidate = format!("p{fresh}");
                if sg.event_by_label(&candidate).is_none() {
                    break candidate;
                }
            };
            let mid = EventId(sg.event_count() as u32);
            let half = arc.delay().get() / 2.0;
            (
                format!("split {}->{} through {label}", name(src), name(dst)),
                vec![
                    GraphEdit::RemoveArc { arc: a },
                    GraphEdit::AddEvent {
                        label: label.clone(),
                    },
                    GraphEdit::AddArc {
                        src,
                        dst: mid,
                        delay: half,
                        marked: arc.is_marked(),
                    },
                    GraphEdit::AddArc {
                        src: mid,
                        dst,
                        delay: half,
                        marked: true,
                    },
                ],
            )
        }
        _ => {
            // Arc rewire: retarget the arc at another repetitive event.
            // Often invalid (liveness/connectivity) — rejection-tolerant
            // by design.
            let events: Vec<EventId> = sg.events().filter(|&e| sg.is_repetitive(e)).collect();
            let new_dst = events[rng.below(events.len() as u64) as usize];
            (
                format!(
                    "rewire {}->{} to {}->{}",
                    name(src),
                    name(dst),
                    name(src),
                    name(new_dst)
                ),
                vec![
                    GraphEdit::RemoveArc { arc: a },
                    GraphEdit::AddArc {
                        src,
                        dst: new_dst,
                        delay: arc.delay().get(),
                        marked: arc.is_marked(),
                    },
                ],
            )
        }
    }
}

/// The speculative design-exploration loop behind `tsg explore
/// --optimize` and `session.explore`: propose `moves` random candidate
/// edits (delay nudges, arc rewires, pipeline-stage insertions), score
/// each by incremental re-analysis against a snapshot, commit the ones
/// that strictly lower the `objective` and roll the rest back. The
/// accepted-objective trajectory is monotone non-increasing by
/// construction, so `final_tau <= initial` always holds — with
/// [`Objective::TauP95`] the scored value is the 95th-percentile τ over
/// the session's enabled scenario lanes (nominal τ if none are).
///
/// `cancel` is polled between moves: a fired token stops proposing and
/// returns the trajectory so far — the session is never left mid-move,
/// so no healing is needed.
pub fn optimize_session(
    session: &mut AnalysisSession,
    moves: usize,
    seed: u64,
    objective: Objective,
    cancel: Option<&CancelToken>,
) -> OptimizeOutcome {
    let mut rng = SplitMix64(seed ^ 0xD6E8_FEB8_6659_FD93);
    let initial = objective_value(session, objective);
    let mut trajectory = Vec::with_capacity(moves);
    let mut accepted = 0usize;
    let mut fresh = 0u64;
    for index in 0..moves {
        if cancel.is_some_and(|t| t.check().is_some()) {
            break;
        }
        let tau_before = objective_value(session, objective);
        let (action, batch) = propose_move(session, &mut rng, &mut fresh);
        let snap = session.snapshot();
        // A rejected batch rolls itself back; a scored one that does
        // not improve is rolled back to the snapshot. Only strict
        // improvements survive, so the committed objective never
        // climbs. Scoring a move re-runs the scenario lanes too (the
        // session refreshes them per edit batch), so TauP95 sees the
        // move's effect across the whole delay distribution.
        let scored = session.edit_structure(&batch).ok();
        let improved = scored.is_some() && objective_value(session, objective) < tau_before;
        let (rows, rows_total) = scored.map_or((0, 0), |d| (d.rows, d.rows_total));
        if improved {
            accepted += 1;
        } else if scored.is_some() {
            session.restore(snap);
        }
        trajectory.push(MoveRecord {
            index,
            action,
            tau_before,
            tau_after: objective_value(session, objective),
            critical: session
                .graph()
                .display_path(session.analysis().critical_cycle())
                .to_string(),
            accepted: improved,
            rows,
            rows_total,
        });
    }
    OptimizeOutcome {
        initial,
        final_tau: objective_value(session, objective),
        accepted,
        trajectory,
    }
}

/// Index of a [`QueueKind`] into the per-kind warm-state slots.
fn kind_slot(kind: QueueKind) -> usize {
    match kind {
        QueueKind::Heap => 0,
        QueueKind::Calendar => 1,
    }
}

/// A serve worker's persistent scratch state: the warm arena and the
/// per-backend event queues every request executes on.
///
/// After the first request of each shape ("warm-up"), replaying a
/// request of the same or smaller shape performs no arena or queue
/// allocation — the capacity accessors exist so tests can assert exactly
/// that.
#[derive(Debug, Default)]
pub struct Workspace {
    arena: AnalysisArena,
    graph: [Option<EventSimScratch>; 2],
    netlist: [Option<tsg_circuit::SimQueue>; 2],
    /// Open incremental sessions, keyed `"{conn}/{name}"` — the
    /// dispatcher pins every request naming one session to one worker,
    /// so a session's whole life happens inside a single workspace.
    sessions: HashMap<String, AnalysisSession>,
}

impl Workspace {
    /// An empty workspace; the first request of each kind warms it.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace pinned to `kernel` (resolved leniently: an
    /// unavailable backend falls back to the widest available one).
    /// Every warm analysis and session opened here runs on it.
    pub fn with_kernel(kernel: KernelBackend) -> Self {
        Workspace {
            arena: AnalysisArena::with_kernel(kernel),
            ..Self::default()
        }
    }

    /// The resolved wide-kernel backend this workspace executes on.
    pub fn kernel(&self) -> KernelBackend {
        self.arena.kernel()
    }

    /// Capacity of the analysis arena's buffers: `(wide lane-major time
    /// cells, scalar time cells, scalar parent cells)`.
    pub fn arena_capacity(&self) -> (usize, usize, usize) {
        self.arena.capacity()
    }

    /// Capacity of the warm signal-graph simulation queue for `kind`
    /// (`None` until a `.g` sim request warmed it).
    pub fn graph_queue_capacity(&self, kind: QueueKind) -> Option<usize> {
        self.graph[kind_slot(kind)]
            .as_ref()
            .map(EventSimScratch::queue_capacity)
    }

    /// Capacity of the warm netlist simulation queue for `kind` (`None`
    /// until a `.ckt` sim request warmed it).
    pub fn netlist_queue_capacity(&self, kind: QueueKind) -> Option<usize> {
        self.netlist[kind_slot(kind)]
            .as_ref()
            .map(tsg_circuit::SimQueue::capacity)
    }

    /// `tsg analyze` on the warm arena. Byte-identical to the one-shot
    /// [`report`] on the same source and options.
    ///
    /// # Errors
    ///
    /// Returns read/parse failures as [`OpError::Msg`], or
    /// [`OpError::Cancelled`] when `cancel` fires mid-analysis.
    pub fn analyze(
        &mut self,
        source: &Source,
        opts: &AnalyzeOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<String, OpError> {
        let text = source.read()?;
        let sg = load(source.name(), &text, opts.default_delay)?;
        match opts.kernel {
            KernelBackend::Auto => report_in_with_cancel(&sg, opts, &mut self.arena, cancel),
            requested => {
                // An explicit per-request kernel is honoured or refused,
                // never silently downgraded; it runs on a fresh arena so
                // the workspace's pinned backend stays warm.
                let resolved = requested.resolve().map_err(|e| e.to_string())?;
                report_in_with_cancel(&sg, opts, &mut AnalysisArena::with_kernel(resolved), cancel)
            }
        }
    }

    /// `tsg sim` on the warm queues. Byte-identical to the one-shot
    /// [`simulate_file`] on the same source and options.
    ///
    /// Netlist (`.ckt`) simulations are not cancellable: their own
    /// 2 000 000-step cap already bounds them, so `cancel` only guards
    /// the signal-graph path.
    ///
    /// # Errors
    ///
    /// Returns read/parse/flag-validation failures as [`OpError::Msg`],
    /// or [`OpError::Cancelled`] when `cancel` fires mid-simulation.
    pub fn simulate(
        &mut self,
        source: &Source,
        opts: &SimOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<String, OpError> {
        let text = source.read()?;
        if source.name().ends_with(".ckt") {
            if opts.periods.is_some() {
                return Err(OpError::Msg(
                    "--periods applies to .g signal graphs; netlist simulations take --horizon"
                        .to_owned(),
                ));
            }
            if opts.default_delay.is_some() {
                return Err(OpError::Msg(
                    "--default-delay applies to .g signal graphs; netlists carry their own pin \
                     delays"
                        .to_owned(),
                ));
            }
            let nl = tsg_circuit::parse::parse_ckt(&text).map_err(|e| e.to_string())?;
            self.simulate_netlist(&nl, opts).map_err(OpError::Msg)
        } else {
            if opts.horizon.is_some() {
                return Err(OpError::Msg(
                    "--horizon applies to .ckt netlists; signal-graph simulations take --periods"
                        .to_owned(),
                ));
            }
            let sg = tsg_stg::parse_stg(
                &text,
                tsg_stg::StgOptions {
                    default_delay: opts.default_delay.unwrap_or(1.0),
                },
            )
            .map_err(|e| e.to_string())?;
            self.simulate_graph(&sg, opts, cancel)
        }
    }

    /// Number of sessions currently open in this workspace.
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// `session.open`: one full analysis, kept warm under
    /// `"{conn}/{name}"` for the delta queries to come.
    ///
    /// # Errors
    ///
    /// Returns read/parse/analysis failures — or a name collision — as
    /// [`OpError::Msg`], or [`OpError::Cancelled`] when `cancel` fires
    /// during the opening analysis (no session is kept in that case).
    pub fn session_open(
        &mut self,
        conn: u64,
        name: &str,
        source: &Source,
        default_delay: f64,
        cancel: Option<&CancelToken>,
    ) -> Result<String, OpError> {
        let key = session_key(conn, name);
        if self.sessions.contains_key(&key) {
            return Err(OpError::Msg(format!("session {name:?} is already open")));
        }
        let text = source.read()?;
        let sg = load(source.name(), &text, default_delay)?;
        let session = AnalysisSession::open_with_cancel(sg, self.arena.kernel(), cancel).map_err(
            |e| match e {
                AnalysisError::Cancelled {
                    kind,
                    rows_done,
                    rows_total,
                } => OpError::Cancelled {
                    kind,
                    done: rows_done as u64,
                    total: rows_total as u64,
                },
                other => OpError::Msg(other.to_string()),
            },
        )?;
        let mut out = format!(
            "opened session {name:?}: {} events, {} arcs, {} border event(s)\n",
            session.graph().event_count(),
            session.graph().arc_count(),
            session.analysis().border_events().len()
        );
        out.push_str(&session_summary(&session));
        self.sessions.insert(key, session);
        Ok(out)
    }

    /// `session.edit`: applies one batch of label-addressed delay and
    /// structural edits as one transaction, re-simulating only the
    /// dirty region (or reseeding the warm lanes when the batch changes
    /// the border set).
    ///
    /// # Errors
    ///
    /// Returns unknown-session, unresolvable-label and rejected-batch
    /// failures as [`OpError::Msg`] (the session survives them
    /// unchanged), or [`OpError::Cancelled`] when `cancel` fires
    /// mid-rerun — the edits *are* applied then, the session stays open
    /// with a stale analysis, and the next uncancelled edit (even an
    /// empty batch) heals it bit-identically.
    pub fn session_edit(
        &mut self,
        conn: u64,
        name: &str,
        edits: &[EditOp],
        cancel: Option<&CancelToken>,
    ) -> Result<String, OpError> {
        let session = self
            .sessions
            .get_mut(&session_key(conn, name))
            .ok_or_else(|| format!("no open session {name:?}"))?;
        let delta = apply_struct_edits_with_cancel(session, edits, cancel)?;
        let mut out = session_summary(session);
        let _ = writeln!(
            out,
            "re-simulated {} of {} border simulation(s) ({} of {} rows)",
            delta.dirty, delta.borders, delta.rows, delta.rows_total
        );
        Ok(out)
    }

    /// `session.explore`: runs the speculative optimization loop
    /// ([`optimize_session`]) on an open session, committing the moves
    /// that lower the objective, and self-verifies the final state
    /// against a from-scratch analysis (scenario lanes included). With
    /// [`Objective::TauP95`], `samples` seeded delay scenarios are
    /// enabled on the session first (kept enabled afterwards, so the
    /// response's distribution summary reflects the final state).
    ///
    /// # Errors
    ///
    /// Returns an unknown-session message, or a scenario-enablement
    /// failure for `tau-p95`. A fired `cancel` merely stops proposing
    /// further moves — the moves already committed stay, the session is
    /// consistent, and the response reports the partial trajectory.
    #[allow(clippy::too_many_arguments)] // one knob per protocol field of session.explore
    pub fn session_explore(
        &mut self,
        conn: u64,
        name: &str,
        moves: usize,
        seed: u64,
        objective: Objective,
        samples: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<String, OpError> {
        let session = self
            .sessions
            .get_mut(&session_key(conn, name))
            .ok_or_else(|| format!("no open session {name:?}"))?;
        let mut out = String::new();
        if objective == Objective::TauP95 && session.scenario_analysis().is_none() {
            let set = ScenarioSet::samples(samples.max(1), seed, 10.0, session.graph().arc_count())
                .map_err(|e| e.to_string())?;
            session.enable_scenarios(&set).map_err(|e| e.to_string())?;
        }
        if let Some(sa) = session.scenario_analysis() {
            let _ = writeln!(
                out,
                "objective: {objective} over {} scenario lane(s)",
                sa.len()
            );
        }
        let outcome = optimize_session(session, moves, seed, objective, cancel);
        for m in &outcome.trajectory {
            let _ = writeln!(
                out,
                "move {}: {}: tau {} -> {} ({}, {} of {} rows)",
                m.index,
                m.action,
                m.tau_before,
                m.tau_after,
                if m.accepted { "accepted" } else { "rejected" },
                m.rows,
                m.rows_total
            );
        }
        let _ = writeln!(
            out,
            "optimized: tau {} -> {} after {} accepted of {} proposed move(s)",
            outcome.initial,
            outcome.final_tau,
            outcome.accepted,
            outcome.trajectory.len()
        );
        out.push_str(&session_summary(session));
        if let Some(sa) = session.scenario_analysis() {
            let _ = writeln!(
                out,
                "tau distribution: mean {:.4}  p50 {:.4}  p95 {:.4}  max {:.4}",
                sa.tau_mean(),
                sa.tau_quantile(0.5),
                sa.tau_quantile(0.95),
                sa.tau_quantile(1.0)
            );
        }
        verify_session(session)?;
        let _ = writeln!(out, "verified: bit-identical to a from-scratch analysis");
        Ok(out)
    }

    /// `session.close`: discards the session's warm state.
    ///
    /// # Errors
    ///
    /// Returns an unknown-session message.
    pub fn session_close(&mut self, conn: u64, name: &str) -> Result<String, OpError> {
        let session = self
            .sessions
            .remove(&session_key(conn, name))
            .ok_or_else(|| OpError::Msg(format!("no open session {name:?}")))?;
        Ok(format!(
            "closed session {name:?} after {} edit(s)\n",
            session.edits_applied()
        ))
    }

    /// Drops every session a disconnected client left open — the pool
    /// broadcasts this to all workers when a connection ends — and
    /// returns how many were swept (the pool settles its session cap
    /// with the count).
    pub fn close_conn_sessions(&mut self, conn: u64) -> usize {
        let prefix = session_key(conn, "");
        let before = self.sessions.len();
        self.sessions.retain(|key, _| !key.starts_with(&prefix));
        before - self.sessions.len()
    }

    /// Gate-level event-driven simulation on the warm per-kind queue.
    fn simulate_netlist(
        &mut self,
        nl: &tsg_circuit::Netlist,
        opts: &SimOptions,
    ) -> Result<String, String> {
        let horizon = opts.horizon.unwrap_or(100.0);
        let queue = self.netlist[kind_slot(opts.queue)]
            .take()
            .unwrap_or_else(|| tsg_circuit::SimQueue::new(opts.queue));
        let mut sim = tsg_circuit::EventDrivenSim::with_reused_queue(nl, queue);
        if opts.vcd.is_some() {
            sim.enable_trace();
        }
        let run = sim.run(horizon, 2_000_000);
        let recorder = sim.take_trace();
        // Reclaim the queue before any early return: error isolation must
        // not leak the warm allocation.
        self.netlist[kind_slot(opts.queue)] = Some(sim.into_queue());
        let trace = run.map_err(|e| format!("simulation failed: {e}"))?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "simulated {} transition(s) on {} signal(s) to horizon {horizon}",
            trace.len(),
            nl.signal_count()
        );
        for s in nl.signals() {
            if let Some(period) = tsg_circuit::EventDrivenSim::steady_period(&trace, s, true) {
                let _ = writeln!(out, "  {:<8} steady period {period}", nl.name(s));
            }
        }
        if let Some(path) = &opts.vcd {
            recorder
                .expect("trace was enabled")
                .dump_vcd(path)
                .map_err(|e| format!("writing {path}: {e}"))?;
            let _ = writeln!(out, "VCD waveform written to {path}");
        }
        Ok(out)
    }

    /// Signal-graph event simulation on the warm per-kind scratch.
    fn simulate_graph(
        &mut self,
        sg: &SignalGraph,
        opts: &SimOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<String, OpError> {
        let periods = opts.periods.unwrap_or(4);
        let scratch = self.graph[kind_slot(opts.queue)]
            .get_or_insert_with(|| EventSimScratch::new(opts.queue));
        let sim =
            EventSimulation::run_in_with_cancel(sg, periods, scratch, cancel).map_err(|c| {
                OpError::Cancelled {
                    kind: c.kind,
                    done: c.events_done,
                    total: c.events_done + c.pending as u64,
                }
            })?;
        let chron = sim.chronological(sg);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "simulated {} occurrence(s) of {} event(s) over {periods} period(s)",
            chron.len(),
            sg.event_count()
        );
        for (e, i, t) in &chron {
            let _ = writeln!(out, "  t({}_{i}) = {t}", sg.label(*e));
        }
        if let Some(path) = &opts.vcd {
            let mut recorder = TraceRecorder::new("tsg");
            sim.record_trace(sg, &mut recorder);
            recorder
                .dump_vcd(path)
                .map_err(|e| format!("writing {path}: {e}"))?;
            let _ = writeln!(out, "VCD waveform written to {path}");
        }
        Ok(out)
    }
}
