//! Fault injection for the serve tier.
//!
//! The pool carries a [`Chaos`] runtime built from a [`ChaosConfig`]
//! (builder field on `ServeOptions`) that the `TSG_CHAOS` environment
//! variable can override. Each fault point fires deterministically on
//! every Nth crossing of its site, so soak tests can predict exactly
//! how many faults a request sequence injects:
//!
//! * `panic=N`  — the worker panics on every Nth request *before*
//!   executing it (exercises the `isolate` catch-unwind path);
//! * `delay=N:MS` — every Nth request sleeps `MS` milliseconds before
//!   executing (exercises deadlines, admission control and drain);
//! * `garble=N` — every Nth response line is truncated and corrupted
//!   before the writer sends it (exercises client-side framing);
//! * `read_err=N` — every Nth request line read from a connection is
//!   replaced with an I/O error (exercises the reader error path);
//! * `kill=N` — every Nth request takes its whole worker down *outside*
//!   the per-request isolation boundary (exercises worker supervision:
//!   the request is answered `worker_lost` and the worker respawns with
//!   a fresh workspace);
//! * `rst=N` — every Nth response's connection is closed abruptly
//!   halfway through the response bytes (exercises client reconnect);
//! * `dribble=N:MS` — every Nth response is written one byte per `MS`
//!   milliseconds (exercises slow-client isolation: the dribbled
//!   connection must cost a buffer, never a worker or the event loop);
//! * `halfopen=N` — every Nth accepted connection is ignored: its
//!   bytes are discarded and nothing is ever answered (exercises
//!   parked-connection reaping).
//!
//! All counters are per-pool, shared across workers and connections.
//! `N = 0` (the default) disables a point. Parsing is forgiving:
//! malformed `TSG_CHAOS` clauses warn on stderr and fall back to the
//! builder value rather than refusing to start.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which faults to inject, and how often. All zero (the default) means
/// no injection; the chaos runtime is then a handful of never-taken
/// branches on cold paths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Panic inside the worker on every Nth request (0 = never).
    pub panic_every: u32,
    /// Sleep before executing every Nth request (0 = never).
    pub delay_every: u32,
    /// How long the injected delay sleeps, in milliseconds.
    pub delay_ms: u64,
    /// Truncate-and-corrupt every Nth response line (0 = never).
    pub garble_every: u32,
    /// Fail every Nth connection read with an I/O error (0 = never).
    pub read_err_every: u32,
    /// Kill the whole worker on every Nth request, outside the
    /// per-request isolation boundary (0 = never).
    pub kill_every: u32,
    /// Abruptly close the connection halfway through every Nth
    /// response (0 = never).
    pub rst_every: u32,
    /// Write every Nth response one byte at a time (0 = never).
    pub dribble_every: u32,
    /// Pacing between dribbled bytes, in milliseconds.
    pub dribble_ms: u64,
    /// Never read every Nth accepted connection (0 = never).
    pub halfopen_every: u32,
}

impl ChaosConfig {
    /// True when at least one fault point is armed.
    pub fn is_active(&self) -> bool {
        self.panic_every > 0
            || self.delay_every > 0
            || self.garble_every > 0
            || self.read_err_every > 0
            || self.kill_every > 0
            || self.rst_every > 0
            || self.dribble_every > 0
            || self.halfopen_every > 0
    }

    /// Applies `TSG_CHAOS`-style clauses (`panic=20,delay=7:15,
    /// garble=11,read_err=31`) over `self`. Unknown or malformed
    /// clauses leave the builder value in place and warn on stderr.
    pub fn with_env_spec(mut self, spec: &str) -> Self {
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let Some((key, value)) = clause.split_once('=') else {
                eprintln!("tsg serve: ignoring malformed TSG_CHAOS clause {clause:?}");
                continue;
            };
            let parsed = match key.trim() {
                "panic" => value.trim().parse().map(|n| self.panic_every = n),
                "garble" => value.trim().parse().map(|n| self.garble_every = n),
                "read_err" => value.trim().parse().map(|n| self.read_err_every = n),
                "kill" => value.trim().parse().map(|n| self.kill_every = n),
                "rst" => value.trim().parse().map(|n| self.rst_every = n),
                "halfopen" => value.trim().parse().map(|n| self.halfopen_every = n),
                "delay" => {
                    let (every, ms) = value.split_once(':').unwrap_or((value, "0"));
                    every.trim().parse().and_then(|n: u32| {
                        ms.trim().parse().map(|ms| {
                            self.delay_every = n;
                            self.delay_ms = ms;
                        })
                    })
                }
                "dribble" => {
                    let (every, ms) = value.split_once(':').unwrap_or((value, "1"));
                    every.trim().parse().and_then(|n: u32| {
                        ms.trim().parse().map(|ms| {
                            self.dribble_every = n;
                            self.dribble_ms = ms;
                        })
                    })
                }
                _ => {
                    eprintln!("tsg serve: ignoring unknown TSG_CHAOS clause {clause:?}");
                    continue;
                }
            };
            if parsed.is_err() {
                eprintln!("tsg serve: ignoring malformed TSG_CHAOS clause {clause:?}");
            }
        }
        self
    }

    /// The config with the `TSG_CHAOS` environment variable (if any)
    /// applied over it — what `Pool::new` actually installs.
    pub fn from_env(self) -> Self {
        match std::env::var("TSG_CHAOS") {
            Ok(spec) => self.with_env_spec(&spec),
            Err(_) => self,
        }
    }
}

/// The shared chaos runtime: the armed config plus one crossing counter
/// per fault point.
#[derive(Debug, Default)]
pub struct Chaos {
    config: ChaosConfig,
    requests: AtomicU64,
    delays: AtomicU64,
    responses: AtomicU64,
    reads: AtomicU64,
    kills: AtomicU64,
    rsts: AtomicU64,
    dribbles: AtomicU64,
    accepts: AtomicU64,
}

/// True on every `every`th crossing (1-indexed: crossings `every`,
/// `2*every`, ...); never when `every` is 0.
fn fires(counter: &AtomicU64, every: u32) -> bool {
    if every == 0 {
        return false;
    }
    let n = counter.fetch_add(1, Ordering::Relaxed) + 1;
    n.is_multiple_of(u64::from(every))
}

impl Chaos {
    /// A runtime for `config` with all crossing counters at zero.
    pub fn new(config: ChaosConfig) -> Self {
        Chaos {
            config,
            ..Self::default()
        }
    }

    /// The armed configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Call at the top of request execution, inside the panic isolation
    /// boundary: sleeps on every `delay_every`th request and panics on
    /// every `panic_every`th.
    ///
    /// # Panics
    ///
    /// Panics deliberately when the panic fault point fires.
    pub fn before_request(&self) {
        if fires(&self.delays, self.config.delay_every) {
            std::thread::sleep(Duration::from_millis(self.config.delay_ms));
        }
        if fires(&self.requests, self.config.panic_every) {
            panic!("chaos: injected worker panic");
        }
    }

    /// Truncates and corrupts `line` on every `garble_every`th response;
    /// returns whether it fired. The result is deliberately unparseable
    /// (half a JSON document with a flipped byte) so clients must treat
    /// it as a framing error, never as data.
    pub fn garble(&self, line: &mut String) -> bool {
        if !fires(&self.responses, self.config.garble_every) {
            return false;
        }
        let mut cut = line.len() / 2;
        while cut > 0 && !line.is_char_boundary(cut) {
            cut -= 1;
        }
        line.truncate(cut);
        line.push('\u{1b}');
        true
    }

    /// True on every `read_err_every`th connection read: the reader
    /// replaces the line with an injected I/O error.
    pub fn fail_read(&self) -> bool {
        fires(&self.reads, self.config.read_err_every)
    }

    /// Call once per request *outside* the per-request isolation
    /// boundary: panics on every `kill_every`th request, taking the
    /// whole worker thread down so supervision must respawn it.
    ///
    /// # Panics
    ///
    /// Panics deliberately when the kill fault point fires.
    pub fn kill_worker(&self) {
        if fires(&self.kills, self.config.kill_every) {
            panic!("chaos: injected worker kill");
        }
    }

    /// True on every `rst_every`th response: the connection is closed
    /// abruptly halfway through the response bytes.
    pub fn rst(&self) -> bool {
        fires(&self.rsts, self.config.rst_every)
    }

    /// True on every `dribble_every`th response: the response is
    /// written one byte per [`ChaosConfig::dribble_ms`] milliseconds.
    pub fn dribble(&self) -> bool {
        fires(&self.dribbles, self.config.dribble_every)
    }

    /// True on every `halfopen_every`th accepted connection: the
    /// server discards its bytes and never answers it.
    pub fn halfopen(&self) -> bool {
        fires(&self.accepts, self.config.halfopen_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inert() {
        let chaos = Chaos::new(ChaosConfig::default());
        assert!(!chaos.config().is_active());
        for _ in 0..100 {
            chaos.before_request();
            assert!(!chaos.fail_read());
            let mut line = String::from("{\"ok\":true}");
            assert!(!chaos.garble(&mut line));
            assert_eq!(line, "{\"ok\":true}");
        }
    }

    #[test]
    fn fault_points_fire_on_every_nth_crossing() {
        let chaos = Chaos::new(ChaosConfig {
            read_err_every: 3,
            garble_every: 2,
            ..ChaosConfig::default()
        });
        let reads: Vec<bool> = (0..6).map(|_| chaos.fail_read()).collect();
        assert_eq!(reads, [false, false, true, false, false, true]);
        let mut line = String::from("{\"id\":1,\"ok\":true}");
        assert!(!chaos.garble(&mut line));
        assert!(chaos.garble(&mut line));
        assert_ne!(line, "{\"id\":1,\"ok\":true}");
        assert!(line.len() < "{\"id\":1,\"ok\":true}".len());
    }

    #[test]
    fn injected_panic_is_catchable() {
        let chaos = Chaos::new(ChaosConfig {
            panic_every: 1,
            ..ChaosConfig::default()
        });
        let caught = std::panic::catch_unwind(|| chaos.before_request());
        assert!(caught.is_err());
    }

    #[test]
    fn env_spec_overrides_builder_values() {
        let base = ChaosConfig {
            panic_every: 5,
            ..ChaosConfig::default()
        };
        let cfg = base.with_env_spec(
            "panic=20,delay=7:15,garble=11,read_err=31,kill=13,rst=4,dribble=5:2,halfopen=6",
        );
        assert_eq!(
            cfg,
            ChaosConfig {
                panic_every: 20,
                delay_every: 7,
                delay_ms: 15,
                garble_every: 11,
                read_err_every: 31,
                kill_every: 13,
                rst_every: 4,
                dribble_every: 5,
                dribble_ms: 2,
                halfopen_every: 6,
            }
        );
        assert!(cfg.is_active());
    }

    #[test]
    fn connection_fault_points_fire_on_every_nth_crossing() {
        let chaos = Chaos::new(ChaosConfig {
            rst_every: 2,
            dribble_every: 3,
            dribble_ms: 1,
            halfopen_every: 2,
            ..ChaosConfig::default()
        });
        let rsts: Vec<bool> = (0..4).map(|_| chaos.rst()).collect();
        assert_eq!(rsts, [false, true, false, true]);
        let dribbles: Vec<bool> = (0..6).map(|_| chaos.dribble()).collect();
        assert_eq!(dribbles, [false, false, true, false, false, true]);
        let accepts: Vec<bool> = (0..4).map(|_| chaos.halfopen()).collect();
        assert_eq!(accepts, [false, true, false, true]);
    }

    #[test]
    fn injected_kill_is_catchable_outside_isolation() {
        let chaos = Chaos::new(ChaosConfig {
            kill_every: 2,
            ..ChaosConfig::default()
        });
        chaos.kill_worker();
        let caught = std::panic::catch_unwind(|| chaos.kill_worker());
        assert!(caught.is_err());
    }

    #[test]
    fn dribble_without_pacing_defaults_to_one_ms() {
        let cfg = ChaosConfig::default().with_env_spec("dribble=9");
        assert_eq!(cfg.dribble_every, 9);
        assert_eq!(cfg.dribble_ms, 1);
    }

    #[test]
    fn malformed_env_clauses_keep_builder_values() {
        let base = ChaosConfig {
            panic_every: 5,
            delay_every: 2,
            delay_ms: 9,
            ..ChaosConfig::default()
        };
        let cfg = base.with_env_spec("panic=lots,delay=x:y,nonsense,unknown=3,,garble=4");
        assert_eq!(cfg.panic_every, 5);
        assert_eq!(cfg.delay_every, 2);
        assert_eq!(cfg.delay_ms, 9);
        assert_eq!(cfg.garble_every, 4);
    }
}
