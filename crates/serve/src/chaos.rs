//! Fault injection for the serve tier.
//!
//! The pool carries a [`Chaos`] runtime built from a [`ChaosConfig`]
//! (builder field on `ServeOptions`) that the `TSG_CHAOS` environment
//! variable can override. Each fault point fires deterministically on
//! every Nth crossing of its site, so soak tests can predict exactly
//! how many faults a request sequence injects:
//!
//! * `panic=N`  — the worker panics on every Nth request *before*
//!   executing it (exercises the `isolate` catch-unwind path);
//! * `delay=N:MS` — every Nth request sleeps `MS` milliseconds before
//!   executing (exercises deadlines, admission control and drain);
//! * `garble=N` — every Nth response line is truncated and corrupted
//!   before the writer sends it (exercises client-side framing);
//! * `read_err=N` — every Nth request line read from a connection is
//!   replaced with an I/O error (exercises the reader error path).
//!
//! All counters are per-pool, shared across workers and connections.
//! `N = 0` (the default) disables a point. Parsing is forgiving:
//! malformed `TSG_CHAOS` clauses warn on stderr and fall back to the
//! builder value rather than refusing to start.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which faults to inject, and how often. All zero (the default) means
/// no injection; the chaos runtime is then a handful of never-taken
/// branches on cold paths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Panic inside the worker on every Nth request (0 = never).
    pub panic_every: u32,
    /// Sleep before executing every Nth request (0 = never).
    pub delay_every: u32,
    /// How long the injected delay sleeps, in milliseconds.
    pub delay_ms: u64,
    /// Truncate-and-corrupt every Nth response line (0 = never).
    pub garble_every: u32,
    /// Fail every Nth connection read with an I/O error (0 = never).
    pub read_err_every: u32,
}

impl ChaosConfig {
    /// True when at least one fault point is armed.
    pub fn is_active(&self) -> bool {
        self.panic_every > 0
            || self.delay_every > 0
            || self.garble_every > 0
            || self.read_err_every > 0
    }

    /// Applies `TSG_CHAOS`-style clauses (`panic=20,delay=7:15,
    /// garble=11,read_err=31`) over `self`. Unknown or malformed
    /// clauses leave the builder value in place and warn on stderr.
    pub fn with_env_spec(mut self, spec: &str) -> Self {
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let Some((key, value)) = clause.split_once('=') else {
                eprintln!("tsg serve: ignoring malformed TSG_CHAOS clause {clause:?}");
                continue;
            };
            let parsed = match key.trim() {
                "panic" => value.trim().parse().map(|n| self.panic_every = n),
                "garble" => value.trim().parse().map(|n| self.garble_every = n),
                "read_err" => value.trim().parse().map(|n| self.read_err_every = n),
                "delay" => {
                    let (every, ms) = value.split_once(':').unwrap_or((value, "0"));
                    every.trim().parse().and_then(|n: u32| {
                        ms.trim().parse().map(|ms| {
                            self.delay_every = n;
                            self.delay_ms = ms;
                        })
                    })
                }
                _ => {
                    eprintln!("tsg serve: ignoring unknown TSG_CHAOS clause {clause:?}");
                    continue;
                }
            };
            if parsed.is_err() {
                eprintln!("tsg serve: ignoring malformed TSG_CHAOS clause {clause:?}");
            }
        }
        self
    }

    /// The config with the `TSG_CHAOS` environment variable (if any)
    /// applied over it — what `Pool::new` actually installs.
    pub fn from_env(self) -> Self {
        match std::env::var("TSG_CHAOS") {
            Ok(spec) => self.with_env_spec(&spec),
            Err(_) => self,
        }
    }
}

/// The shared chaos runtime: the armed config plus one crossing counter
/// per fault point.
#[derive(Debug, Default)]
pub struct Chaos {
    config: ChaosConfig,
    requests: AtomicU64,
    delays: AtomicU64,
    responses: AtomicU64,
    reads: AtomicU64,
}

/// True on every `every`th crossing (1-indexed: crossings `every`,
/// `2*every`, ...); never when `every` is 0.
fn fires(counter: &AtomicU64, every: u32) -> bool {
    if every == 0 {
        return false;
    }
    let n = counter.fetch_add(1, Ordering::Relaxed) + 1;
    n.is_multiple_of(u64::from(every))
}

impl Chaos {
    /// A runtime for `config` with all crossing counters at zero.
    pub fn new(config: ChaosConfig) -> Self {
        Chaos {
            config,
            ..Self::default()
        }
    }

    /// The armed configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Call at the top of request execution, inside the panic isolation
    /// boundary: sleeps on every `delay_every`th request and panics on
    /// every `panic_every`th.
    ///
    /// # Panics
    ///
    /// Panics deliberately when the panic fault point fires.
    pub fn before_request(&self) {
        if fires(&self.delays, self.config.delay_every) {
            std::thread::sleep(Duration::from_millis(self.config.delay_ms));
        }
        if fires(&self.requests, self.config.panic_every) {
            panic!("chaos: injected worker panic");
        }
    }

    /// Truncates and corrupts `line` on every `garble_every`th response;
    /// returns whether it fired. The result is deliberately unparseable
    /// (half a JSON document with a flipped byte) so clients must treat
    /// it as a framing error, never as data.
    pub fn garble(&self, line: &mut String) -> bool {
        if !fires(&self.responses, self.config.garble_every) {
            return false;
        }
        let mut cut = line.len() / 2;
        while cut > 0 && !line.is_char_boundary(cut) {
            cut -= 1;
        }
        line.truncate(cut);
        line.push('\u{1b}');
        true
    }

    /// True on every `read_err_every`th connection read: the reader
    /// replaces the line with an injected I/O error.
    pub fn fail_read(&self) -> bool {
        fires(&self.reads, self.config.read_err_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inert() {
        let chaos = Chaos::new(ChaosConfig::default());
        assert!(!chaos.config().is_active());
        for _ in 0..100 {
            chaos.before_request();
            assert!(!chaos.fail_read());
            let mut line = String::from("{\"ok\":true}");
            assert!(!chaos.garble(&mut line));
            assert_eq!(line, "{\"ok\":true}");
        }
    }

    #[test]
    fn fault_points_fire_on_every_nth_crossing() {
        let chaos = Chaos::new(ChaosConfig {
            read_err_every: 3,
            garble_every: 2,
            ..ChaosConfig::default()
        });
        let reads: Vec<bool> = (0..6).map(|_| chaos.fail_read()).collect();
        assert_eq!(reads, [false, false, true, false, false, true]);
        let mut line = String::from("{\"id\":1,\"ok\":true}");
        assert!(!chaos.garble(&mut line));
        assert!(chaos.garble(&mut line));
        assert_ne!(line, "{\"id\":1,\"ok\":true}");
        assert!(line.len() < "{\"id\":1,\"ok\":true}".len());
    }

    #[test]
    fn injected_panic_is_catchable() {
        let chaos = Chaos::new(ChaosConfig {
            panic_every: 1,
            ..ChaosConfig::default()
        });
        let caught = std::panic::catch_unwind(|| chaos.before_request());
        assert!(caught.is_err());
    }

    #[test]
    fn env_spec_overrides_builder_values() {
        let base = ChaosConfig {
            panic_every: 5,
            ..ChaosConfig::default()
        };
        let cfg = base.with_env_spec("panic=20,delay=7:15,garble=11,read_err=31");
        assert_eq!(
            cfg,
            ChaosConfig {
                panic_every: 20,
                delay_every: 7,
                delay_ms: 15,
                garble_every: 11,
                read_err_every: 31,
            }
        );
        assert!(cfg.is_active());
    }

    #[test]
    fn malformed_env_clauses_keep_builder_values() {
        let base = ChaosConfig {
            panic_every: 5,
            delay_every: 2,
            delay_ms: 9,
            ..ChaosConfig::default()
        };
        let cfg = base.with_env_spec("panic=lots,delay=x:y,nonsense,unknown=3,,garble=4");
        assert_eq!(cfg.panic_every, 5);
        assert_eq!(cfg.delay_every, 2);
        assert_eq!(cfg.delay_ms, 9);
        assert_eq!(cfg.garble_every, 4);
    }
}
