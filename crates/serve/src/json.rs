//! A minimal JSON tree — parser and writer — for the serve protocol.
//!
//! The workspace vendors no serde, and the newline-delimited protocol of
//! `tsg serve` needs only small documents, so this module implements the
//! JSON grammar directly: full string escapes (including `\uXXXX`
//! surrogate pairs), standard number syntax, and a recursion-depth limit
//! so a hostile request cannot overflow the worker's stack. Numbers are
//! `f64` (ample for request ids and counters); `NaN`/infinite literals
//! do not exist in JSON and are never produced.
//!
//! Object fields keep their textual order in a `Vec` rather than a map:
//! requests are tiny, responses are built field-by-field, and order
//! preservation keeps the output byte-deterministic.

use std::fmt::Write as _;

/// Maximum nesting depth a parsed document may have.
const MAX_DEPTH: usize = 64;

/// Maximum byte length of a parsed document — the same defence as
/// [`MAX_DEPTH`], for width instead of depth: a hostile request cannot
/// make the parser build an arbitrarily large tree. The protocol reader
/// bounds request lines earlier (and configurably); this cap is the
/// parser's own last line.
pub const MAX_DOCUMENT_BYTES: usize = 8 * 1024 * 1024;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (JSON has only one numeric type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in textual order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the byte offset of the
    /// first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        if text.len() > MAX_DOCUMENT_BYTES {
            return Err(format!(
                "document of {} bytes exceeds the {MAX_DOCUMENT_BYTES}-byte limit",
                text.len()
            ));
        }
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The value of field `key`, when this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, when this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value as compact JSON (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

/// Writes `n` in canonical JSON form: integers without a fraction (every
/// id and counter round-trips exactly), everything else via Rust's
/// shortest-round-trip `f64` formatting.
fn write_number(n: f64, out: &mut String) {
    debug_assert!(n.is_finite(), "JSON cannot represent {n}");
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so any byte run is valid UTF-8.
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("input slices are valid UTF-8"),
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut s)?;
                }
                Some(&b) => {
                    return Err(format!(
                        "unescaped control character 0x{b:02x} at byte {}",
                        self.pos
                    ))
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn escape(&mut self, s: &mut String) -> Result<(), String> {
        let Some(&b) = self.bytes.get(self.pos) else {
            return Err("unterminated escape".to_owned());
        };
        self.pos += 1;
        match b {
            b'"' => s.push('"'),
            b'\\' => s.push('\\'),
            b'/' => s.push('/'),
            b'b' => s.push('\u{8}'),
            b'f' => s.push('\u{c}'),
            b'n' => s.push('\n'),
            b'r' => s.push('\r'),
            b't' => s.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.bytes.get(self.pos) == Some(&b'\\')
                        && self.bytes.get(self.pos + 1) == Some(&b'u')
                    {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err("invalid low surrogate".to_owned());
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or("invalid surrogate pair")?
                    } else {
                        return Err("lone high surrogate".to_owned());
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err("lone low surrogate".to_owned());
                } else {
                    char::from_u32(hi).ok_or("invalid \\u escape")?
                };
                s.push(c);
            }
            other => {
                return Err(format!(
                    "invalid escape character {:?} at byte {}",
                    other as char,
                    self.pos - 1
                ))
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let text = std::str::from_utf8(slice).map_err(|_| "non-ASCII \\u escape")?;
        let code = u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape digits")?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("number {text:?} overflows at byte {start}"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        Json::parse(text).unwrap().dump()
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn roundtrips_compactly() {
        assert_eq!(
            roundtrip(r#"{ "id" : 7 , "cmd" : "stats" }"#),
            r#"{"id":7,"cmd":"stats"}"#
        );
        assert_eq!(roundtrip("[1,2.5,-3]"), "[1,2.5,-3]");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{e9}\u{1F600}"));
        // Dumping re-escapes the required characters only.
        assert_eq!(v.dump(), "\"a\\\"b\\\\c\\ndA\u{e9}\u{1F600}\"");
        assert_eq!(Json::Str("ctrl\u{1}".into()).dump(), "\"ctrl\\u0001\"");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"\\x\"",
            "\"\\ud800\"",
            "nan",
            "{\"a\":1}x",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn rejects_runaway_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn rejects_oversized_documents() {
        let huge = format!("\"{}\"", "x".repeat(MAX_DOCUMENT_BYTES + 1));
        assert!(Json::parse(&huge).unwrap_err().contains("byte limit"));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(3.0).dump(), "3");
        assert_eq!(Json::Num(3.25).dump(), "3.25");
        assert_eq!(Json::Num(-0.0).dump(), "0");
        // Huge magnitudes fall back to f64 Display (long but valid JSON)
        // and round-trip exactly.
        assert_eq!(
            Json::parse(&Json::Num(1e300).dump()).unwrap(),
            Json::Num(1e300)
        );
    }
}
