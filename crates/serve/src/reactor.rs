//! The readiness event loop multiplexing socket connections onto the
//! warm worker [`Pool`].
//!
//! The socket transports used to run one reader thread and one writer
//! thread per connection with blocking I/O — a few thousand idle or
//! slow clients exhaust OS threads long before the CPU is busy. This
//! module replaces that front-end on Unix with a single thread driving
//! `poll(2)` (via a tiny `extern "C"` wrapper, no external crates) over
//! the listener, a cross-thread waker and every live connection, all
//! nonblocking:
//!
//! ```text
//!            accept            readable               completions
//!   listener ──────► Connection ───────► FrameDecoder ──┐
//!                        ▲                               │ dispatch_line
//!      waker ◄── workers │ writable                      ▼
//!        │               │◄──────── wbuf ◄── pack ◄── worker Pool
//!        └── poll(2) ────┴── timers (idle/progress, drain, dribble)
//! ```
//!
//! Each [`Connection`] is a small state machine — reading frames,
//! waiting on queued/executing requests, writing buffered responses,
//! draining — with bounded read and write buffers, so a stalled client
//! costs one buffer, never a thread. Frames are reassembled across
//! arbitrary chunk boundaries by [`FrameDecoder`]; accepted lines go
//! through [`Pool::dispatch_line`] exactly like the thread-per-session
//! path (same admission control, deadlines, pinning), and completions
//! come back over an [`Reply::Reactor`] channel whose wake callback
//! pokes a nonblocking socketpair so `poll` returns immediately.
//!
//! Backpressure is per connection: past [`PIPELINE_MAX`] dispatched-
//! but-unanswered requests or a [`WBUF_HIGH`] write backlog the loop
//! simply stops polling that connection for readability. `--io-timeout`
//! is enforced here as an idle/progress timer; `--max-connections`
//! caps the live set (excess clients wait in the OS accept backlog);
//! a raised shutdown flag drains every connection under the pool's
//! drain watchdog. The connection-level chaos knobs (`rst`, `dribble`,
//! `halfopen`) are applied at pack/write/accept time respectively.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::pool::{Dispatch, Pool, Reply, ServeOptions};
use crate::protocol::{Frame, FrameDecoder};

/// The poll tick: upper bound on how long flag changes (shutdown,
/// drain) and dribble pacing wait for the loop to notice them.
const TICK: Duration = Duration::from_millis(25);

/// Per-connection cap on dispatched-but-unanswered requests; past it
/// the connection is not polled for readability until answers flush.
const PIPELINE_MAX: usize = 128;

/// Per-connection write-backlog bound (bytes) past which reads pause:
/// a client that never drains responses stops being read.
const WBUF_HIGH: usize = 256 * 1024;

/// Per-connection, per-tick read budget (bytes), so one firehose
/// client cannot monopolise the loop.
const READ_BURST: usize = 256 * 1024;

/// Grace beyond the drain deadline before lingering connections are
/// force-closed on shutdown (covers the watchdog's own poll interval
/// and the final response flush).
const DRAIN_GRACE: Duration = Duration::from_secs(2);

// ---------------------------------------------------------------------
// poll(2) FFI — the only platform call this loop needs.

#[repr(C)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

#[cfg(target_os = "linux")]
type Nfds = std::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type Nfds = std::ffi::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: Nfds, timeout: std::ffi::c_int) -> std::ffi::c_int;
}

/// Waits until a registered fd is ready or `timeout` passes. A signal
/// interrupting the wait reports zero ready fds so the caller re-checks
/// its flags — the loop's next tick re-polls anyway.
fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    let millis = timeout.as_millis().min(i32::MAX as u128) as std::ffi::c_int;
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, millis) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

// ---------------------------------------------------------------------
// Listener / stream: TCP and Unix behind one nonblocking face.

/// The socket listener the loop accepts from.
pub(crate) enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l) => l.as_raw_fd(),
        }
    }

    /// One nonblocking accept attempt: `None` when no client is
    /// waiting, the accepted stream already set nonblocking otherwise.
    fn accept(&self) -> io::Result<Option<Stream>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(true)?;
                    Ok(Some(Stream::Tcp(s)))
                }
                Err(e) if retriable_accept(&e) => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(true)?;
                    Ok(Some(Stream::Unix(s)))
                }
                Err(e) if retriable_accept(&e) => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

/// Accept errors that mean "try again later", not "listener is broken"
/// (the client may have already reset the half-accepted connection).
fn retriable_accept(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionReset
    )
}

/// One accepted nonblocking socket.
enum Stream {
    Tcp(std::net::TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
}

// ---------------------------------------------------------------------
// Waker: workers poke the loop through a nonblocking socketpair.

/// Cross-thread wake-up: a completion callback writes one byte into
/// the pair's send half, which the loop polls for readability. A full
/// pipe means a wake is already pending — the write is dropped.
struct Waker {
    rx: UnixStream,
    tx: Arc<UnixStream>,
}

impl Waker {
    fn new() -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker {
            rx,
            tx: Arc::new(tx),
        })
    }

    /// The callback handed to [`Reply::Reactor`] senders.
    fn wake_fn(&self) -> Arc<dyn Fn() + Send + Sync> {
        let tx = Arc::clone(&self.tx);
        Arc::new(move || {
            let _ = io::Write::write(&mut &*tx, &[1]);
        })
    }

    /// Swallows every pending wake byte.
    fn drain(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.rx.read(&mut buf), Ok(n) if n > 0) {}
    }
}

// ---------------------------------------------------------------------
// Per-connection state machine.

/// One multiplexed connection. At any moment it is reading frames,
/// waiting on dispatched requests, writing buffered responses, or
/// draining (flushing what is owed, accepting nothing new) — never
/// holding a thread.
struct Connection {
    stream: Stream,
    conn: u64,
    /// Where this connection's completions come back.
    reply: Reply,
    /// Reassembles request frames across arbitrary read chunks.
    decoder: FrameDecoder,
    /// Arrival order of the next accepted request.
    next_seq: u64,
    /// Completions not yet packable in order, by sequence number.
    ready: BTreeMap<u64, String>,
    /// The sequence number the next packed response must carry.
    next_flush: u64,
    /// Requests dispatched (or rejected into `ready`) but not packed.
    outstanding: usize,
    /// Packed response bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// How far into `wbuf` the socket has accepted.
    wpos: usize,
    /// Total bytes ever written, for the `rst` chaos threshold.
    written: usize,
    /// Draining: no more reads; close once owed responses flush.
    draining: bool,
    /// The idle/progress timeout already fired once (counted); the
    /// second firing force-closes even with responses still owed.
    timed_out: bool,
    /// Last moment bytes moved in either direction.
    last_progress: Instant,
    /// Chaos: never read this connection.
    halfopen: bool,
    /// Chaos: write one byte per `dribble_ms` until the buffer drains.
    dribbling: bool,
    /// Earliest moment the next dribbled byte may go out.
    next_dribble: Instant,
    /// Chaos: hard-close once `written` reaches this.
    rst_at: Option<usize>,
}

impl Connection {
    fn new(stream: Stream, conn: u64, reply: Reply, cap: usize, halfopen: bool) -> Self {
        Connection {
            stream,
            conn,
            reply,
            decoder: FrameDecoder::new(cap),
            next_seq: 0,
            ready: BTreeMap::new(),
            next_flush: 0,
            outstanding: 0,
            wbuf: Vec::new(),
            wpos: 0,
            written: 0,
            draining: false,
            timed_out: false,
            last_progress: Instant::now(),
            halfopen,
            dribbling: false,
            next_dribble: Instant::now(),
            rst_at: None,
        }
    }

    /// Bytes packed but not yet accepted by the socket.
    fn owed(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Should the loop poll this connection for readability?
    fn wants_read(&self) -> bool {
        !self.halfopen
            && !self.draining
            && self.outstanding < PIPELINE_MAX
            && self.owed() <= WBUF_HIGH
    }

    /// Should the loop poll this connection for writability?
    fn wants_write(&self, now: Instant) -> bool {
        self.owed() > 0 && (!self.dribbling || now >= self.next_dribble)
    }

    /// Everything owed has been answered and flushed.
    fn flushed(&self) -> bool {
        self.outstanding == 0 && self.owed() == 0
    }

    /// Routes one decoded frame: request lines through the pool's
    /// shared dispatch (admission control, deadlines, pinning),
    /// oversized frames straight to a `request_too_large` answer.
    fn dispatch_frame(&mut self, frame: Frame, pool: &Pool) {
        match frame {
            Frame::Line(line) => {
                match pool.dispatch_line(self.conn, self.next_seq, &line, &self.reply) {
                    Dispatch::Skipped => {}
                    Dispatch::Rejected(response) => {
                        self.ready.insert(self.next_seq, response);
                        self.next_seq += 1;
                        self.outstanding += 1;
                    }
                    Dispatch::Submitted => {
                        self.next_seq += 1;
                        self.outstanding += 1;
                    }
                }
            }
            Frame::Oversized => {
                let response = pool.reject_oversized();
                self.ready.insert(self.next_seq, response);
                self.next_seq += 1;
                self.outstanding += 1;
            }
        }
    }

    /// Reads as much as backpressure and the per-tick budget allow,
    /// decoding and dispatching complete frames. Returns `false` when
    /// the connection must be closed immediately (I/O error, injected
    /// read fault).
    fn handle_read(&mut self, pool: &Pool, rbuf: &mut [u8], frames: &mut Vec<Frame>) -> bool {
        if self.halfopen {
            // Chaos-parked: bytes are consumed and discarded (nothing
            // is ever answered), but a vanished peer is still noticed
            // and reaped instead of leaking the connection.
            loop {
                match self.stream.read(rbuf) {
                    Ok(0) => return false,
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            }
        }
        let mut budget = READ_BURST;
        loop {
            if !self.wants_read() || budget == 0 {
                return true;
            }
            if pool.chaos().fail_read() {
                return false;
            }
            match self.stream.read(rbuf) {
                Ok(0) => {
                    // EOF: the client is done sending. Flush a final
                    // unterminated frame, answer what is owed, close.
                    if let Some(frame) = self.decoder.finish() {
                        self.dispatch_frame(frame, pool);
                    }
                    self.draining = true;
                    return true;
                }
                Ok(n) => {
                    self.last_progress = Instant::now();
                    budget = budget.saturating_sub(n);
                    frames.clear();
                    self.decoder.feed_into(&rbuf[..n], frames);
                    for frame in frames.drain(..) {
                        self.dispatch_frame(frame, pool);
                    }
                    if n < rbuf.len() {
                        return true; // socket very likely drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }

    /// Packs every response the order now allows into the write
    /// buffer, applying the response-side chaos points exactly like the
    /// thread-per-session writer would.
    fn pack_ready(&mut self, pool: &Pool) {
        while let Some(mut line) = self.ready.remove(&self.next_flush) {
            self.next_flush += 1;
            self.outstanding -= 1;
            pool.chaos().garble(&mut line);
            if pool.chaos().rst() {
                // Abrupt close halfway through this response's bytes.
                self.rst_at = Some(self.written + self.owed() + line.len() / 2);
            }
            if pool.chaos().dribble() {
                self.dribbling = true;
                self.next_dribble = Instant::now();
            }
            self.wbuf.extend_from_slice(line.as_bytes());
            self.wbuf.push(b'\n');
        }
    }

    /// Writes as much of the buffer as the socket (and the dribble
    /// pacing / rst threshold) accepts. Returns `false` when the
    /// connection must be closed immediately.
    fn handle_write(&mut self, dribble_ms: u64) -> bool {
        loop {
            if self.owed() == 0 {
                self.wbuf.clear();
                self.wpos = 0;
                self.dribbling = false;
                return true;
            }
            let now = Instant::now();
            let mut end = self.wbuf.len();
            if self.dribbling {
                if now < self.next_dribble {
                    return true; // pacing: the poll timeout re-arms us
                }
                end = end.min(self.wpos + 1);
            }
            if let Some(rst) = self.rst_at {
                if self.written >= rst {
                    return false; // injected mid-response reset
                }
                end = end.min(self.wpos + (rst - self.written));
            }
            match self.stream.write(&self.wbuf[self.wpos..end]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.wpos += n;
                    self.written += n;
                    self.last_progress = now;
                    if self.dribbling {
                        self.next_dribble = now + Duration::from_millis(dribble_ms.max(1));
                        return true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }
}

// ---------------------------------------------------------------------
// The loop itself.

/// Runs the readiness event loop over `listener` until the accept
/// budget is exhausted or `shutdown` is raised, and every accepted
/// connection has closed. `accept_budget` preserves the socket
/// transports' historical contract (`None` = accept forever); the
/// *concurrency* cap is `opts.max_connections`.
///
/// # Errors
///
/// Returns listener/poll-level I/O errors; per-connection failures
/// close that connection and never stop the loop.
pub(crate) fn run(
    listener: &Listener,
    pool: &Pool,
    opts: &ServeOptions,
    shutdown: Option<&AtomicBool>,
    accept_budget: Option<u64>,
) -> io::Result<()> {
    let mut waker = Waker::new()?;
    let wake = waker.wake_fn();
    let (done_tx, done_rx) = mpsc::channel::<(u64, u64, String)>();
    let dribble_ms = pool.chaos().config().dribble_ms;

    let mut conns: HashMap<u64, Connection> = HashMap::new();
    let mut accepted = 0u64;
    let mut drain_started = false;
    let mut force_close_at: Option<Instant> = None;
    let mut pollfds: Vec<PollFd> = Vec::new();
    let mut keys: Vec<u64> = Vec::new();
    let mut to_close: Vec<u64> = Vec::new();
    let mut rbuf = vec![0u8; 16 * 1024];
    let mut frames: Vec<Frame> = Vec::new();

    let result = loop {
        let shutting_down = shutdown.is_some_and(|flag| flag.load(Ordering::SeqCst));
        if shutting_down && !drain_started {
            // Stop reading everywhere, give in-flight work the drain
            // deadline, flush what is owed, then leave.
            drain_started = true;
            for c in conns.values_mut() {
                c.draining = true;
            }
            pool.arm_drain_watchdog();
            force_close_at = Some(Instant::now() + opts.drain_deadline + DRAIN_GRACE);
        }
        let budget_left = accept_budget.is_none_or(|max| accepted < max);
        if conns.is_empty() && (shutting_down || !budget_left) {
            break Ok(());
        }
        let accepting = budget_left
            && !shutting_down
            && opts.max_connections.is_none_or(|cap| conns.len() < cap);

        // Build the poll set: waker, listener (while accepting), every
        // connection (registered even when paused, so errors/hangups
        // on a backpressured connection are still seen).
        pollfds.clear();
        keys.clear();
        pollfds.push(PollFd {
            fd: waker.rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        let listener_slot = if accepting {
            pollfds.push(PollFd {
                fd: listener.fd(),
                events: POLLIN,
                revents: 0,
            });
            Some(1)
        } else {
            None
        };
        let base = pollfds.len();
        let now = Instant::now();
        let mut timeout = TICK;
        for (&key, c) in &conns {
            let mut events = 0;
            if c.wants_read() || c.halfopen {
                // Half-open connections are polled readable too — not
                // to serve them, but so a disconnecting peer is reaped.
                events |= POLLIN;
            }
            if c.wants_write(now) {
                events |= POLLOUT;
            } else if c.dribbling && c.owed() > 0 {
                // Wake when the next dribbled byte is due, not a full
                // tick later.
                timeout = timeout.min(c.next_dribble.saturating_duration_since(now));
            }
            pollfds.push(PollFd {
                fd: c.stream.fd(),
                events,
                revents: 0,
            });
            keys.push(key);
        }

        if let Err(e) = poll_fds(&mut pollfds, timeout) {
            break Err(e);
        }
        waker.drain();

        // Route completions into their connections, then pack every
        // response arrival order now allows.
        while let Ok((conn, seq, line)) = done_rx.try_recv() {
            if let Some(c) = conns.get_mut(&conn) {
                c.ready.insert(seq, line);
            }
        }
        for c in conns.values_mut() {
            c.pack_ready(pool);
        }

        // Accept burst: everything queued in the backlog, up to the
        // budget and the concurrency cap.
        if let Some(slot) = listener_slot {
            if pollfds[slot].revents != 0 {
                loop {
                    if accept_budget.is_some_and(|max| accepted >= max)
                        || opts.max_connections.is_some_and(|cap| conns.len() >= cap)
                    {
                        break;
                    }
                    match listener.accept() {
                        Ok(Some(stream)) => {
                            accepted += 1;
                            let conn = pool.alloc_conn();
                            pool.note_conn_open();
                            let reply = Reply::Reactor {
                                conn,
                                tx: done_tx.clone(),
                                wake: Arc::clone(&wake),
                            };
                            let halfopen = pool.chaos().halfopen();
                            conns.insert(
                                conn,
                                Connection::new(
                                    stream,
                                    conn,
                                    reply,
                                    pool.max_request_bytes(),
                                    halfopen,
                                ),
                            );
                        }
                        Ok(None) => break,
                        Err(e) => {
                            for (_, c) in conns.drain() {
                                pool.sweep_conn(c.conn);
                                pool.note_conn_closed();
                            }
                            return Err(e);
                        }
                    }
                }
            }
        }

        // Per-connection I/O and timers.
        to_close.clear();
        let force_close = force_close_at.is_some_and(|at| Instant::now() >= at);
        for (i, &key) in keys.iter().enumerate() {
            let revents = pollfds[base + i].revents;
            let c = conns.get_mut(&key).expect("keys mirror conns");
            let mut alive = true;
            if revents & POLLIN != 0 {
                alive = c.handle_read(pool, &mut rbuf, &mut frames);
                c.pack_ready(pool);
            }
            if alive && (revents & POLLOUT != 0 || (c.dribbling && c.owed() > 0)) {
                alive = c.handle_write(dribble_ms);
            }
            if alive && revents & (POLLERR | POLLNVAL) != 0 {
                alive = false;
            }
            if alive && revents & POLLHUP != 0 && !c.wants_read() && c.owed() == 0 {
                // The peer hung up on a connection we are not reading
                // (half-open, backpressured or draining) and nothing is
                // owed: reap it now instead of waiting for a timeout.
                alive = false;
            }
            if alive {
                if let Some(limit) = opts.io_timeout {
                    let idle = Instant::now().duration_since(c.last_progress);
                    if idle >= limit {
                        if c.timed_out {
                            alive = false; // grace spent: force close
                        } else {
                            // First firing: count it once, stop
                            // reading, grant one more interval to
                            // flush whatever is still owed.
                            c.timed_out = true;
                            c.draining = true;
                            pool.note_conn_timeout();
                            c.last_progress = Instant::now();
                        }
                    }
                }
            }
            if alive && c.draining && c.flushed() {
                alive = false; // graceful close: everything owed went out
            }
            if alive && force_close {
                alive = false;
            }
            if !alive {
                to_close.push(key);
            }
        }
        for key in &to_close {
            if let Some(c) = conns.remove(key) {
                // Fire-and-forget session sweep: pinned lanes are FIFO,
                // so it lands after every request this connection
                // queued; its --max-sessions slots free right after.
                pool.sweep_conn(c.conn);
                pool.note_conn_closed();
                drop(c); // closes the socket
            }
        }
    };
    for (_, c) in conns.drain() {
        pool.sweep_conn(c.conn);
        pool.note_conn_closed();
    }
    result
}
