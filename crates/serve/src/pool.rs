//! The persistent warm-pool request loop.
//!
//! [`serve`] reads newline-delimited JSON requests from any `BufRead`,
//! executes them on a fixed pool of worker threads — each holding one
//! warm [`Workspace`] (arena + pre-sized queues) for its whole lifetime
//! — and streams responses back in request order. Request failures
//! (unreadable files, parse errors, even panicking handlers) are
//! isolated to their response line; the pool keeps serving.
//!
//! The pool is sized by the same [`BatchRunner::sized`] rule as every
//! batch API in the workspace, and workers claim requests dynamically,
//! so a slow analysis on one worker never idles the others. A dedicated
//! writer thread reorders completions back into request order (a
//! `BTreeMap` keyed by arrival sequence) and flushes after every
//! response, so a client pipelining requests sees each answer as soon as
//! ordering allows.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};

use std::time::Duration;

use tsg_sim::BatchRunner;

use crate::ops::{Source, Workspace};
use crate::protocol::{self, Command, Request};

/// How often the session loop re-checks the shutdown flag while waiting
/// for the next request line.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// Configuration of a serve session.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeOptions {
    /// Worker threads (`None` = all cores), resolved through
    /// [`BatchRunner::sized`].
    pub threads: Option<usize>,
}

/// Counters of a finished serve session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered with `ok: true`.
    pub served: u64,
    /// Requests answered with `ok: false`.
    pub failed: u64,
    /// Workers the pool ran.
    pub threads: usize,
}

/// One accepted request line, tagged with its arrival order.
struct Job {
    seq: u64,
    line: String,
}

/// Runs the request loop until `input` reaches EOF (or `shutdown` is
/// raised), streaming one response line per request to `output` in
/// request order.
///
/// Blank lines and `#` comment lines are skipped, so request scripts
/// can be annotated. Input is drained on a dedicated thread, so a
/// raised `shutdown` flag takes effect within one poll interval even
/// while the session is blocked waiting for the next request line
/// (`read` restarts after a signal under glibc's `SA_RESTART`, so
/// checking the flag only between reads would leave an idle session
/// uninterruptible): accepted requests finish, responses flush, and the
/// loop exits cleanly.
///
/// # Errors
///
/// Returns I/O errors of the input or output stream. Request-level
/// failures are *not* errors: they become `ok: false` response lines
/// and count into [`ServeStats::failed`].
pub fn serve<R, W>(
    input: R,
    mut output: W,
    opts: &ServeOptions,
    shutdown: Option<&AtomicBool>,
) -> io::Result<ServeStats>
where
    R: BufRead + Send + 'static,
    W: Write + Send,
{
    let threads = BatchRunner::sized(opts.threads).threads();
    let served = AtomicU64::new(0);
    let failed = AtomicU64::new(0);

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Mutex::new(job_rx);
    let (res_tx, res_rx) = mpsc::channel::<(u64, String)>();

    let mut read_err: Option<io::Error> = None;
    let write_result: io::Result<()> = std::thread::scope(|scope| {
        for _ in 0..threads {
            let res_tx = res_tx.clone();
            let (job_rx, served, failed) = (&job_rx, &served, &failed);
            scope.spawn(move || {
                // The warm state: lives as long as the pool, reused by
                // every request this worker claims.
                let mut workspace = Workspace::new();
                loop {
                    // Holding the lock across `recv` parks one idle
                    // worker at a time; the others queue on the mutex.
                    // Dispatch is serialized, execution is parallel.
                    let job = { job_rx.lock().expect("reader never panics").recv() };
                    let Ok(job) = job else {
                        break; // input closed and queue drained
                    };
                    let response = handle(&job.line, &mut workspace, served, failed, threads);
                    if res_tx.send((job.seq, response)).is_err() {
                        break; // writer gone (output error): stop early
                    }
                }
            });
        }
        drop(res_tx);

        let writer = scope.spawn(move || -> io::Result<()> {
            let mut pending: BTreeMap<u64, String> = BTreeMap::new();
            let mut next = 0u64;
            for (seq, response) in res_rx {
                pending.insert(seq, response);
                // Flush every response the order now allows.
                while let Some(ready) = pending.remove(&next) {
                    output.write_all(ready.as_bytes())?;
                    output.write_all(b"\n")?;
                    output.flush()?;
                    next += 1;
                }
            }
            Ok(())
        });

        // Input drains on a detached thread (it may sit in a blocking
        // `read` indefinitely); the session loop on the caller's thread
        // polls it alongside the shutdown flag, tags accepted lines with
        // their arrival order, and feeds the pool. After a shutdown the
        // detached reader unblocks at its next line (or EOF/process
        // exit) and finds the channel closed.
        let (line_tx, line_rx) = mpsc::channel::<io::Result<String>>();
        std::thread::spawn(move || {
            let mut input = input;
            let mut line = String::new();
            loop {
                line.clear();
                let result = match input.read_line(&mut line) {
                    Ok(0) => break, // EOF
                    Ok(_) => Ok(std::mem::take(&mut line)),
                    Err(e) => Err(e),
                };
                let failed = result.is_err();
                if line_tx.send(result).is_err() || failed {
                    break;
                }
            }
        });
        let mut seq = 0u64;
        loop {
            if shutdown.is_some_and(|flag| flag.load(Ordering::SeqCst)) {
                break;
            }
            match line_rx.recv_timeout(SHUTDOWN_POLL) {
                Ok(Ok(line)) => {
                    let trimmed = line.trim();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        continue;
                    }
                    let job = Job {
                        seq,
                        line: trimmed.to_owned(),
                    };
                    if job_tx.send(job).is_err() {
                        break; // pool gone (only happens after an output error)
                    }
                    seq += 1;
                }
                Ok(Err(e)) => {
                    read_err = Some(e);
                    break;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
            }
        }
        // Closing the job channel drains the pool: workers finish what
        // was accepted, then exit; the writer follows once the last
        // result is flushed.
        drop(job_tx);
        writer.join().expect("writer thread never panics")
    });

    write_result?;
    if let Some(e) = read_err {
        return Err(e);
    }
    Ok(ServeStats {
        served: served.load(Ordering::SeqCst),
        failed: failed.load(Ordering::SeqCst),
        threads,
    })
}

/// Executes one request line against a worker's warm workspace and
/// renders its response. Never panics: handler panics are caught and
/// reported as that request's failure.
fn handle(
    line: &str,
    workspace: &mut Workspace,
    served: &AtomicU64,
    failed: &AtomicU64,
    threads: usize,
) -> String {
    let Request { id, cmd } = match protocol::parse_request(line) {
        Ok(req) => req,
        Err((id, msg)) => {
            failed.fetch_add(1, Ordering::SeqCst);
            return protocol::err_response(&id, &msg);
        }
    };
    match cmd {
        Command::Stats => {
            // Snapshot first so the stats request does not count itself.
            let response = protocol::stats_response(
                &id,
                served.load(Ordering::SeqCst),
                failed.load(Ordering::SeqCst),
                threads,
            );
            served.fetch_add(1, Ordering::SeqCst);
            response
        }
        Command::Analyze { source, opts } => match isolate(|| workspace.analyze(&source, &opts)) {
            Ok(output) => {
                served.fetch_add(1, Ordering::SeqCst);
                protocol::ok_response(&id, &output)
            }
            Err(e) => {
                failed.fetch_add(1, Ordering::SeqCst);
                protocol::err_response(&id, &e)
            }
        },
        Command::Sim { source, opts } => match isolate(|| workspace.simulate(&source, &opts)) {
            Ok(output) => {
                served.fetch_add(1, Ordering::SeqCst);
                protocol::ok_response(&id, &output)
            }
            Err(e) => {
                failed.fetch_add(1, Ordering::SeqCst);
                protocol::err_response(&id, &e)
            }
        },
        Command::Batch { paths, opts } => {
            let results: Vec<Result<String, String>> = paths
                .iter()
                .map(|path| isolate(|| workspace.analyze(&Source::Path(path.clone()), &opts)))
                .collect();
            // A batch is one request: it always yields an ok response
            // with per-item results inline.
            served.fetch_add(1, Ordering::SeqCst);
            protocol::batch_response(&id, &results)
        }
    }
}

/// Runs a request handler, converting a panic into a per-request error
/// so one poisoned input cannot take the worker (or the pool) down.
fn isolate<F>(f: F) -> Result<String, String>
where
    F: FnOnce() -> Result<String, String>,
{
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            Err(format!("internal error: request handler panicked: {msg}"))
        }
    }
}
