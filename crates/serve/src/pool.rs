//! The persistent warm-pool request loop.
//!
//! A [`Pool`] owns a fixed set of worker threads — each holding one warm
//! [`Workspace`] (arena + pre-sized queues + open sessions) for its
//! whole lifetime — and any number of protocol *sessions* can feed it
//! concurrently: stdin/stdout runs one ([`serve`]), the socket
//! transports run one per accepted connection over the same shared pool
//! ([`serve_tcp`](crate::serve_tcp)). Request failures (unreadable
//! files, parse errors, even panicking handlers) are isolated to their
//! response line; the pool keeps serving.
//!
//! Two dispatch lanes feed the workers:
//!
//! * the **shared lane** — ordinary requests, claimed dynamically, so a
//!   slow analysis on one worker never idles the others;
//! * the **pinned lanes** — one FIFO per worker. Every request naming
//!   an incremental session (`session.open`/`edit`/`close`) is pinned
//!   to the worker `hash(connection, name)` selects, so a session's
//!   whole life executes in request order against one workspace's warm
//!   state — no cross-worker state handoff, no reordering of edits.
//!
//! Each protocol session has a dedicated writer thread that reorders
//! completions back into request order (a `BTreeMap` keyed by arrival
//! sequence) and flushes after every response, so a client pipelining
//! requests sees each answer as soon as ordering allows.
//!
//! # Hardening
//!
//! Every request carries a [`CancelToken`] built at arrival: its
//! deadline is the request's `deadline_ms` (or the pool's default), and
//! it belongs to the pool-wide *drain group*, so one flag flip cancels
//! everything queued and in flight. The compute kernels poll the token
//! cooperatively and abort with structured progress, which the worker
//! renders as a `deadline_exceeded`/`cancelled` coded response.
//!
//! Admission control bounds the dispatch queues: past `max_pending`, a
//! request is answered `overloaded` (with the depth and a retry hint)
//! without ever reaching a worker. Request lines are read under a byte
//! cap — an oversized line is skipped in bounded chunks and answered
//! `request_too_large`. Socket read/write timeouts surface here as a
//! clean disconnect counted in `timed_out_connections`, not an error.
//!
//! When a shutdown flag is raised, each session stops accepting, and a
//! detached watchdog gives in-flight work `drain_deadline` to finish
//! before cancelling the stragglers through the drain group.
//!
//! Workers run under supervision: a panic that escapes the per-request
//! isolation boundary (a chaos `kill`, a bug in the dispatch loop) is
//! caught, the in-flight request is answered with a structured
//! `worker_lost` error, the dead workspace's session slots are
//! released, and the worker respawns with a fresh [`Workspace`] — the
//! pool self-heals instead of shrinking.
//!
//! On Unix the socket transports do not run one `serve_session` per
//! connection: the [`reactor`](crate::reactor) readiness event loop
//! multiplexes every connection onto this pool through
//! [`Pool::dispatch_line`] and [`Reply::Reactor`], so a stalled client
//! costs one buffer, never a thread.
//!
//! The [`chaos`](crate::chaos) fault points (worker panics and kills,
//! injected delays, garbled response lines, refused reads, connection
//! resets, dribbled writes) are threaded through this module and the
//! reactor so soak tests can prove all of the above under fire.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tsg_core::analysis::wide::KernelBackend;
use tsg_sim::{BatchRunner, CancelKind, CancelToken};

use crate::chaos::{Chaos, ChaosConfig};
use crate::json::Json;
use crate::ops::{AnalyzeOptions, Objective, OpError, Source, Workspace};
use crate::protocol::{self, Command, Request};

/// How often the session loop re-checks the shutdown flag while waiting
/// for the next request line.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// How often the drain watchdog re-checks for quiescence.
const DRAIN_POLL: Duration = Duration::from_millis(25);

/// Configuration of a serve session.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Worker threads (`None` = all cores), resolved through
    /// [`BatchRunner::sized`].
    pub threads: Option<usize>,
    /// Pool-wide cap on concurrently open incremental sessions (`None`
    /// = unbounded). Each open session pins O(b²·n) warm matrix cells to
    /// a worker for its whole life, so a long-lived service should
    /// bound them: a `session.open` beyond the cap is answered with a
    /// structured `ok: false` error instead of growing worker memory,
    /// and the slot frees on `session.close` or disconnect.
    pub max_sessions: Option<u64>,
    /// Wide-kernel backend every worker workspace is pinned to
    /// (`Auto` = the widest the CPU supports). Resolved leniently at
    /// pool spawn; the CLI validates an explicit `--kernel` strictly
    /// before it gets here.
    pub kernel: KernelBackend,
    /// Pool-wide cap on queued-but-unclaimed requests (`None` =
    /// unbounded). Past it, new requests are answered `overloaded`
    /// without reaching a worker (`--max-pending`).
    pub max_pending: Option<usize>,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms` (`None` = no default; `--default-deadline`).
    pub default_deadline: Option<Duration>,
    /// How long a graceful shutdown lets in-flight work finish before
    /// cancelling the stragglers (`--drain-deadline`).
    pub drain_deadline: Duration,
    /// Socket read/write timeout applied by the TCP/Unix transports so
    /// a stalled client cannot hold a session forever (`None` = never
    /// time out; `--io-timeout`).
    pub io_timeout: Option<Duration>,
    /// Cap on one request line's byte length; longer lines are skipped
    /// and answered `request_too_large` (`--max-request-bytes`).
    pub max_request_bytes: usize,
    /// Cap on concurrently open multiplexed connections (`None` =
    /// unbounded). At the cap the event loop stops polling the
    /// listener, so further clients wait in the OS accept backlog until
    /// a slot frees (`--max-connections`).
    pub max_connections: Option<usize>,
    /// Fault-injection config (builder baseline; the `TSG_CHAOS`
    /// environment variable overrides it at pool spawn).
    pub chaos: ChaosConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: None,
            max_sessions: None,
            kernel: KernelBackend::Auto,
            max_pending: None,
            default_deadline: None,
            drain_deadline: Duration::from_secs(5),
            io_timeout: None,
            max_request_bytes: 1024 * 1024,
            max_connections: None,
            chaos: ChaosConfig::default(),
        }
    }
}

/// Counters of a pool (or a finished serve run). Every request ends in
/// exactly one of `served` or `failed`; the more specific counters
/// break `failed` (and connection endings) down by cause.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered with `ok: true`.
    pub served: u64,
    /// Requests answered with `ok: false`.
    pub failed: u64,
    /// Workers the pool ran.
    pub threads: usize,
    /// Requests currently queued but not yet claimed by a worker.
    pub queue_depth: usize,
    /// Requests answered `overloaded` at admission.
    pub rejected_overloaded: u64,
    /// Requests whose deadline fired mid-compute.
    pub deadline_exceeded: u64,
    /// Requests cancelled explicitly (drain or client cancel).
    pub cancelled: u64,
    /// Connections ended by a socket read/write timeout.
    pub timed_out_connections: u64,
    /// Requests still queued or in flight when a drain deadline
    /// cancelled them.
    pub drained_in_flight: u64,
    /// Requests answered `worker_lost` because the worker executing
    /// them died outside the per-request isolation boundary.
    pub worker_lost: u64,
    /// Workers respawned with a fresh workspace after a death.
    pub worker_respawns: u64,
    /// Connections (protocol sessions) open right now.
    pub active_connections: usize,
    /// Requests that carried a scenario sweep (corners, samples, or a
    /// `tau-p95` explore objective).
    pub scenario_requests: u64,
    /// Scenario lanes those requests asked for, summed.
    pub scenario_lanes: u64,
}

/// What a queued job carries.
enum JobPayload {
    /// One request line, already parsed by the dispatching session.
    Request {
        /// The protocol session (connection) the request arrived on.
        conn: u64,
        /// The parse outcome; errors become `ok: false` responses.
        /// Boxed: a parsed request dwarfs the housekeeping variant.
        parsed: Box<Result<Request, (Json, String)>>,
        /// The request's cancel token — deadline armed at arrival, in
        /// the pool's drain group.
        token: CancelToken,
    },
    /// Housekeeping broadcast: a connection ended, drop its sessions.
    CloseSessions {
        /// The ended connection.
        conn: u64,
    },
}

/// Where a finished job's response line goes back to.
#[derive(Clone)]
pub(crate) enum Reply {
    /// A thread-per-session writer: `(seq, line)`, reordered by the
    /// session's dedicated writer thread.
    Session(mpsc::Sender<(u64, String)>),
    /// The readiness event loop: `(conn, seq, line)` routed back to the
    /// connection's state machine, plus a wake callback so the loop's
    /// `poll` returns and packs the response immediately.
    #[cfg_attr(not(unix), allow(dead_code))]
    Reactor {
        conn: u64,
        tx: mpsc::Sender<(u64, u64, String)>,
        wake: Arc<dyn Fn() + Send + Sync>,
    },
}

impl Reply {
    /// Delivers one response line; a dead receiver discards it.
    fn send(&self, seq: u64, line: String) {
        match self {
            Reply::Session(tx) => {
                let _ = tx.send((seq, line));
            }
            Reply::Reactor { conn, tx, wake } => {
                if tx.send((*conn, seq, line)).is_ok() {
                    wake();
                }
            }
        }
    }
}

/// What supervision needs to answer a request whose worker died
/// executing it: the request id and where the `worker_lost` response
/// goes.
struct LostJob {
    seq: u64,
    id: Json,
    reply: Option<Reply>,
}

/// Outcome of [`Pool::dispatch_line`].
pub(crate) enum Dispatch {
    /// Blank or comment line: no request, no sequence number consumed.
    Skipped,
    /// Answered at admission without reaching a worker; the response
    /// line is returned here, already counted into the stats.
    Rejected(String),
    /// Accepted and queued; the response will arrive on the reply.
    Submitted,
}

/// One queued unit of work, tagged with its per-connection arrival
/// order and where its response (if any) goes back.
struct Job {
    seq: u64,
    payload: JobPayload,
    reply: Option<Reply>,
}

/// The two dispatch lanes; see the module docs.
struct JobQueues {
    shared: VecDeque<Job>,
    pinned: Vec<VecDeque<Job>>,
    closed: bool,
}

/// State shared between the pool handle and its workers.
struct PoolShared {
    queues: Mutex<JobQueues>,
    available: Condvar,
    served: AtomicU64,
    failed: AtomicU64,
    threads: usize,
    next_conn: AtomicU64,
    /// Incremental sessions currently open across every worker.
    open_sessions: AtomicU64,
    /// Cap on `open_sessions` (`None` = unbounded).
    max_sessions: Option<u64>,
    /// The resolved backend every worker workspace runs on — reported
    /// by the `stats` op so deployments can audit the dispatch decision.
    kernel: KernelBackend,
    /// Request jobs queued but not yet claimed by a worker.
    pending: AtomicU64,
    /// Request jobs a worker is executing right now.
    in_flight: AtomicU64,
    /// Cap on `pending` (`None` = unbounded).
    max_pending: Option<usize>,
    /// Deadline for requests without their own `deadline_ms`.
    default_deadline: Option<Duration>,
    /// Grace period a drain gives in-flight work.
    drain_deadline: Duration,
    /// Byte cap on one request line.
    max_request_bytes: usize,
    /// The drain group every request token joins: one flip cancels
    /// everything queued and in flight.
    drain: Arc<AtomicBool>,
    /// Fault-injection runtime.
    chaos: Chaos,
    /// Requests answered `overloaded` at admission.
    rejected_overloaded: AtomicU64,
    /// Requests whose deadline fired mid-compute.
    deadline_exceeded: AtomicU64,
    /// Requests cancelled explicitly.
    cancelled: AtomicU64,
    /// Connections ended by a socket timeout.
    timed_out_connections: AtomicU64,
    /// Requests cancelled by a drain deadline.
    drained_in_flight: AtomicU64,
    /// Requests answered `worker_lost` because their worker died.
    worker_lost: AtomicU64,
    /// Workers respawned after a death.
    worker_respawns: AtomicU64,
    /// Connections (protocol sessions) open right now.
    active_connections: AtomicU64,
    /// Per-worker: the request executing right now, stashed so
    /// supervision can answer it if the worker dies mid-request.
    current_jobs: Vec<Mutex<Option<LostJob>>>,
    /// Per-worker gauge of open incremental sessions, so a dead
    /// worker's share can be released from `open_sessions`.
    worker_sessions: Vec<AtomicU64>,
    /// Requests that carried a scenario sweep.
    scenario_requests: AtomicU64,
    /// Scenario lanes those requests asked for, summed.
    scenario_lanes: AtomicU64,
}

impl PoolShared {
    /// Charges one scenario-sweeping request of `lanes` lanes into the
    /// scenario counters (no-op for nominal-only requests).
    fn note_scenarios(&self, lanes: usize) {
        if lanes > 0 {
            self.scenario_requests.fetch_add(1, Ordering::SeqCst);
            self.scenario_lanes
                .fetch_add(lanes as u64, Ordering::SeqCst);
        }
    }
}

/// Scenario lanes an `analyze`/`batch` request's options ask for per
/// input (0 = nominal-only).
fn scenario_lanes_of(opts: &AnalyzeOptions) -> usize {
    if opts.corners.is_empty() {
        opts.samples
    } else {
        opts.corners.len()
    }
}

impl PoolShared {
    /// Cancels everything queued and in flight through the drain group.
    /// Idempotent: only the first call charges `drained_in_flight`.
    fn cancel_in_flight(&self) {
        if !self.drain.swap(true, Ordering::SeqCst) {
            let stragglers =
                self.in_flight.load(Ordering::SeqCst) + self.pending.load(Ordering::SeqCst);
            self.drained_in_flight
                .fetch_add(stragglers, Ordering::SeqCst);
        }
    }
}

/// Snapshot of a pool's counters.
fn stats_of(shared: &PoolShared) -> ServeStats {
    ServeStats {
        served: shared.served.load(Ordering::SeqCst),
        failed: shared.failed.load(Ordering::SeqCst),
        threads: shared.threads,
        queue_depth: shared.pending.load(Ordering::SeqCst) as usize,
        rejected_overloaded: shared.rejected_overloaded.load(Ordering::SeqCst),
        deadline_exceeded: shared.deadline_exceeded.load(Ordering::SeqCst),
        cancelled: shared.cancelled.load(Ordering::SeqCst),
        timed_out_connections: shared.timed_out_connections.load(Ordering::SeqCst),
        drained_in_flight: shared.drained_in_flight.load(Ordering::SeqCst),
        worker_lost: shared.worker_lost.load(Ordering::SeqCst),
        worker_respawns: shared.worker_respawns.load(Ordering::SeqCst),
        active_connections: shared.active_connections.load(Ordering::SeqCst) as usize,
        scenario_requests: shared.scenario_requests.load(Ordering::SeqCst),
        scenario_lanes: shared.scenario_lanes.load(Ordering::SeqCst),
    }
}

/// RAII release of one `active_connections` charge, so every exit path
/// of a protocol session balances the gauge.
struct ConnGuard<'a>(&'a PoolShared);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.active_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// True for the error kinds a socket read/write timeout surfaces as.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// What the reader thread hands the session loop per line.
enum ReadEvent {
    /// One request line (lossily decoded: invalid UTF-8 becomes a parse
    /// error response, not a dead connection).
    Line(String),
    /// A line longer than the byte cap, skipped without buffering it.
    Oversized,
    /// The connection read failed (or a chaos point refused it).
    Err(io::Error),
}

/// A persistent warm worker pool; see the module docs.
///
/// Dropping the pool closes the queues, drains what was accepted and
/// joins the workers.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool per `opts`: `opts.threads` workers (`None` = all
    /// cores, via [`BatchRunner::sized`]), each owning one warm
    /// [`Workspace`], with open incremental sessions capped pool-wide by
    /// `opts.max_sessions`.
    pub fn new(opts: &ServeOptions) -> Self {
        let threads = BatchRunner::sized(opts.threads).threads();
        let shared = Arc::new(PoolShared {
            queues: Mutex::new(JobQueues {
                shared: VecDeque::new(),
                pinned: (0..threads).map(|_| VecDeque::new()).collect(),
                closed: false,
            }),
            available: Condvar::new(),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            threads,
            next_conn: AtomicU64::new(0),
            open_sessions: AtomicU64::new(0),
            max_sessions: opts.max_sessions,
            kernel: opts.kernel.resolve_lenient(),
            pending: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            max_pending: opts.max_pending,
            default_deadline: opts.default_deadline,
            drain_deadline: opts.drain_deadline,
            max_request_bytes: opts.max_request_bytes,
            drain: Arc::new(AtomicBool::new(false)),
            chaos: Chaos::new(opts.chaos.from_env()),
            rejected_overloaded: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            timed_out_connections: AtomicU64::new(0),
            drained_in_flight: AtomicU64::new(0),
            worker_lost: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            current_jobs: (0..threads).map(|_| Mutex::new(None)).collect(),
            worker_sessions: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            scenario_requests: AtomicU64::new(0),
            scenario_lanes: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || supervise(&shared, index))
            })
            .collect();
        Pool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Pool-wide counters: requests completed so far across every
    /// protocol session this pool served.
    pub fn stats(&self) -> ServeStats {
        stats_of(&self.shared)
    }

    /// Cancels every queued and in-flight request through the drain
    /// group — what the drain watchdog fires when the drain deadline
    /// passes. Idempotent; the pool still serves new requests (their
    /// tokens fire immediately), so this is for shutdown paths.
    pub fn cancel_in_flight(&self) {
        self.shared.cancel_in_flight();
    }

    /// The worker every request naming session `name` on connection
    /// `conn` is pinned to (FNV-1a, stable within the process).
    fn pin_of(&self, conn: u64, name: &str) -> usize {
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ conn.wrapping_mul(FNV_PRIME);
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        (hash % self.shared.threads as u64) as usize
    }

    /// Enqueues a job on the shared lane or a worker's pinned lane.
    fn submit(&self, pin: Option<usize>, job: Job) {
        if matches!(job.payload, JobPayload::Request { .. }) {
            self.shared.pending.fetch_add(1, Ordering::SeqCst);
        }
        let mut queues = self
            .shared
            .queues
            .lock()
            .expect("pool mutex never poisoned");
        match pin {
            Some(worker) => queues.pinned[worker].push_back(job),
            None => queues.shared.push_back(job),
        }
        drop(queues);
        match pin {
            // Only the pinned worker can take it, and the condvar cannot
            // target a thread: wake everyone, the wrong ones re-sleep.
            Some(_) => self.shared.available.notify_all(),
            None => self.shared.available.notify_one(),
        }
    }

    /// Parses and dispatches one raw request line arriving on
    /// connection `conn`: skips blanks and comments, answers
    /// `overloaded` at admission past the pending cap, otherwise arms
    /// the cancel token and queues the job — pinned to a worker when it
    /// names an incremental session. Shared by the thread-per-session
    /// loop and the readiness event loop.
    pub(crate) fn dispatch_line(&self, conn: u64, seq: u64, line: &str, reply: &Reply) -> Dispatch {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Dispatch::Skipped;
        }
        let shared = &self.shared;
        let parsed = protocol::parse_request(trimmed);
        // Admission control: past the pending cap, answer `overloaded`
        // here — the job never reaches a worker, so a flooded pool
        // stays responsive.
        if let Some(cap) = shared.max_pending {
            let depth = shared.pending.load(Ordering::SeqCst) as usize;
            if depth >= cap {
                let id = match &parsed {
                    Ok(request) => request.id.clone(),
                    Err((id, _)) => id.clone(),
                };
                shared.rejected_overloaded.fetch_add(1, Ordering::SeqCst);
                shared.failed.fetch_add(1, Ordering::SeqCst);
                let retry_ms = 50 * (depth as u64 / shared.threads.max(1) as u64 + 1);
                return Dispatch::Rejected(protocol::overloaded_response(&id, depth, retry_ms));
            }
        }
        // The cancel token arms at arrival, so queue wait counts
        // against the deadline, and joins the drain group, so a drain
        // flip reaches queued work too.
        let deadline = parsed
            .as_ref()
            .ok()
            .and_then(|request| request.deadline)
            .or(shared.default_deadline);
        let token = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        }
        .in_group(&shared.drain);
        let pin = parsed
            .as_ref()
            .ok()
            .and_then(|request| request.cmd.session_name())
            .map(|name| self.pin_of(conn, name));
        self.submit(
            pin,
            Job {
                seq,
                payload: JobPayload::Request {
                    conn,
                    parsed: Box::new(parsed),
                    token,
                },
                reply: Some(reply.clone()),
            },
        );
        Dispatch::Submitted
    }

    /// Allocates a fresh connection id.
    pub(crate) fn alloc_conn(&self) -> u64 {
        self.shared.next_conn.fetch_add(1, Ordering::SeqCst)
    }

    /// Charges one open connection into `active_connections`.
    pub(crate) fn note_conn_open(&self) {
        self.shared
            .active_connections
            .fetch_add(1, Ordering::SeqCst);
    }

    /// Releases one open connection from `active_connections`.
    pub(crate) fn note_conn_closed(&self) {
        self.shared
            .active_connections
            .fetch_sub(1, Ordering::SeqCst);
    }

    /// Counts one connection ended by an idle/progress timeout.
    pub(crate) fn note_conn_timeout(&self) {
        self.shared
            .timed_out_connections
            .fetch_add(1, Ordering::SeqCst);
    }

    /// Counts and renders the response for one oversized request line.
    pub(crate) fn reject_oversized(&self) -> String {
        self.shared.failed.fetch_add(1, Ordering::SeqCst);
        protocol::too_large_response(self.shared.max_request_bytes)
    }

    /// Byte cap on one request line (`--max-request-bytes`).
    pub(crate) fn max_request_bytes(&self) -> usize {
        self.shared.max_request_bytes
    }

    /// The pool's fault-injection runtime.
    pub(crate) fn chaos(&self) -> &Chaos {
        &self.shared.chaos
    }

    /// Sweeps connection `conn`'s incremental sessions from every
    /// worker, fire-and-forget: the pinned lanes are FIFO, so the sweep
    /// runs after every request the connection queued.
    pub(crate) fn sweep_conn(&self, conn: u64) {
        for worker in 0..self.shared.threads {
            self.submit(
                Some(worker),
                Job {
                    seq: 0,
                    payload: JobPayload::CloseSessions { conn },
                    reply: None,
                },
            );
        }
    }

    /// Arms the drain watchdog: in-flight work gets the pool's drain
    /// deadline to finish before the stragglers are cancelled.
    pub(crate) fn arm_drain_watchdog(&self) {
        arm_drain_watchdog(Arc::clone(&self.shared));
    }

    /// Runs one protocol session over this pool until `input` reaches
    /// EOF (or `shutdown` is raised), streaming one response line per
    /// request to `output` in request order.
    ///
    /// Blank lines and `#` comment lines are skipped, so request
    /// scripts can be annotated. Input is drained on a dedicated thread,
    /// so a raised `shutdown` flag takes effect within one poll interval
    /// even while the session is blocked waiting for the next request
    /// line (`read` restarts after a signal under glibc's `SA_RESTART`,
    /// so checking the flag only between reads would leave an idle
    /// session uninterruptible): accepted requests finish, responses
    /// flush, and the loop exits cleanly — a detached watchdog cancels
    /// stragglers that outlive the pool's drain deadline. When the
    /// session ends, the client's open incremental sessions are swept
    /// from every worker.
    ///
    /// # Errors
    ///
    /// Returns I/O errors of the input or output stream. Request-level
    /// failures are *not* errors: they become `ok: false` response
    /// lines and count into the pool's `failed` counter. A socket
    /// read/write timeout is also not an error: the session ends
    /// cleanly and counts into `timed_out_connections`.
    pub fn serve_session<R, W>(
        &self,
        input: R,
        mut output: W,
        shutdown: Option<&AtomicBool>,
    ) -> io::Result<()>
    where
        R: BufRead + Send + 'static,
        W: Write + Send,
    {
        let conn = self.alloc_conn();
        self.note_conn_open();
        let _active = ConnGuard(&self.shared);
        let (res_tx, res_rx) = mpsc::channel::<(u64, String)>();

        let mut read_err: Option<io::Error> = None;
        let mut timed_out = false;
        let shared = &self.shared;
        let write_result: io::Result<()> = std::thread::scope(|scope| {
            let writer = scope.spawn(move || -> io::Result<()> {
                let mut pending: BTreeMap<u64, String> = BTreeMap::new();
                let mut next = 0u64;
                for (seq, response) in res_rx {
                    pending.insert(seq, response);
                    // Flush every response the order now allows.
                    while let Some(mut ready) = pending.remove(&next) {
                        shared.chaos.garble(&mut ready);
                        output.write_all(ready.as_bytes())?;
                        output.write_all(b"\n")?;
                        output.flush()?;
                        next += 1;
                    }
                }
                Ok(())
            });

            // Input drains on a detached thread (it may sit in a
            // blocking `read` indefinitely); the session loop on the
            // caller's thread polls it alongside the shutdown flag,
            // parses accepted lines, tags them with their arrival order
            // and feeds the pool — pinned to a worker when the request
            // names an incremental session. After a shutdown the
            // detached reader unblocks at its next line (or EOF/process
            // exit) and finds the channel closed. Lines are read under
            // the pool's byte cap: an oversized line is skipped in
            // bounded chunks and reported, never buffered whole.
            let (line_tx, line_rx) = mpsc::channel::<ReadEvent>();
            let reader_shared = Arc::clone(&self.shared);
            std::thread::spawn(move || read_lines(input, &reader_shared, &line_tx));
            let reply = Reply::Session(res_tx.clone());
            let mut seq = 0u64;
            loop {
                if shutdown.is_some_and(|flag| flag.load(Ordering::SeqCst)) {
                    break;
                }
                if writer.is_finished() {
                    break; // output died: stop accepting for this session
                }
                match line_rx.recv_timeout(SHUTDOWN_POLL) {
                    Ok(ReadEvent::Line(line)) => {
                        match self.dispatch_line(conn, seq, &line, &reply) {
                            Dispatch::Skipped => {}
                            Dispatch::Rejected(response) => {
                                if res_tx.send((seq, response)).is_err() {
                                    break;
                                }
                                seq += 1;
                            }
                            Dispatch::Submitted => seq += 1,
                        }
                    }
                    Ok(ReadEvent::Oversized) => {
                        shared.failed.fetch_add(1, Ordering::SeqCst);
                        let line = protocol::too_large_response(shared.max_request_bytes);
                        if res_tx.send((seq, line)).is_err() {
                            break;
                        }
                        seq += 1;
                    }
                    Ok(ReadEvent::Err(e)) if is_timeout(&e) => {
                        // A stalled client hit the socket timeout: end the
                        // session cleanly, count it, keep the pool alive.
                        shared.timed_out_connections.fetch_add(1, Ordering::SeqCst);
                        timed_out = true;
                        break;
                    }
                    Ok(ReadEvent::Err(e)) => {
                        read_err = Some(e);
                        break;
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
                }
            }
            // A graceful shutdown lets in-flight work finish below (the
            // writer join waits for it) — under a watchdog that cancels
            // stragglers through the drain group once the drain deadline
            // passes, so shutdown completes in bounded time.
            if shutdown.is_some_and(|flag| flag.load(Ordering::SeqCst)) {
                arm_drain_watchdog(Arc::clone(&self.shared));
            }
            // Sweep the client's sessions from every worker. The pinned
            // lanes are FIFO, so the sweep runs after every accepted
            // session request — and the loop below *waits* for each
            // worker's acknowledgement, so when `serve_session` returns,
            // the client's sessions (and their slots under the
            // `--max-sessions` cap) are guaranteed released.
            let (sweep_tx, sweep_rx) = mpsc::channel::<(u64, String)>();
            for worker in 0..self.shared.threads {
                self.submit(
                    Some(worker),
                    Job {
                        seq: 0,
                        payload: JobPayload::CloseSessions { conn },
                        reply: Some(Reply::Session(sweep_tx.clone())),
                    },
                );
            }
            drop(sweep_tx);
            for _ack in sweep_rx {}
            // The writer exits once every accepted job's reply sender is
            // gone: all responses flushed. `reply` holds one such clone.
            drop(reply);
            drop(res_tx);
            writer.join().expect("writer thread never panics")
        });

        if let Err(e) = write_result {
            if is_timeout(&e) {
                self.shared
                    .timed_out_connections
                    .fetch_add(1, Ordering::SeqCst);
            } else {
                return Err(e);
            }
        }
        if let Some(e) = read_err {
            return Err(e);
        }
        let _ = timed_out; // already counted; the session ends Ok
        Ok(())
    }
}

/// The detached per-session reader: drains `input` line by line under
/// the pool's byte cap (and its chaos read fault point) into `tx`.
fn read_lines<R: BufRead>(mut input: R, shared: &PoolShared, tx: &mpsc::Sender<ReadEvent>) {
    let cap = shared.max_request_bytes as u64;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if shared.chaos.fail_read() {
            let _ = tx.send(ReadEvent::Err(io::Error::other(
                "chaos: injected read error",
            )));
            return;
        }
        buf.clear();
        // `cap + 1` so a line of exactly `cap` content bytes plus its
        // newline still fits; anything longer truncates mid-line.
        match io::Read::take(&mut input, cap + 1).read_until(b'\n', &mut buf) {
            Ok(0) => return, // EOF
            Ok(n) if n as u64 > cap && buf.last() != Some(&b'\n') => {
                // Oversized: skip to the end of the line in bounded
                // chunks without ever holding the whole line.
                loop {
                    buf.clear();
                    match io::Read::take(&mut input, 64 * 1024).read_until(b'\n', &mut buf) {
                        Ok(0) => break, // EOF mid-line
                        Ok(_) => {
                            if buf.last() == Some(&b'\n') {
                                break;
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(ReadEvent::Err(e));
                            return;
                        }
                    }
                }
                if tx.send(ReadEvent::Oversized).is_err() {
                    return;
                }
            }
            Ok(_) => {
                // Lossy decode: a line with invalid UTF-8 still reaches
                // the parser (and fails there with a structured
                // response) instead of killing the connection.
                let line = String::from_utf8_lossy(&buf).into_owned();
                if tx.send(ReadEvent::Line(line)).is_err() {
                    return;
                }
            }
            Err(e) => {
                let _ = tx.send(ReadEvent::Err(e));
                return;
            }
        }
    }
}

/// Gives in-flight work until the pool's drain deadline to finish, then
/// cancels the stragglers through the drain group. Detached: returns
/// early (without cancelling anything) once the pool is quiescent.
fn arm_drain_watchdog(shared: Arc<PoolShared>) {
    std::thread::spawn(move || {
        let deadline = Instant::now() + shared.drain_deadline;
        while Instant::now() < deadline {
            if shared.in_flight.load(Ordering::SeqCst) == 0
                && shared.pending.load(Ordering::SeqCst) == 0
            {
                return;
            }
            std::thread::sleep(DRAIN_POLL);
        }
        shared.cancel_in_flight();
    });
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut queues = self
                .shared
                .queues
                .lock()
                .expect("pool mutex never poisoned");
            queues.closed = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("worker threads never panic");
        }
    }
}

/// Runs `worker_loop` under supervision: a panic that escapes the
/// per-request isolation boundary (a chaos `kill`, a bug in the
/// dispatch loop itself) is caught here, the in-flight request is
/// answered with a structured `worker_lost` error, the dead workspace's
/// open-session slots are released, and the loop re-enters with a fresh
/// [`Workspace`] — the pool self-heals instead of shrinking.
fn supervise(shared: &PoolShared, index: usize) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared, index))) {
            Ok(()) => return, // pool closed: clean exit
            Err(_) => {
                let lost = shared.current_jobs[index]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take();
                if let Some(job) = lost {
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    shared.failed.fetch_add(1, Ordering::SeqCst);
                    shared.worker_lost.fetch_add(1, Ordering::SeqCst);
                    if let Some(reply) = &job.reply {
                        reply.send(job.seq, protocol::worker_lost_response(&job.id));
                    }
                }
                // The dead workspace took its open sessions with it:
                // release their slots under the --max-sessions cap.
                let orphaned = shared.worker_sessions[index].swap(0, Ordering::SeqCst);
                shared.open_sessions.fetch_sub(orphaned, Ordering::SeqCst);
                shared.worker_respawns.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

/// One worker: claims jobs — own pinned lane first, then the shared
/// lane — against its lifelong warm workspace.
fn worker_loop(shared: &PoolShared, index: usize) {
    let mut workspace = Workspace::with_kernel(shared.kernel);
    loop {
        let job = {
            let mut queues = shared.queues.lock().expect("pool mutex never poisoned");
            loop {
                if let Some(job) = queues.pinned[index].pop_front() {
                    break Some(job);
                }
                if let Some(job) = queues.shared.pop_front() {
                    break Some(job);
                }
                if queues.closed {
                    break None;
                }
                queues = shared
                    .available
                    .wait(queues)
                    .expect("pool mutex never poisoned");
            }
        };
        let Some(job) = job else {
            break; // pool closed and queues drained
        };
        match job.payload {
            JobPayload::CloseSessions { conn } => {
                let swept = workspace.close_conn_sessions(conn);
                shared
                    .open_sessions
                    .fetch_sub(swept as u64, Ordering::SeqCst);
                shared.worker_sessions[index]
                    .store(workspace.open_sessions() as u64, Ordering::SeqCst);
                if let Some(reply) = &job.reply {
                    // Acknowledge so the disconnecting session can wait
                    // for its slots to be released before returning.
                    reply.send(job.seq, String::new());
                }
            }
            JobPayload::Request {
                conn,
                parsed,
                token,
            } => {
                shared.pending.fetch_sub(1, Ordering::SeqCst);
                shared.in_flight.fetch_add(1, Ordering::SeqCst);
                // Stash what supervision needs to answer this request
                // should the worker die executing it.
                let id = match parsed.as_ref() {
                    Ok(request) => request.id.clone(),
                    Err((id, _)) => id.clone(),
                };
                *shared.current_jobs[index]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(LostJob {
                    seq: job.seq,
                    id,
                    reply: job.reply.clone(),
                });
                // The kill fault point fires here, *outside* `isolate`,
                // so it takes the whole worker down and supervision —
                // not the per-request catch — must answer the request.
                shared.chaos.kill_worker();
                let response = handle(conn, *parsed, &token, &mut workspace, shared);
                shared.worker_sessions[index]
                    .store(workspace.open_sessions() as u64, Ordering::SeqCst);
                *shared.current_jobs[index]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                if let Some(reply) = &job.reply {
                    // A dead session writer just discards the response;
                    // the pool keeps serving its other sessions.
                    reply.send(job.seq, response);
                }
            }
        }
    }
}

/// Executes one parsed request against a worker's warm workspace and
/// renders its response. Never panics: handler panics (including
/// injected chaos panics) are caught and reported as that request's
/// failure.
fn handle(
    conn: u64,
    parsed: Result<Request, (Json, String)>,
    token: &CancelToken,
    workspace: &mut Workspace,
    shared: &PoolShared,
) -> String {
    let Request { id, cmd, .. } = match parsed {
        Ok(req) => req,
        Err((id, msg)) => {
            shared.failed.fetch_add(1, Ordering::SeqCst);
            return protocol::err_response(&id, &msg);
        }
    };
    let respond = |result: Result<String, OpError>| match result {
        Ok(output) => {
            shared.served.fetch_add(1, Ordering::SeqCst);
            protocol::ok_response(&id, &output)
        }
        Err(OpError::Msg(e)) => {
            shared.failed.fetch_add(1, Ordering::SeqCst);
            protocol::err_response(&id, &e)
        }
        Err(OpError::Cancelled { kind, done, total }) => {
            shared.failed.fetch_add(1, Ordering::SeqCst);
            let (code, counter) = match kind {
                CancelKind::Deadline => ("deadline_exceeded", &shared.deadline_exceeded),
                CancelKind::Explicit => ("cancelled", &shared.cancelled),
            };
            counter.fetch_add(1, Ordering::SeqCst);
            protocol::coded_err_response(
                &id,
                code,
                &format!("{kind} after {done} of {total} work unit(s)"),
                &[("done", Json::from(done)), ("total", Json::from(total))],
            )
        }
    };
    // The delay/panic fault points fire before the command dispatch,
    // inside the same isolation boundary as a real handler panic.
    if let Err(injected) = isolate(|| {
        shared.chaos.before_request();
        Ok(String::new())
    }) {
        return respond(Err(injected));
    }
    let cancel = Some(token);
    match cmd {
        Command::Stats => {
            // Snapshot first so the stats request does not count itself.
            let response = protocol::stats_response(&id, &stats_of(shared), shared.kernel.name());
            shared.served.fetch_add(1, Ordering::SeqCst);
            response
        }
        Command::Analyze { source, opts } => {
            shared.note_scenarios(scenario_lanes_of(&opts));
            respond(isolate(|| workspace.analyze(&source, &opts, cancel)))
        }
        Command::Sim { source, opts } => {
            respond(isolate(|| workspace.simulate(&source, &opts, cancel)))
        }
        Command::Batch { paths, opts } => {
            shared.note_scenarios(scenario_lanes_of(&opts));
            let results: Vec<Result<String, String>> = paths
                .iter()
                .map(|path| {
                    isolate(|| workspace.analyze(&Source::Path(path.clone()), &opts, cancel))
                        .map_err(|e| e.to_string())
                })
                .collect();
            // A batch is one request: it always yields an ok response
            // with per-item results inline (a fired token fails the
            // remaining items fast — they poll the same token).
            shared.served.fetch_add(1, Ordering::SeqCst);
            protocol::batch_response(&id, &results)
        }
        Command::SessionOpen {
            session,
            source,
            default_delay,
        } => {
            // Reserve a slot against the pool-wide cap before doing any
            // work; release it when the open does not go through.
            if let Err(e) = reserve_session_slot(shared) {
                return respond(Err(OpError::Msg(e)));
            }
            let result =
                isolate(|| workspace.session_open(conn, &session, &source, default_delay, cancel));
            if result.is_err() {
                shared.open_sessions.fetch_sub(1, Ordering::SeqCst);
            }
            respond(result)
        }
        Command::SessionEdit { session, edits } => respond(isolate(|| {
            workspace.session_edit(conn, &session, &edits, cancel)
        })),
        Command::SessionExplore {
            session,
            moves,
            seed,
            objective,
            samples,
        } => {
            if objective == Objective::TauP95 {
                shared.note_scenarios(samples.max(1));
            }
            respond(isolate(|| {
                workspace.session_explore(conn, &session, moves, seed, objective, samples, cancel)
            }))
        }
        Command::SessionClose { session } => {
            let result = isolate(|| workspace.session_close(conn, &session));
            if result.is_ok() {
                shared.open_sessions.fetch_sub(1, Ordering::SeqCst);
            }
            respond(result)
        }
    }
}

/// Reserves one open-session slot against the pool-wide cap, or
/// explains why it cannot — the structured error a `session.open`
/// beyond `--max-sessions` is answered with. Lock-free: concurrent
/// opens race on a compare-exchange, so the cap is never oversubscribed.
fn reserve_session_slot(shared: &PoolShared) -> Result<(), String> {
    loop {
        let open = shared.open_sessions.load(Ordering::SeqCst);
        if let Some(cap) = shared.max_sessions {
            if open >= cap {
                return Err(format!(
                    "session limit reached: {open} of {cap} session(s) open \
                     (each holds O(b²·n) warm state); close one or raise --max-sessions"
                ));
            }
        }
        if shared
            .open_sessions
            .compare_exchange(open, open + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            return Ok(());
        }
    }
}

/// Runs a request handler, converting a panic into a per-request error
/// so one poisoned input cannot take the worker (or the pool) down.
fn isolate<F>(f: F) -> Result<String, OpError>
where
    F: FnOnce() -> Result<String, OpError>,
{
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            Err(OpError::Msg(format!(
                "internal error: request handler panicked: {msg}"
            )))
        }
    }
}

/// Runs a single protocol session over a freshly spawned pool — the
/// stdin/stdout serve mode, and the entry point in-memory tests drive.
///
/// # Errors
///
/// Returns I/O errors of the input or output stream; request-level
/// failures become `ok: false` response lines and count into
/// [`ServeStats::failed`].
pub fn serve<R, W>(
    input: R,
    output: W,
    opts: &ServeOptions,
    shutdown: Option<&AtomicBool>,
) -> io::Result<ServeStats>
where
    R: BufRead + Send + 'static,
    W: Write + Send,
{
    let pool = Pool::new(opts);
    pool.serve_session(input, output, shutdown)?;
    Ok(pool.stats())
}
