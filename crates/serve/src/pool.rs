//! The persistent warm-pool request loop.
//!
//! A [`Pool`] owns a fixed set of worker threads — each holding one warm
//! [`Workspace`] (arena + pre-sized queues + open sessions) for its
//! whole lifetime — and any number of protocol *sessions* can feed it
//! concurrently: stdin/stdout runs one ([`serve`]), the socket
//! transports run one per accepted connection over the same shared pool
//! ([`serve_tcp`](crate::serve_tcp)). Request failures (unreadable
//! files, parse errors, even panicking handlers) are isolated to their
//! response line; the pool keeps serving.
//!
//! Two dispatch lanes feed the workers:
//!
//! * the **shared lane** — ordinary requests, claimed dynamically, so a
//!   slow analysis on one worker never idles the others;
//! * the **pinned lanes** — one FIFO per worker. Every request naming
//!   an incremental session (`session.open`/`edit`/`close`) is pinned
//!   to the worker `hash(connection, name)` selects, so a session's
//!   whole life executes in request order against one workspace's warm
//!   state — no cross-worker state handoff, no reordering of edits.
//!
//! Each protocol session has a dedicated writer thread that reorders
//! completions back into request order (a `BTreeMap` keyed by arrival
//! sequence) and flushes after every response, so a client pipelining
//! requests sees each answer as soon as ordering allows.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use tsg_core::analysis::wide::KernelBackend;
use tsg_sim::BatchRunner;

use crate::json::Json;
use crate::ops::{Source, Workspace};
use crate::protocol::{self, Command, Request};

/// How often the session loop re-checks the shutdown flag while waiting
/// for the next request line.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// Configuration of a serve session.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeOptions {
    /// Worker threads (`None` = all cores), resolved through
    /// [`BatchRunner::sized`].
    pub threads: Option<usize>,
    /// Pool-wide cap on concurrently open incremental sessions (`None`
    /// = unbounded). Each open session pins O(b²·n) warm matrix cells to
    /// a worker for its whole life, so a long-lived service should
    /// bound them: a `session.open` beyond the cap is answered with a
    /// structured `ok: false` error instead of growing worker memory,
    /// and the slot frees on `session.close` or disconnect.
    pub max_sessions: Option<u64>,
    /// Wide-kernel backend every worker workspace is pinned to
    /// (`Auto` = the widest the CPU supports). Resolved leniently at
    /// pool spawn; the CLI validates an explicit `--kernel` strictly
    /// before it gets here.
    pub kernel: KernelBackend,
}

/// Counters of a pool (or a finished serve run).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered with `ok: true`.
    pub served: u64,
    /// Requests answered with `ok: false`.
    pub failed: u64,
    /// Workers the pool ran.
    pub threads: usize,
}

/// What a queued job carries.
enum JobPayload {
    /// One request line, already parsed by the dispatching session.
    Request {
        /// The protocol session (connection) the request arrived on.
        conn: u64,
        /// The parse outcome; errors become `ok: false` responses.
        parsed: Result<Request, (Json, String)>,
    },
    /// Housekeeping broadcast: a connection ended, drop its sessions.
    CloseSessions {
        /// The ended connection.
        conn: u64,
    },
}

/// One queued unit of work, tagged with its per-connection arrival
/// order and the channel its response (if any) goes back on.
struct Job {
    seq: u64,
    payload: JobPayload,
    reply: Option<mpsc::Sender<(u64, String)>>,
}

/// The two dispatch lanes; see the module docs.
struct JobQueues {
    shared: VecDeque<Job>,
    pinned: Vec<VecDeque<Job>>,
    closed: bool,
}

/// State shared between the pool handle and its workers.
struct PoolShared {
    queues: Mutex<JobQueues>,
    available: Condvar,
    served: AtomicU64,
    failed: AtomicU64,
    threads: usize,
    next_conn: AtomicU64,
    /// Incremental sessions currently open across every worker.
    open_sessions: AtomicU64,
    /// Cap on `open_sessions` (`None` = unbounded).
    max_sessions: Option<u64>,
    /// The resolved backend every worker workspace runs on — reported
    /// by the `stats` op so deployments can audit the dispatch decision.
    kernel: KernelBackend,
}

/// A persistent warm worker pool; see the module docs.
///
/// Dropping the pool closes the queues, drains what was accepted and
/// joins the workers.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool per `opts`: `opts.threads` workers (`None` = all
    /// cores, via [`BatchRunner::sized`]), each owning one warm
    /// [`Workspace`], with open incremental sessions capped pool-wide by
    /// `opts.max_sessions`.
    pub fn new(opts: &ServeOptions) -> Self {
        let threads = BatchRunner::sized(opts.threads).threads();
        let shared = Arc::new(PoolShared {
            queues: Mutex::new(JobQueues {
                shared: VecDeque::new(),
                pinned: (0..threads).map(|_| VecDeque::new()).collect(),
                closed: false,
            }),
            available: Condvar::new(),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            threads,
            next_conn: AtomicU64::new(0),
            open_sessions: AtomicU64::new(0),
            max_sessions: opts.max_sessions,
            kernel: opts.kernel.resolve_lenient(),
        });
        let workers = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, index))
            })
            .collect();
        Pool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Pool-wide counters: requests completed so far across every
    /// protocol session this pool served.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            served: self.shared.served.load(Ordering::SeqCst),
            failed: self.shared.failed.load(Ordering::SeqCst),
            threads: self.shared.threads,
        }
    }

    /// The worker every request naming session `name` on connection
    /// `conn` is pinned to (FNV-1a, stable within the process).
    fn pin_of(&self, conn: u64, name: &str) -> usize {
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ conn.wrapping_mul(FNV_PRIME);
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        (hash % self.shared.threads as u64) as usize
    }

    /// Enqueues a job on the shared lane or a worker's pinned lane.
    fn submit(&self, pin: Option<usize>, job: Job) {
        let mut queues = self
            .shared
            .queues
            .lock()
            .expect("pool mutex never poisoned");
        match pin {
            Some(worker) => queues.pinned[worker].push_back(job),
            None => queues.shared.push_back(job),
        }
        drop(queues);
        match pin {
            // Only the pinned worker can take it, and the condvar cannot
            // target a thread: wake everyone, the wrong ones re-sleep.
            Some(_) => self.shared.available.notify_all(),
            None => self.shared.available.notify_one(),
        }
    }

    /// Runs one protocol session over this pool until `input` reaches
    /// EOF (or `shutdown` is raised), streaming one response line per
    /// request to `output` in request order.
    ///
    /// Blank lines and `#` comment lines are skipped, so request
    /// scripts can be annotated. Input is drained on a dedicated thread,
    /// so a raised `shutdown` flag takes effect within one poll interval
    /// even while the session is blocked waiting for the next request
    /// line (`read` restarts after a signal under glibc's `SA_RESTART`,
    /// so checking the flag only between reads would leave an idle
    /// session uninterruptible): accepted requests finish, responses
    /// flush, and the loop exits cleanly. When the session ends, the
    /// client's open incremental sessions are swept from every worker.
    ///
    /// # Errors
    ///
    /// Returns I/O errors of the input or output stream. Request-level
    /// failures are *not* errors: they become `ok: false` response
    /// lines and count into the pool's `failed` counter.
    pub fn serve_session<R, W>(
        &self,
        input: R,
        mut output: W,
        shutdown: Option<&AtomicBool>,
    ) -> io::Result<()>
    where
        R: BufRead + Send + 'static,
        W: Write + Send,
    {
        let conn = self.shared.next_conn.fetch_add(1, Ordering::SeqCst);
        let (res_tx, res_rx) = mpsc::channel::<(u64, String)>();

        let mut read_err: Option<io::Error> = None;
        let write_result: io::Result<()> = std::thread::scope(|scope| {
            let writer = scope.spawn(move || -> io::Result<()> {
                let mut pending: BTreeMap<u64, String> = BTreeMap::new();
                let mut next = 0u64;
                for (seq, response) in res_rx {
                    pending.insert(seq, response);
                    // Flush every response the order now allows.
                    while let Some(ready) = pending.remove(&next) {
                        output.write_all(ready.as_bytes())?;
                        output.write_all(b"\n")?;
                        output.flush()?;
                        next += 1;
                    }
                }
                Ok(())
            });

            // Input drains on a detached thread (it may sit in a
            // blocking `read` indefinitely); the session loop on the
            // caller's thread polls it alongside the shutdown flag,
            // parses accepted lines, tags them with their arrival order
            // and feeds the pool — pinned to a worker when the request
            // names an incremental session. After a shutdown the
            // detached reader unblocks at its next line (or EOF/process
            // exit) and finds the channel closed.
            let (line_tx, line_rx) = mpsc::channel::<io::Result<String>>();
            std::thread::spawn(move || {
                let mut input = input;
                let mut line = String::new();
                loop {
                    line.clear();
                    let result = match input.read_line(&mut line) {
                        Ok(0) => break, // EOF
                        Ok(_) => Ok(std::mem::take(&mut line)),
                        Err(e) => Err(e),
                    };
                    let failed = result.is_err();
                    if line_tx.send(result).is_err() || failed {
                        break;
                    }
                }
            });
            let mut seq = 0u64;
            loop {
                if shutdown.is_some_and(|flag| flag.load(Ordering::SeqCst)) {
                    break;
                }
                if writer.is_finished() {
                    break; // output died: stop accepting for this session
                }
                match line_rx.recv_timeout(SHUTDOWN_POLL) {
                    Ok(Ok(line)) => {
                        let trimmed = line.trim();
                        if trimmed.is_empty() || trimmed.starts_with('#') {
                            continue;
                        }
                        let parsed = protocol::parse_request(trimmed);
                        let pin = parsed
                            .as_ref()
                            .ok()
                            .and_then(|request| request.cmd.session_name())
                            .map(|name| self.pin_of(conn, name));
                        self.submit(
                            pin,
                            Job {
                                seq,
                                payload: JobPayload::Request { conn, parsed },
                                reply: Some(res_tx.clone()),
                            },
                        );
                        seq += 1;
                    }
                    Ok(Err(e)) => {
                        read_err = Some(e);
                        break;
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
                }
            }
            // Sweep the client's sessions from every worker. The pinned
            // lanes are FIFO, so the sweep runs after every accepted
            // session request — and the loop below *waits* for each
            // worker's acknowledgement, so when `serve_session` returns,
            // the client's sessions (and their slots under the
            // `--max-sessions` cap) are guaranteed released.
            let (sweep_tx, sweep_rx) = mpsc::channel::<(u64, String)>();
            for worker in 0..self.shared.threads {
                self.submit(
                    Some(worker),
                    Job {
                        seq: 0,
                        payload: JobPayload::CloseSessions { conn },
                        reply: Some(sweep_tx.clone()),
                    },
                );
            }
            drop(sweep_tx);
            for _ack in sweep_rx {}
            // The writer exits once every accepted job's reply sender is
            // gone: all responses flushed.
            drop(res_tx);
            writer.join().expect("writer thread never panics")
        });

        write_result?;
        if let Some(e) = read_err {
            return Err(e);
        }
        Ok(())
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut queues = self
                .shared
                .queues
                .lock()
                .expect("pool mutex never poisoned");
            queues.closed = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("worker threads never panic");
        }
    }
}

/// One worker: claims jobs — own pinned lane first, then the shared
/// lane — against its lifelong warm workspace.
fn worker_loop(shared: &PoolShared, index: usize) {
    let mut workspace = Workspace::with_kernel(shared.kernel);
    loop {
        let job = {
            let mut queues = shared.queues.lock().expect("pool mutex never poisoned");
            loop {
                if let Some(job) = queues.pinned[index].pop_front() {
                    break Some(job);
                }
                if let Some(job) = queues.shared.pop_front() {
                    break Some(job);
                }
                if queues.closed {
                    break None;
                }
                queues = shared
                    .available
                    .wait(queues)
                    .expect("pool mutex never poisoned");
            }
        };
        let Some(job) = job else {
            break; // pool closed and queues drained
        };
        match job.payload {
            JobPayload::CloseSessions { conn } => {
                let swept = workspace.close_conn_sessions(conn);
                shared
                    .open_sessions
                    .fetch_sub(swept as u64, Ordering::SeqCst);
                if let Some(reply) = &job.reply {
                    // Acknowledge so the disconnecting session can wait
                    // for its slots to be released before returning.
                    let _ = reply.send((job.seq, String::new()));
                }
            }
            JobPayload::Request { conn, parsed } => {
                let response = handle(conn, parsed, &mut workspace, shared);
                if let Some(reply) = &job.reply {
                    // A dead session writer just discards the response;
                    // the pool keeps serving its other sessions.
                    let _ = reply.send((job.seq, response));
                }
            }
        }
    }
}

/// Executes one parsed request against a worker's warm workspace and
/// renders its response. Never panics: handler panics are caught and
/// reported as that request's failure.
fn handle(
    conn: u64,
    parsed: Result<Request, (Json, String)>,
    workspace: &mut Workspace,
    shared: &PoolShared,
) -> String {
    let Request { id, cmd } = match parsed {
        Ok(req) => req,
        Err((id, msg)) => {
            shared.failed.fetch_add(1, Ordering::SeqCst);
            return protocol::err_response(&id, &msg);
        }
    };
    let respond = |result: Result<String, String>| match result {
        Ok(output) => {
            shared.served.fetch_add(1, Ordering::SeqCst);
            protocol::ok_response(&id, &output)
        }
        Err(e) => {
            shared.failed.fetch_add(1, Ordering::SeqCst);
            protocol::err_response(&id, &e)
        }
    };
    match cmd {
        Command::Stats => {
            // Snapshot first so the stats request does not count itself.
            let response = protocol::stats_response(
                &id,
                shared.served.load(Ordering::SeqCst),
                shared.failed.load(Ordering::SeqCst),
                shared.threads,
                shared.kernel.name(),
            );
            shared.served.fetch_add(1, Ordering::SeqCst);
            response
        }
        Command::Analyze { source, opts } => respond(isolate(|| workspace.analyze(&source, &opts))),
        Command::Sim { source, opts } => respond(isolate(|| workspace.simulate(&source, &opts))),
        Command::Batch { paths, opts } => {
            let results: Vec<Result<String, String>> = paths
                .iter()
                .map(|path| isolate(|| workspace.analyze(&Source::Path(path.clone()), &opts)))
                .collect();
            // A batch is one request: it always yields an ok response
            // with per-item results inline.
            shared.served.fetch_add(1, Ordering::SeqCst);
            protocol::batch_response(&id, &results)
        }
        Command::SessionOpen {
            session,
            source,
            default_delay,
        } => {
            // Reserve a slot against the pool-wide cap before doing any
            // work; release it when the open does not go through.
            if let Err(e) = reserve_session_slot(shared) {
                return respond(Err(e));
            }
            let result = isolate(|| workspace.session_open(conn, &session, &source, default_delay));
            if result.is_err() {
                shared.open_sessions.fetch_sub(1, Ordering::SeqCst);
            }
            respond(result)
        }
        Command::SessionEdit { session, edits } => {
            respond(isolate(|| workspace.session_edit(conn, &session, &edits)))
        }
        Command::SessionClose { session } => {
            let result = isolate(|| workspace.session_close(conn, &session));
            if result.is_ok() {
                shared.open_sessions.fetch_sub(1, Ordering::SeqCst);
            }
            respond(result)
        }
    }
}

/// Reserves one open-session slot against the pool-wide cap, or
/// explains why it cannot — the structured error a `session.open`
/// beyond `--max-sessions` is answered with. Lock-free: concurrent
/// opens race on a compare-exchange, so the cap is never oversubscribed.
fn reserve_session_slot(shared: &PoolShared) -> Result<(), String> {
    loop {
        let open = shared.open_sessions.load(Ordering::SeqCst);
        if let Some(cap) = shared.max_sessions {
            if open >= cap {
                return Err(format!(
                    "session limit reached: {open} of {cap} session(s) open \
                     (each holds O(b²·n) warm state); close one or raise --max-sessions"
                ));
            }
        }
        if shared
            .open_sessions
            .compare_exchange(open, open + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            return Ok(());
        }
    }
}

/// Runs a request handler, converting a panic into a per-request error
/// so one poisoned input cannot take the worker (or the pool) down.
fn isolate<F>(f: F) -> Result<String, String>
where
    F: FnOnce() -> Result<String, String>,
{
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            Err(format!("internal error: request handler panicked: {msg}"))
        }
    }
}

/// Runs a single protocol session over a freshly spawned pool — the
/// stdin/stdout serve mode, and the entry point in-memory tests drive.
///
/// # Errors
///
/// Returns I/O errors of the input or output stream; request-level
/// failures become `ok: false` response lines and count into
/// [`ServeStats::failed`].
pub fn serve<R, W>(
    input: R,
    output: W,
    opts: &ServeOptions,
    shutdown: Option<&AtomicBool>,
) -> io::Result<ServeStats>
where
    R: BufRead + Send + 'static,
    W: Write + Send,
{
    let pool = Pool::new(opts);
    pool.serve_session(input, output, shutdown)?;
    Ok(pool.stats())
}
