//! # tsg-serve — the long-running warm-pool analysis service
//!
//! The paper's pitch is timing simulation as *the* workhorse for
//! performance analysis — which only pays off when many analyses can be
//! issued cheaply against the same warm engine (the way Simopt drives
//! repeated behavioural simulations from inside a CAD flow). This crate
//! turns the workspace from a one-shot batch tool into that engine:
//!
//! * [`protocol`] — newline-delimited JSON requests (`analyze`, `sim`,
//!   `batch`, `stats`, `session.open`/`edit`/`close`) with ids echoed
//!   into in-order responses;
//! * [`ops`] — the analysis operations themselves, shared with the
//!   one-shot CLI so a served response is byte-identical to the
//!   equivalent `tsg analyze` / `tsg sim` invocation, plus the warm
//!   per-worker [`Workspace`] (one [`AnalysisArena`], pre-sized event
//!   queues and the open [`AnalysisSession`]s — no per-request
//!   allocation on the hot path after warm-up);
//! * [`pool`] — the persistent worker [`Pool`]: dynamic claiming on the
//!   shared lane, per-worker pinned lanes that keep each incremental
//!   session's edits in request order on one workspace, per-request
//!   error isolation (including caught panics), ordered streaming
//!   responses, graceful EOF/SIGINT shutdown, and served/failed
//!   counters surfaced by the `stats` request;
//! * transports — stdin/stdout ([`serve`]), TCP ([`serve_tcp`]) and Unix
//!   sockets ([`serve_unix`]); socket connections all share the one
//!   pool. On Unix they are multiplexed by the [`reactor`] readiness
//!   event loop — one thread, `poll(2)`, nonblocking sockets, bounded
//!   per-connection buffers — so thousands of idle, half-open or
//!   dribbling clients cost buffers, not threads, and the worker pool
//!   stays available for well-behaved requests. Elsewhere the
//!   historical thread-per-connection loop is retained.
//!
//! [`AnalysisSession`]: tsg_core::analysis::session::AnalysisSession
//!
//! [`AnalysisArena`]: tsg_core::analysis::wide::AnalysisArena
//! [`Workspace`]: ops::Workspace
//!
//! ## Example
//!
//! ```
//! use std::io::Cursor;
//! use tsg_serve::{serve, ServeOptions};
//!
//! // In this raw string the `\n` sequences are JSON string escapes: the
//! // inline `.g` text travels on one protocol line.
//! let script = concat!(
//!     r#"{"id": 1, "cmd": "sim", "name": "t.g", "periods": 1,"#,
//!     r#" "text": ".model t\n.outputs x\n.graph\nx+ x-\nx- x+\n.marking { <x-,x+> }\n.end\n"}"#,
//!     "\n",
//!     r#"{"id": 2, "cmd": "stats"}"#,
//!     "\n",
//! );
//! let mut out = Vec::new();
//! let opts = ServeOptions {
//!     threads: Some(1),
//!     ..ServeOptions::default()
//! };
//! let stats = serve(Cursor::new(script), &mut out, &opts, None).unwrap();
//! assert_eq!(stats.served, 2);
//! let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
//! assert!(lines[0].starts_with(r#"{"id":1,"ok":true"#));
//! assert!(lines[1].contains(r#""served":1"#));
//! ```

use std::io;
#[cfg(not(unix))]
use std::io::BufReader;
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(not(unix))]
use std::sync::Arc;
#[cfg(not(unix))]
use std::time::Duration;

pub mod chaos;
pub mod json;
pub mod ops;
pub mod pool;
pub mod protocol;
#[cfg(unix)]
mod reactor;

pub use chaos::ChaosConfig;
pub use pool::{serve, Pool, ServeOptions, ServeStats};

/// How often the socket accept loops poll the shutdown flag.
#[cfg(not(unix))]
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Serves protocol sessions over TCP: all connections share **one**
/// warm worker [`Pool`] (returned stats are the pool's aggregate
/// counters). On Unix the connections are multiplexed by the readiness
/// event loop — thousands of concurrent clients on one thread, bounded
/// buffers per connection, `opts.max_connections` capping the live set.
///
/// The loop exits when `shutdown` is raised or, if `accept_budget` is
/// set, after accepting that many connections — without a budget and
/// with no shutdown flag it serves forever. Open connections are
/// drained before the call returns. Per-connection I/O failures (a
/// client vanishing mid-response) close that connection and do not
/// stop the listener or the pool.
///
/// # Errors
///
/// Returns listener-level I/O errors (binding problems surface in the
/// caller; accept errors other than would-block are fatal).
#[cfg(unix)]
pub fn serve_tcp(
    listener: TcpListener,
    opts: &ServeOptions,
    shutdown: Option<&AtomicBool>,
    accept_budget: Option<u64>,
) -> io::Result<ServeStats> {
    listener.set_nonblocking(true)?;
    let pool = Pool::new(opts);
    reactor::run(
        &reactor::Listener::Tcp(listener),
        &pool,
        opts,
        shutdown,
        accept_budget,
    )?;
    Ok(pool.stats())
}

/// Serves protocol sessions over TCP — the thread-per-connection
/// fallback for platforms without the `poll(2)` readiness loop.
///
/// # Errors
///
/// Returns listener-level I/O errors.
#[cfg(not(unix))]
pub fn serve_tcp(
    listener: TcpListener,
    opts: &ServeOptions,
    shutdown: Option<&AtomicBool>,
    accept_budget: Option<u64>,
) -> io::Result<ServeStats> {
    listener.set_nonblocking(true)?;
    accept_loop(
        shutdown,
        accept_budget,
        opts,
        move |pool, flag| match listener.accept() {
            Ok((stream, peer)) => {
                stream.set_nonblocking(false)?;
                // A stalled or vanished client trips these timeouts; the
                // session counts it and ends cleanly instead of holding
                // the connection forever.
                stream.set_read_timeout(opts.io_timeout)?;
                stream.set_write_timeout(opts.io_timeout)?;
                let reader = BufReader::new(stream.try_clone()?);
                Ok(Some(std::thread::spawn(move || {
                    if let Err(e) = pool.serve_session(reader, stream, Some(flag.as_ref())) {
                        eprintln!("tsg serve: connection {peer}: {e}");
                    }
                })))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        },
    )
}

/// Serves protocol sessions over a Unix socket — same multiplexed
/// shared-pool loop as [`serve_tcp`].
///
/// # Errors
///
/// Returns listener-level I/O errors.
#[cfg(unix)]
pub fn serve_unix(
    listener: UnixListener,
    opts: &ServeOptions,
    shutdown: Option<&AtomicBool>,
    accept_budget: Option<u64>,
) -> io::Result<ServeStats> {
    listener.set_nonblocking(true)?;
    let pool = Pool::new(opts);
    reactor::run(
        &reactor::Listener::Unix(listener),
        &pool,
        opts,
        shutdown,
        accept_budget,
    )?;
    Ok(pool.stats())
}

/// The shared accept loop of the thread-per-connection fallback: polls
/// `accept` (a non-blocking accept attempt returning a spawned
/// connection thread, `None` on would-block), mirrors the caller's
/// shutdown flag into one the `'static` connection threads can watch,
/// and drains every connection before reporting the pool's aggregate
/// stats.
#[cfg(not(unix))]
fn accept_loop<F>(
    shutdown: Option<&AtomicBool>,
    max_connections: Option<u64>,
    opts: &ServeOptions,
    mut accept: F,
) -> io::Result<ServeStats>
where
    F: FnMut(Arc<Pool>, Arc<AtomicBool>) -> io::Result<Option<std::thread::JoinHandle<()>>>,
{
    let pool = Arc::new(Pool::new(opts));
    // Connection threads need a `'static` flag; the loop below mirrors
    // the caller's borrowed one into this owned bridge every poll.
    let bridge = Arc::new(AtomicBool::new(false));
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut accepted = 0u64;
    let result = loop {
        if max_connections.is_some_and(|max| accepted >= max) {
            break Ok(());
        }
        if shutdown.is_some_and(|flag| flag.load(Ordering::SeqCst)) {
            bridge.store(true, Ordering::SeqCst);
            break Ok(());
        }
        match accept(Arc::clone(&pool), Arc::clone(&bridge)) {
            Ok(Some(handle)) => {
                connections.push(handle);
                accepted += 1;
            }
            Ok(None) => {
                // Reap finished connections so a long-lived listener
                // does not accumulate joined-out handles.
                connections.retain(|h| !h.is_finished());
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => break Err(e),
        }
    };
    for handle in connections {
        let _ = handle.join();
    }
    result.map(|()| pool.stats())
}

/// Installs a SIGINT handler that raises (and returns) a global
/// shutdown flag instead of killing the process: in-flight requests
/// finish and responses flush before the serve loop exits. A second
/// Ctrl-C restores the default disposition, so it kills as usual.
///
/// On non-Unix platforms this returns a flag nothing ever raises.
pub fn install_sigint_flag() -> &'static AtomicBool {
    static TRIGGERED: AtomicBool = AtomicBool::new(false);
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIG_DFL: usize = 0;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_sigint(_: i32) {
            TRIGGERED.store(true, Ordering::SeqCst);
            // Graceful once: a second Ctrl-C gets the default (kill)
            // behaviour back. `signal` is async-signal-safe.
            unsafe { signal(SIGINT, SIG_DFL) };
        }
        unsafe { signal(SIGINT, on_sigint as *const () as usize) };
    }
    &TRIGGERED
}

// Integration-style pool tests live in `tests/`; unit tests for json,
// protocol and ops sit in their modules.
