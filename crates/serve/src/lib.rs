//! # tsg-serve — the long-running warm-pool analysis service
//!
//! The paper's pitch is timing simulation as *the* workhorse for
//! performance analysis — which only pays off when many analyses can be
//! issued cheaply against the same warm engine (the way Simopt drives
//! repeated behavioural simulations from inside a CAD flow). This crate
//! turns the workspace from a one-shot batch tool into that engine:
//!
//! * [`protocol`] — newline-delimited JSON requests (`analyze`, `sim`,
//!   `batch`, `stats`) with ids echoed into in-order responses;
//! * [`ops`] — the analysis operations themselves, shared with the
//!   one-shot CLI so a served response is byte-identical to the
//!   equivalent `tsg analyze` / `tsg sim` invocation, plus the warm
//!   per-worker [`Workspace`] (one [`SimArena`] and pre-sized event
//!   queue per worker — no per-request allocation on the hot path after
//!   warm-up);
//! * [`pool`] — the persistent worker pool: dynamic claiming, per-request
//!   error isolation (including caught panics), ordered streaming
//!   responses, graceful EOF/SIGINT shutdown, and served/failed
//!   counters surfaced by the `stats` request;
//! * transports — stdin/stdout ([`serve`]), TCP ([`serve_tcp`]) and Unix
//!   sockets ([`serve_unix`]), one protocol session per connection.
//!
//! [`SimArena`]: tsg_core::analysis::initiated::SimArena
//! [`Workspace`]: ops::Workspace
//!
//! ## Example
//!
//! ```
//! use std::io::Cursor;
//! use tsg_serve::{serve, ServeOptions};
//!
//! // In this raw string the `\n` sequences are JSON string escapes: the
//! // inline `.g` text travels on one protocol line.
//! let script = concat!(
//!     r#"{"id": 1, "cmd": "sim", "name": "t.g", "periods": 1,"#,
//!     r#" "text": ".model t\n.outputs x\n.graph\nx+ x-\nx- x+\n.marking { <x-,x+> }\n.end\n"}"#,
//!     "\n",
//!     r#"{"id": 2, "cmd": "stats"}"#,
//!     "\n",
//! );
//! let mut out = Vec::new();
//! let opts = ServeOptions { threads: Some(1) };
//! let stats = serve(Cursor::new(script), &mut out, &opts, None).unwrap();
//! assert_eq!(stats.served, 2);
//! let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
//! assert!(lines[0].starts_with(r#"{"id":1,"ok":true"#));
//! assert!(lines[1].contains(r#""served":1"#));
//! ```

use std::io::{self, BufReader};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

pub mod json;
pub mod ops;
pub mod pool;
pub mod protocol;

pub use pool::{serve, ServeOptions, ServeStats};

/// How often the socket accept loops poll the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Serves protocol sessions over TCP: one connection at a time, each an
/// independent session with its own pool and counters (returned stats
/// aggregate all of them).
///
/// The loop exits when `shutdown` is raised or, if `max_connections` is
/// set, after that many connections — without a bound and with no
/// shutdown flag it serves forever. Per-connection I/O failures (a
/// client vanishing mid-response) are reported to stderr and do not
/// stop the listener.
///
/// # Errors
///
/// Returns listener-level I/O errors (binding problems surface in the
/// caller; accept errors other than would-block are fatal).
pub fn serve_tcp(
    listener: TcpListener,
    opts: &ServeOptions,
    shutdown: Option<&AtomicBool>,
    max_connections: Option<u64>,
) -> io::Result<ServeStats> {
    listener.set_nonblocking(true)?;
    let mut total = ServeStats {
        served: 0,
        failed: 0,
        threads: tsg_sim::BatchRunner::sized(opts.threads).threads(),
    };
    let mut connections = 0u64;
    while max_connections.is_none_or(|max| connections < max) {
        if shutdown.is_some_and(|flag| flag.load(Ordering::SeqCst)) {
            break;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                stream.set_nonblocking(false)?;
                let reader = BufReader::new(stream.try_clone()?);
                match serve(reader, stream, opts, shutdown) {
                    Ok(stats) => {
                        total.served += stats.served;
                        total.failed += stats.failed;
                    }
                    Err(e) => eprintln!("tsg serve: connection {peer}: {e}"),
                }
                connections += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(total)
}

/// Serves protocol sessions over a Unix socket — same loop as
/// [`serve_tcp`].
///
/// # Errors
///
/// Returns listener-level I/O errors.
#[cfg(unix)]
pub fn serve_unix(
    listener: UnixListener,
    opts: &ServeOptions,
    shutdown: Option<&AtomicBool>,
    max_connections: Option<u64>,
) -> io::Result<ServeStats> {
    listener.set_nonblocking(true)?;
    let mut total = ServeStats {
        served: 0,
        failed: 0,
        threads: tsg_sim::BatchRunner::sized(opts.threads).threads(),
    };
    let mut connections = 0u64;
    while max_connections.is_none_or(|max| connections < max) {
        if shutdown.is_some_and(|flag| flag.load(Ordering::SeqCst)) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let reader = BufReader::new(stream.try_clone()?);
                match serve(reader, stream, opts, shutdown) {
                    Ok(stats) => {
                        total.served += stats.served;
                        total.failed += stats.failed;
                    }
                    Err(e) => eprintln!("tsg serve: unix connection: {e}"),
                }
                connections += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(total)
}

/// Installs a SIGINT handler that raises (and returns) a global
/// shutdown flag instead of killing the process: in-flight requests
/// finish and responses flush before the serve loop exits. A second
/// Ctrl-C restores the default disposition, so it kills as usual.
///
/// On non-Unix platforms this returns a flag nothing ever raises.
pub fn install_sigint_flag() -> &'static AtomicBool {
    static TRIGGERED: AtomicBool = AtomicBool::new(false);
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIG_DFL: usize = 0;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_sigint(_: i32) {
            TRIGGERED.store(true, Ordering::SeqCst);
            // Graceful once: a second Ctrl-C gets the default (kill)
            // behaviour back. `signal` is async-signal-safe.
            unsafe { signal(SIGINT, SIG_DFL) };
        }
        unsafe { signal(SIGINT, on_sigint as *const () as usize) };
    }
    &TRIGGERED
}

// Integration-style pool tests live in `tests/`; unit tests for json,
// protocol and ops sit in their modules.
