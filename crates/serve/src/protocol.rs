//! The newline-delimited JSON request/response protocol of `tsg serve`.
//!
//! One request per line, one response line per request, responses in
//! request order. Requests are JSON objects with a `cmd` field and an
//! optional `id` echoed verbatim into the response:
//!
//! ```json
//! {"id": 1, "cmd": "analyze", "path": "spec.g", "baselines": true}
//! {"id": 2, "cmd": "sim", "path": "spec.g", "periods": 2}
//! {"id": 3, "cmd": "sim", "text": ".model m\n...", "name": "inline.g"}
//! {"id": 4, "cmd": "batch", "paths": ["a.g", "b.g"]}
//! {"id": 5, "cmd": "stats"}
//! {"id": 6, "cmd": "session.open", "session": "s1", "path": "spec.g"}
//! {"id": 7, "cmd": "session.edit", "session": "s1",
//!  "edits": [{"src": "a+", "dst": "c+", "delay": 5}]}
//! {"id": 8, "cmd": "session.edit", "session": "s1",
//!  "edits": [{"op": "add_event", "label": "s+"},
//!            {"op": "add_arc", "src": "a+", "dst": "s+", "delay": 1},
//!            {"op": "add_arc", "src": "s+", "dst": "c+", "delay": 1,
//!             "marked": true},
//!            {"op": "remove_arc", "src": "a+", "dst": "c+"}]}
//! {"id": 9, "cmd": "session.explore", "session": "s1", "moves": 16}
//! {"id": 10, "cmd": "session.close", "session": "s1"}
//! ```
//!
//! The `session.*` commands drive an incremental
//! [`AnalysisSession`](tsg_core::analysis::session::AnalysisSession):
//! `open` runs the full analysis once and keeps it warm, each `edit`
//! re-simulates only the dirty region, `close` discards the state. All
//! requests naming one session are *pinned to one worker* (and sessions
//! are scoped to their connection), so edits execute in request order
//! against warm state.
//!
//! An `edits` entry is either the bare `{src, dst, delay}` delay form
//! or a structural `{"op": ...}` object — `add_arc` (optionally
//! `"marked": true`), `remove_arc`, `add_event`, `remove_event`,
//! `delay` — applied as one transaction: a batch that breaks a graph
//! rule is rolled back whole and answered with a plain error, the
//! session untouched. `session.explore` runs the speculative
//! optimization loop on the open session: `moves` proposals (default
//! 16), each scored by incremental re-analysis and committed only when
//! it lowers the cycle time; `seed` (default 0) makes the run
//! reproducible.
//!
//! Responses always carry `id` and `ok`:
//!
//! ```json
//! {"id": 1, "ok": true, "output": "graph: ...\n"}
//! {"id": 2, "ok": false, "error": "reading spec.g: ..."}
//! {"id": 4, "ok": true, "results": [{"ok": true, "output": "..."}]}
//! {"id": 5, "ok": true, "served": 4, "failed": 0, "threads": 8, "kernel": "avx2"}
//! ```
//!
//! `analyze`/`batch` requests accept a `"kernel"` field
//! (`"auto"`/`"portable"`/`"sse2"`/`"avx2"`) pinning the wide-kernel
//! backend for that request; an unavailable backend is refused with a
//! structured error, and the `stats` response reports the backend the
//! pool's warm workspaces run on.
//!
//! `analyze`/`batch` requests also accept scenario-sweep fields:
//! `"corners"` (a `"min,typ,max"` string or array of corner names) with
//! `"derate"` (percent, default 10), or `"samples"` (seeded Monte-Carlo
//! scenario count) with `"seed"` — the report then carries a τ
//! distribution summary and per-arc criticality probabilities swept as
//! extra kernel lanes. `session.explore` accepts `"objective"`
//! (`"tau"` or `"tau-p95"`) and `"samples"`: `tau-p95` optimizes the
//! 95th-percentile τ over sampled delay scenarios.
//!
//! Unknown fields are rejected, not ignored — the same strictness the
//! CLI applies to unknown flags, so a typo'd option fails loudly instead
//! of silently running with defaults.
//!
//! Every request additionally accepts a `"deadline_ms"` field: the
//! wall-clock budget for that request. A request that exceeds it is
//! cancelled cooperatively and answered with a *structured* failure —
//! `ok: false` plus a machine-readable `code` (`"deadline_exceeded"`,
//! `"cancelled"`, `"overloaded"`, `"request_too_large"`) and
//! progress/backoff detail fields — so clients can branch on the code
//! instead of parsing prose.

use std::time::Duration;

use crate::json::Json;
use crate::ops::{AnalyzeOptions, EditOp, EditSpec, Objective, SimOptions, Source};
use crate::pool::ServeStats;
use tsg_core::analysis::wide::KernelBackend;
use tsg_core::analysis::Corner;
use tsg_sim::QueueKind;

/// A parsed request body.
#[derive(Clone, Debug)]
pub enum Command {
    /// Cycle-time analysis of one signal graph or netlist.
    Analyze {
        /// Where the specification text comes from.
        source: Source,
        /// Report options (subset of the CLI's `analyze` flags).
        opts: AnalyzeOptions,
    },
    /// Event simulation of one signal graph or netlist.
    Sim {
        /// Where the specification text comes from.
        source: Source,
        /// Simulation options (subset of the CLI's `sim` flags).
        opts: SimOptions,
    },
    /// Analysis sweep over many paths, one response with per-item
    /// results.
    Batch {
        /// The files to analyze, in order.
        paths: Vec<String>,
        /// Report options shared by every item.
        opts: AnalyzeOptions,
    },
    /// Service counters snapshot.
    Stats,
    /// Open an incremental analysis session under a client-chosen name.
    SessionOpen {
        /// The session name (scoped to the connection).
        session: String,
        /// Where the specification text comes from.
        source: Source,
        /// Delay assigned to arcs without a `.delay` annotation.
        default_delay: f64,
    },
    /// Apply a batch of delay and structural edits to an open session,
    /// as one transaction.
    SessionEdit {
        /// The session name.
        session: String,
        /// Label-addressed edits, applied as one batch.
        edits: Vec<EditOp>,
    },
    /// Run the speculative optimization loop on an open session.
    SessionExplore {
        /// The session name.
        session: String,
        /// Candidate moves to propose.
        moves: usize,
        /// Seed of the deterministic move generator (and of the sampled
        /// scenarios a `tau-p95` objective enables).
        seed: u64,
        /// What accepted moves must strictly lower.
        objective: Objective,
        /// Sampled scenario lanes a `tau-p95` objective scores over.
        samples: usize,
    },
    /// Close a session, discarding its warm state.
    SessionClose {
        /// The session name.
        session: String,
    },
}

impl Command {
    /// The session this command addresses, if any — what the dispatcher
    /// pins to a worker so per-session execution order is request order.
    pub fn session_name(&self) -> Option<&str> {
        match self {
            Command::SessionOpen { session, .. }
            | Command::SessionEdit { session, .. }
            | Command::SessionExplore { session, .. }
            | Command::SessionClose { session } => Some(session),
            _ => None,
        }
    }
}

/// One parsed request line.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request's `id`, echoed into the response (`null` if absent).
    pub id: Json,
    /// The request body.
    pub cmd: Command,
    /// Per-request wall-clock budget (`"deadline_ms"`); `None` falls
    /// back to the server's `--default-deadline`, if any.
    pub deadline: Option<Duration>,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns the id to echo (null when the line was not even an object)
/// plus a user-facing message.
pub fn parse_request(line: &str) -> Result<Request, (Json, String)> {
    let doc = Json::parse(line).map_err(|e| (Json::Null, format!("invalid JSON: {e}")))?;
    let Some(fields) = doc.entries() else {
        return Err((Json::Null, "request must be a JSON object".to_owned()));
    };
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    let fail = |msg: String| (id.clone(), msg);
    let cmd = doc
        .get("cmd")
        .ok_or_else(|| fail("request needs a \"cmd\" field".to_owned()))?
        .as_str()
        .ok_or_else(|| fail("\"cmd\" must be a string".to_owned()))?;

    let known: &[&str] = match cmd {
        "analyze" => &[
            "id",
            "cmd",
            "path",
            "text",
            "name",
            "diagram",
            "dot",
            "baselines",
            "slack",
            "default_delay",
            "kernel",
            "corners",
            "derate",
            "samples",
            "seed",
            "deadline_ms",
        ],
        "sim" => &[
            "id",
            "cmd",
            "path",
            "text",
            "name",
            "periods",
            "horizon",
            "default_delay",
            "queue",
            "deadline_ms",
        ],
        "batch" => &[
            "id",
            "cmd",
            "paths",
            "diagram",
            "dot",
            "baselines",
            "slack",
            "default_delay",
            "kernel",
            "corners",
            "derate",
            "samples",
            "seed",
            "deadline_ms",
        ],
        "stats" => &["id", "cmd", "deadline_ms"],
        "session.open" => &[
            "id",
            "cmd",
            "session",
            "path",
            "text",
            "name",
            "default_delay",
            "deadline_ms",
        ],
        "session.edit" => &["id", "cmd", "session", "edits", "deadline_ms"],
        "session.explore" => &[
            "id",
            "cmd",
            "session",
            "moves",
            "seed",
            "objective",
            "samples",
            "deadline_ms",
        ],
        "session.close" => &["id", "cmd", "session", "deadline_ms"],
        other => return Err(fail(format!("unknown cmd {other:?}"))),
    };
    for (key, _) in fields {
        if !known.contains(&key.as_str()) {
            let hint = if cmd == "sim" && key == "vcd" {
                "; waveform dumping is a one-shot CLI feature (`tsg sim --vcd`)"
            } else {
                ""
            };
            return Err(fail(format!("unknown field {key:?} for cmd {cmd:?}{hint}")));
        }
    }

    let body = match cmd {
        "analyze" => Command::Analyze {
            source: source_of(&doc).map_err(&fail)?,
            opts: analyze_opts(&doc).map_err(&fail)?,
        },
        "sim" => Command::Sim {
            source: source_of(&doc).map_err(&fail)?,
            opts: sim_opts(&doc).map_err(&fail)?,
        },
        "batch" => {
            let paths = doc
                .get("paths")
                .ok_or("batch needs a \"paths\" array".to_owned())
                .and_then(|v| {
                    v.as_array()
                        .ok_or("\"paths\" must be an array of strings".to_owned())
                })
                .map_err(&fail)?
                .iter()
                .map(|p| {
                    p.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| fail("\"paths\" must be an array of strings".to_owned()))
                })
                .collect::<Result<Vec<String>, _>>()?;
            Command::Batch {
                paths,
                opts: analyze_opts(&doc).map_err(&fail)?,
            }
        }
        "stats" => Command::Stats,
        "session.open" => Command::SessionOpen {
            session: session_of(&doc).map_err(&fail)?,
            source: source_of(&doc).map_err(&fail)?,
            default_delay: match doc.get("default_delay") {
                None => 1.0,
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| fail("\"default_delay\" must be a number".to_owned()))?,
            },
        },
        "session.edit" => Command::SessionEdit {
            session: session_of(&doc).map_err(&fail)?,
            edits: edits_of(&doc).map_err(&fail)?,
        },
        "session.explore" => Command::SessionExplore {
            session: session_of(&doc).map_err(&fail)?,
            moves: match doc.get("moves") {
                None => 16,
                Some(v) => v
                    .as_f64()
                    .filter(|m| m.fract() == 0.0 && *m >= 1.0 && *m <= 100_000.0)
                    .map(|m| m as usize)
                    .ok_or_else(|| fail("\"moves\" must be a positive integer".to_owned()))?,
            },
            seed: match doc.get("seed") {
                None => 0,
                Some(v) => v
                    .as_f64()
                    .filter(|s| s.fract() == 0.0 && *s >= 0.0 && *s <= u32::MAX as f64)
                    .map(|s| s as u64)
                    .ok_or_else(|| fail("\"seed\" must be a non-negative integer".to_owned()))?,
            },
            objective: match doc.get("objective") {
                None => Objective::Tau,
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| fail("\"objective\" must be a string".to_owned()))
                    .and_then(|s| Objective::parse(s).map_err(&fail))?,
            },
            samples: match doc.get("samples") {
                None => 16,
                Some(v) => v
                    .as_f64()
                    .filter(|s| s.fract() == 0.0 && *s >= 1.0 && *s <= 4096.0)
                    .map(|s| s as usize)
                    .ok_or_else(|| fail("\"samples\" must be an integer in 1..=4096".to_owned()))?,
            },
        },
        "session.close" => Command::SessionClose {
            session: session_of(&doc).map_err(&fail)?,
        },
        _ => unreachable!("cmd validated above"),
    };
    let deadline = match doc.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .filter(|ms| ms.is_finite() && *ms > 0.0)
                .and_then(|ms| Duration::try_from_secs_f64(ms / 1000.0).ok())
                .ok_or_else(|| fail("\"deadline_ms\" must be a positive number".to_owned()))?,
        ),
    };
    Ok(Request {
        id,
        cmd: body,
        deadline,
    })
}

/// Extracts the mandatory `session` name field.
fn session_of(doc: &Json) -> Result<String, String> {
    doc.get("session")
        .ok_or("session commands need a \"session\" name".to_owned())?
        .as_str()
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .ok_or("\"session\" must be a non-empty string".to_owned())
}

/// Extracts the `edits` array: bare `{src, dst, delay}` delay objects
/// or structural `{"op": ...}` objects.
fn edits_of(doc: &Json) -> Result<Vec<EditOp>, String> {
    let items = doc
        .get("edits")
        .ok_or("session.edit needs an \"edits\" array".to_owned())?
        .as_array()
        .ok_or("\"edits\" must be an array".to_owned())?;
    if items.is_empty() {
        return Err("\"edits\" must not be empty".to_owned());
    }
    items.iter().map(edit_op_of).collect()
}

/// Parses one `edits` entry.
fn edit_op_of(item: &Json) -> Result<EditOp, String> {
    let fields = item
        .entries()
        .ok_or_else(|| "each edit must be a JSON object".to_owned())?;
    let label = |key: &str| {
        item.get(key)
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .ok_or(format!("edit {key:?} must be a non-empty event label"))
    };
    let delay = || {
        item.get("delay")
            .and_then(Json::as_f64)
            .ok_or_else(|| "edit \"delay\" must be a number".to_owned())
    };
    let check = |known: &[&str]| {
        for (key, _) in fields {
            if !known.contains(&key.as_str()) {
                return Err(format!("unknown edit field {key:?}"));
            }
        }
        Ok(())
    };
    let Some(op) = item.get("op") else {
        // The legacy bare delay form.
        check(&["src", "dst", "delay"])?;
        return Ok(EditOp::Delay(EditSpec {
            src: label("src")?,
            dst: label("dst")?,
            delay: delay()?,
        }));
    };
    match op.as_str().ok_or("edit \"op\" must be a string")? {
        "delay" => {
            check(&["op", "src", "dst", "delay"])?;
            Ok(EditOp::Delay(EditSpec {
                src: label("src")?,
                dst: label("dst")?,
                delay: delay()?,
            }))
        }
        "add_arc" => {
            check(&["op", "src", "dst", "delay", "marked"])?;
            Ok(EditOp::AddArc {
                src: label("src")?,
                dst: label("dst")?,
                delay: delay()?,
                marked: match item.get("marked") {
                    None => false,
                    Some(v) => v.as_bool().ok_or("edit \"marked\" must be a boolean")?,
                },
            })
        }
        "remove_arc" => {
            check(&["op", "src", "dst"])?;
            Ok(EditOp::RemoveArc {
                src: label("src")?,
                dst: label("dst")?,
            })
        }
        "add_event" => {
            check(&["op", "label"])?;
            Ok(EditOp::AddEvent {
                label: label("label")?,
            })
        }
        "remove_event" => {
            check(&["op", "label"])?;
            Ok(EditOp::RemoveEvent {
                label: label("label")?,
            })
        }
        other => Err(format!(
            "unknown edit op {other:?} (expected delay, add_arc, remove_arc, add_event or \
             remove_event)"
        )),
    }
}

/// Extracts the `path` / `text`(+`name`) source fields.
fn source_of(doc: &Json) -> Result<Source, String> {
    match (doc.get("path"), doc.get("text")) {
        (Some(_), Some(_)) => Err("give either \"path\" or \"text\", not both".to_owned()),
        (Some(p), None) => {
            if doc.get("name").is_some() {
                return Err("\"name\" only applies to inline \"text\" sources".to_owned());
            }
            Ok(Source::Path(
                p.as_str().ok_or("\"path\" must be a string")?.to_owned(),
            ))
        }
        (None, Some(t)) => Ok(Source::Inline {
            name: match doc.get("name") {
                Some(n) => n.as_str().ok_or("\"name\" must be a string")?.to_owned(),
                None => "inline.g".to_owned(),
            },
            text: t.as_str().ok_or("\"text\" must be a string")?.to_owned(),
        }),
        (None, None) => Err("request needs a \"path\" or \"text\" source".to_owned()),
    }
}

fn bool_field(doc: &Json, key: &str) -> Result<bool, String> {
    match doc.get(key) {
        None => Ok(false),
        Some(v) => v.as_bool().ok_or(format!("{key:?} must be a boolean")),
    }
}

fn analyze_opts(doc: &Json) -> Result<AnalyzeOptions, String> {
    Ok(AnalyzeOptions {
        diagram: bool_field(doc, "diagram")?,
        dot: bool_field(doc, "dot")?,
        baselines: bool_field(doc, "baselines")?,
        slack: bool_field(doc, "slack")?,
        default_delay: match doc.get("default_delay") {
            None => 1.0,
            Some(v) => v.as_f64().ok_or("\"default_delay\" must be a number")?,
        },
        // Intra-request parallelism is pool-level in serve mode; the
        // warm path never consults this.
        threads: None,
        kernel: match doc.get("kernel") {
            None => KernelBackend::Auto,
            Some(v) => v
                .as_str()
                .ok_or("\"kernel\" must be a string".to_owned())
                .and_then(|s| s.parse::<KernelBackend>().map_err(|e| e.to_string()))?,
        },
        corners: corners_of(doc)?,
        derate: match doc.get("derate") {
            None => 10.0,
            Some(v) => v
                .as_f64()
                .filter(|d| d.is_finite() && *d >= 0.0 && *d < 100.0)
                .ok_or("\"derate\" must be a percentage in [0, 100)")?,
        },
        samples: match doc.get("samples") {
            None => 0,
            Some(v) => v
                .as_f64()
                .filter(|s| s.fract() == 0.0 && *s >= 1.0 && *s <= 4096.0)
                .map(|s| s as usize)
                .ok_or("\"samples\" must be an integer in 1..=4096")?,
        },
        seed: match doc.get("seed") {
            None => 0,
            Some(v) => v
                .as_f64()
                .filter(|s| s.fract() == 0.0 && *s >= 0.0 && *s <= u32::MAX as f64)
                .map(|s| s as u64)
                .ok_or("\"seed\" must be a non-negative integer")?,
        },
    })
}

/// Extracts the optional `corners` field: a `"min,typ,max"` string or
/// an array of corner names, each parsed strictly.
fn corners_of(doc: &Json) -> Result<Vec<Corner>, String> {
    let Some(v) = doc.get("corners") else {
        return Ok(Vec::new());
    };
    let names: Vec<String> = if let Some(s) = v.as_str() {
        s.split(',')
            .map(str::trim)
            .filter(|c| !c.is_empty())
            .map(str::to_owned)
            .collect()
    } else if let Some(items) = v.as_array() {
        items
            .iter()
            .map(|c| {
                c.as_str()
                    .map(str::to_owned)
                    .ok_or("\"corners\" entries must be strings".to_owned())
            })
            .collect::<Result<_, _>>()?
    } else {
        return Err("\"corners\" must be a string or array of corner names".to_owned());
    };
    if names.is_empty() {
        return Err("\"corners\" must name at least one corner".to_owned());
    }
    names
        .iter()
        .map(|n| n.parse::<Corner>().map_err(|e| e.to_string()))
        .collect()
}

fn sim_opts(doc: &Json) -> Result<SimOptions, String> {
    Ok(SimOptions {
        periods: match doc.get("periods") {
            None => None,
            Some(v) => Some(
                v.as_f64()
                    .filter(|p| p.fract() == 0.0 && *p >= 1.0 && *p <= u32::MAX as f64)
                    .map(|p| p as u32)
                    .ok_or("\"periods\" must be a positive integer")?,
            ),
        },
        horizon: match doc.get("horizon") {
            None => None,
            Some(v) => Some(
                v.as_f64()
                    .filter(|h| h.is_finite() && *h > 0.0)
                    .ok_or("\"horizon\" must be a positive number")?,
            ),
        },
        vcd: None,
        default_delay: match doc.get("default_delay") {
            None => None,
            Some(v) => Some(v.as_f64().ok_or("\"default_delay\" must be a number")?),
        },
        queue: match doc.get("queue") {
            None => QueueKind::Heap,
            Some(v) => v
                .as_str()
                .ok_or("\"queue\" must be a string".to_owned())
                .and_then(|s| s.parse::<QueueKind>())?,
        },
    })
}

/// One frame the streaming [`FrameDecoder`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete request line (without its newline), lossily decoded:
    /// invalid UTF-8 reaches the parser and fails there with a
    /// structured response instead of killing the connection.
    Line(String),
    /// A line that exceeded the byte cap. Its bytes were discarded as
    /// they arrived — the decoder never buffers more than the cap — and
    /// the frame surfaces once the terminating newline (or EOF) shows
    /// where the next request starts.
    Oversized,
}

/// Incremental newline-frame decoder for the multiplexed transports.
///
/// The readiness event loop reads whatever bytes a socket has — a
/// dribbling client may deliver one byte per poll tick — and feeds them
/// here; the decoder buffers the partial frame (bounded by the
/// `max_request_bytes` cap) and emits each request line exactly once as
/// its newline arrives, so a request split across arbitrarily many
/// reads resumes where it left off. Oversized lines are skipped in
/// place: the buffer is dropped, subsequent bytes are discarded
/// unbuffered, and one [`Frame::Oversized`] is emitted at the line's
/// end. This mirrors the blocking reader's framing byte for byte.
#[derive(Debug)]
pub struct FrameDecoder {
    /// Byte cap on one line's content (the newline is not counted).
    cap: usize,
    /// The partial frame accumulated so far; never grows past `cap`.
    buf: Vec<u8>,
    /// Mid-skip of an oversized line: discard until the next newline.
    skipping: bool,
}

impl FrameDecoder {
    /// A decoder capping each line's content at `cap` bytes.
    pub fn new(cap: usize) -> Self {
        FrameDecoder {
            cap,
            buf: Vec::new(),
            skipping: false,
        }
    }

    /// True while a frame is partially buffered (or being skipped) —
    /// i.e. the peer owes us the rest of a line.
    pub fn mid_frame(&self) -> bool {
        self.skipping || !self.buf.is_empty()
    }

    /// Consumes one read's worth of bytes, appending every frame they
    /// complete to `out` in arrival order.
    pub fn feed_into(&mut self, mut bytes: &[u8], out: &mut Vec<Frame>) {
        while !bytes.is_empty() {
            let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
                // No newline: buffer (or keep skipping) and wait.
                if !self.skipping {
                    if self.buf.len() + bytes.len() > self.cap {
                        self.buf.clear();
                        self.skipping = true;
                    } else {
                        self.buf.extend_from_slice(bytes);
                    }
                }
                return;
            };
            let (head, rest) = bytes.split_at(nl);
            bytes = &rest[1..];
            if self.skipping {
                self.skipping = false;
                out.push(Frame::Oversized);
            } else if self.buf.len() + head.len() > self.cap {
                self.buf.clear();
                out.push(Frame::Oversized);
            } else {
                self.buf.extend_from_slice(head);
                out.push(Frame::Line(String::from_utf8_lossy(&self.buf).into_owned()));
                self.buf.clear();
            }
        }
    }

    /// Flushes the partial frame at EOF: a client that half-closes
    /// without a trailing newline still gets its last request served
    /// (or its oversized line answered), matching the blocking reader.
    pub fn finish(&mut self) -> Option<Frame> {
        if self.skipping {
            self.skipping = false;
            return Some(Frame::Oversized);
        }
        if self.buf.is_empty() {
            return None;
        }
        let line = String::from_utf8_lossy(&self.buf).into_owned();
        self.buf.clear();
        Some(Frame::Line(line))
    }
}

/// A successful `analyze`/`sim` response.
pub fn ok_response(id: &Json, output: &str) -> String {
    Json::Obj(vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), Json::Bool(true)),
        ("output".to_owned(), Json::from(output)),
    ])
    .dump()
}

/// A per-request failure response (the request slot stays isolated: the
/// service keeps running).
pub fn err_response(id: &Json, error: &str) -> String {
    Json::Obj(vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), Json::Bool(false)),
        ("error".to_owned(), Json::from(error)),
    ])
    .dump()
}

/// A *structured* failure response: `code` is the machine-readable
/// category a client branches on (`"deadline_exceeded"`, `"cancelled"`,
/// `"overloaded"`, `"request_too_large"`), `error` the human-facing
/// message, and `detail` extra fields (progress counts, queue depth,
/// retry hints) appended verbatim.
pub fn coded_err_response(id: &Json, code: &str, error: &str, detail: &[(&str, Json)]) -> String {
    let mut fields = vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), Json::Bool(false)),
        ("code".to_owned(), Json::from(code)),
        ("error".to_owned(), Json::from(error)),
    ];
    for (key, value) in detail {
        fields.push(((*key).to_owned(), value.clone()));
    }
    Json::Obj(fields).dump()
}

/// The `overloaded` rejection an admission-controlled pool answers with
/// when its pending queue is full: carries the observed queue depth and
/// a retry-after backoff hint.
pub fn overloaded_response(id: &Json, queue_depth: usize, retry_after_ms: u64) -> String {
    coded_err_response(
        id,
        "overloaded",
        &format!(
            "pool is overloaded: {queue_depth} request(s) pending; \
             retry after {retry_after_ms} ms or raise --max-pending"
        ),
        &[
            ("queue_depth", Json::from(queue_depth as u64)),
            ("retry_after_ms", Json::from(retry_after_ms)),
        ],
    )
}

/// The `worker_lost` failure: the worker executing this request died
/// outside the per-request isolation boundary (a crash, not a caught
/// handler panic) and the pool respawned it with a fresh workspace. The
/// request may or may not have taken effect, so clients should treat it
/// like a timeout: retry idempotent work, and expect any incremental
/// sessions the dead worker held to be gone (follow-up session requests
/// answer "no session named ..." — reopen and replay).
pub fn worker_lost_response(id: &Json) -> String {
    coded_err_response(
        id,
        "worker_lost",
        "the worker executing this request died and was respawned; \
         retry, and reopen any incremental sessions it held",
        &[],
    )
}

/// The `request_too_large` rejection for a frame over the configured
/// line limit. The line is discarded unread, so no `id` can be echoed.
pub fn too_large_response(limit: usize) -> String {
    coded_err_response(
        &Json::Null,
        "request_too_large",
        &format!("request line exceeds the {limit}-byte limit (--max-request-bytes)"),
        &[("limit_bytes", Json::from(limit as u64))],
    )
}

/// A `batch` response: per-item results in input order.
pub fn batch_response(id: &Json, results: &[Result<String, String>]) -> String {
    let items: Vec<Json> = results
        .iter()
        .map(|r| match r {
            Ok(output) => Json::Obj(vec![
                ("ok".to_owned(), Json::Bool(true)),
                ("output".to_owned(), Json::from(output.as_str())),
            ]),
            Err(e) => Json::Obj(vec![
                ("ok".to_owned(), Json::Bool(false)),
                ("error".to_owned(), Json::from(e.as_str())),
            ]),
        })
        .collect();
    Json::Obj(vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), Json::Bool(true)),
        ("results".to_owned(), Json::Arr(items)),
    ])
    .dump()
}

/// A `stats` response: counters cover requests *completed* before this
/// one executed (the stats request itself is excluded). `kernel` is the
/// resolved wide-kernel backend the pool's workspaces run on; the
/// robustness counters let operators see degradation (rejections,
/// deadline aborts, timed-out clients) instead of guessing.
pub fn stats_response(id: &Json, stats: &ServeStats, kernel: &str) -> String {
    Json::Obj(vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), Json::Bool(true)),
        ("served".to_owned(), Json::from(stats.served)),
        ("failed".to_owned(), Json::from(stats.failed)),
        ("threads".to_owned(), Json::from(stats.threads as u64)),
        ("kernel".to_owned(), Json::from(kernel)),
        (
            "queue_depth".to_owned(),
            Json::from(stats.queue_depth as u64),
        ),
        (
            "rejected_overloaded".to_owned(),
            Json::from(stats.rejected_overloaded),
        ),
        (
            "deadline_exceeded".to_owned(),
            Json::from(stats.deadline_exceeded),
        ),
        ("cancelled".to_owned(), Json::from(stats.cancelled)),
        (
            "timed_out_connections".to_owned(),
            Json::from(stats.timed_out_connections),
        ),
        (
            "drained_in_flight".to_owned(),
            Json::from(stats.drained_in_flight),
        ),
        ("worker_lost".to_owned(), Json::from(stats.worker_lost)),
        (
            "worker_respawns".to_owned(),
            Json::from(stats.worker_respawns),
        ),
        (
            "active_connections".to_owned(),
            Json::from(stats.active_connections as u64),
        ),
        (
            "scenario_requests".to_owned(),
            Json::from(stats.scenario_requests),
        ),
        (
            "scenario_lanes".to_owned(),
            Json::from(stats.scenario_lanes),
        ),
    ])
    .dump()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_analyze_with_options() {
        let r = parse_request(r#"{"id":7,"cmd":"analyze","path":"a.g","baselines":true}"#).unwrap();
        assert_eq!(r.id, Json::Num(7.0));
        let Command::Analyze { source, opts } = r.cmd else {
            panic!("wrong cmd");
        };
        assert_eq!(source.name(), "a.g");
        assert!(opts.baselines);
        assert!(!opts.slack);
        assert_eq!(opts.default_delay, 1.0);
    }

    #[test]
    fn parses_inline_sim_source() {
        let r =
            parse_request(r#"{"cmd":"sim","text":".model m","name":"m.g","periods":3}"#).unwrap();
        assert_eq!(r.id, Json::Null);
        let Command::Sim { source, opts } = r.cmd else {
            panic!("wrong cmd");
        };
        assert_eq!(source.name(), "m.g");
        assert_eq!(source.read().unwrap(), ".model m");
        assert_eq!(opts.periods, Some(3));
        assert_eq!(opts.queue, QueueKind::Heap);
    }

    #[test]
    fn parses_queue_kind_and_rejects_unknown() {
        let r = parse_request(r#"{"cmd":"sim","path":"c.ckt","queue":"calendar"}"#).unwrap();
        let Command::Sim { opts, .. } = r.cmd else {
            panic!("wrong cmd");
        };
        assert_eq!(opts.queue, QueueKind::Calendar);
        let (_, e) = parse_request(r#"{"cmd":"sim","path":"c.ckt","queue":"splay"}"#).unwrap_err();
        assert!(e.contains("unknown queue backend"), "{e}");
    }

    #[test]
    fn parses_kernel_backend_and_rejects_unknown() {
        let r = parse_request(r#"{"cmd":"analyze","path":"a.g","kernel":"portable"}"#).unwrap();
        let Command::Analyze { opts, .. } = r.cmd else {
            panic!("wrong cmd");
        };
        assert_eq!(opts.kernel, KernelBackend::Portable);
        let r = parse_request(r#"{"cmd":"batch","paths":["a.g"],"kernel":"sse2"}"#).unwrap();
        let Command::Batch { opts, .. } = r.cmd else {
            panic!("wrong cmd");
        };
        assert_eq!(opts.kernel, KernelBackend::Sse2);
        let (_, e) =
            parse_request(r#"{"cmd":"analyze","path":"a.g","kernel":"avx512"}"#).unwrap_err();
        assert!(e.contains("unknown kernel backend"), "{e}");
        let (_, e) = parse_request(r#"{"cmd":"sim","path":"a.g","kernel":"avx2"}"#).unwrap_err();
        assert!(e.contains("unknown field"), "{e}");
    }

    #[test]
    fn rejects_unknown_fields_and_vcd() {
        let (id, e) =
            parse_request(r#"{"id":"x","cmd":"analyze","path":"a.g","wat":1}"#).unwrap_err();
        assert_eq!(id, Json::Str("x".into()));
        assert!(e.contains("unknown field \"wat\""), "{e}");
        let (_, e) = parse_request(r#"{"cmd":"sim","path":"a.g","vcd":"w.vcd"}"#).unwrap_err();
        assert!(e.contains("one-shot CLI"), "{e}");
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("nonsense", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"id":1}"#, "needs a \"cmd\""),
            (r#"{"cmd":"frob"}"#, "unknown cmd"),
            (r#"{"cmd":"analyze"}"#, "\"path\" or \"text\""),
            (r#"{"cmd":"analyze","path":"a.g","text":"x"}"#, "not both"),
            (r#"{"cmd":"analyze","path":"a.g","name":"x"}"#, "inline"),
            (
                r#"{"cmd":"sim","path":"a.g","periods":0}"#,
                "positive integer",
            ),
            (
                r#"{"cmd":"sim","path":"a.g","periods":1.5}"#,
                "positive integer",
            ),
            (
                r#"{"cmd":"sim","path":"a.g","horizon":-2}"#,
                "positive number",
            ),
            (r#"{"cmd":"batch"}"#, "\"paths\""),
            (r#"{"cmd":"batch","paths":[1]}"#, "array of strings"),
            (r#"{"cmd":"stats","path":"a.g"}"#, "unknown field"),
        ] {
            let (_, e) = parse_request(line).unwrap_err();
            assert!(e.contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn parses_structural_edit_ops() {
        let line = concat!(
            r#"{"cmd":"session.edit","session":"s","edits":["#,
            r#"{"src":"a+","dst":"c+","delay":5},"#,
            r#"{"op":"delay","src":"a+","dst":"c+","delay":6},"#,
            r#"{"op":"add_event","label":"s+"},"#,
            r#"{"op":"add_arc","src":"a+","dst":"s+","delay":1},"#,
            r#"{"op":"add_arc","src":"s+","dst":"c+","delay":1,"marked":true},"#,
            r#"{"op":"remove_arc","src":"a+","dst":"c+"},"#,
            r#"{"op":"remove_event","label":"s+"}]}"#
        );
        let r = parse_request(line).unwrap();
        let Command::SessionEdit { session, edits } = r.cmd else {
            panic!("wrong cmd");
        };
        assert_eq!(session, "s");
        assert_eq!(edits.len(), 7);
        // The bare legacy form and the explicit "op":"delay" form parse
        // to the same variant.
        assert!(matches!(&edits[0], EditOp::Delay(s) if s.delay == 5.0));
        assert!(matches!(&edits[1], EditOp::Delay(s) if s.delay == 6.0));
        assert!(matches!(&edits[2], EditOp::AddEvent { label } if label == "s+"));
        assert!(matches!(&edits[3], EditOp::AddArc { marked: false, .. }));
        assert!(matches!(&edits[4], EditOp::AddArc { marked: true, .. }));
        assert!(matches!(&edits[5], EditOp::RemoveArc { src, dst } if src == "a+" && dst == "c+"));
        assert!(matches!(&edits[6], EditOp::RemoveEvent { label } if label == "s+"));
    }

    #[test]
    fn rejects_malformed_edit_ops() {
        for (edit, needle) in [
            (r#"{"op":"frob"}"#, "unknown edit op"),
            (r#"{"op":"delay","src":"a+","dst":"c+"}"#, "\"delay\""),
            (r#"{"op":"add_arc","src":"a+","delay":1}"#, "\"dst\""),
            (
                r#"{"op":"add_arc","src":"a+","dst":"b+","delay":1,"marked":3}"#,
                "boolean",
            ),
            (r#"{"op":"add_event"}"#, "\"label\""),
            (r#"{"op":"add_event","label":""}"#, "non-empty"),
            (
                r#"{"op":"remove_arc","src":"a+","dst":"b+","delay":1}"#,
                "unknown edit field",
            ),
            (
                r#"{"src":"a+","dst":"b+","delay":1,"marked":true}"#,
                "unknown edit field",
            ),
            (r#"{"op":"remove_event","src":"a+"}"#, "unknown edit field"),
            (r#"7"#, "JSON object"),
        ] {
            let line = format!(r#"{{"cmd":"session.edit","session":"s","edits":[{edit}]}}"#);
            let (_, e) = parse_request(&line).unwrap_err();
            assert!(e.contains(needle), "{edit}: {e}");
        }
    }

    #[test]
    fn parses_session_explore_with_defaults_and_bounds() {
        let r = parse_request(r#"{"cmd":"session.explore","session":"s"}"#).unwrap();
        let Command::SessionExplore {
            session,
            moves,
            seed,
            objective,
            samples,
        } = r.cmd
        else {
            panic!("wrong cmd");
        };
        assert_eq!((session.as_str(), moves, seed), ("s", 16, 0));
        assert_eq!((objective, samples), (Objective::Tau, 16));
        let r = parse_request(
            r#"{"cmd":"session.explore","session":"s","moves":64,"seed":7,"objective":"tau-p95","samples":8}"#,
        )
        .unwrap();
        assert_eq!(r.cmd.session_name(), Some("s"));
        let Command::SessionExplore {
            moves,
            seed,
            objective,
            samples,
            ..
        } = r.cmd
        else {
            panic!("wrong cmd");
        };
        assert_eq!((moves, seed), (64, 7));
        assert_eq!((objective, samples), (Objective::TauP95, 8));
        for (bad, needle) in [
            (r#""moves":0"#, "\"moves\""),
            (r#""moves":2.5"#, "\"moves\""),
            (r#""seed":-1"#, "\"seed\""),
            (r#""objective":"area""#, "unknown objective"),
            (r#""samples":0"#, "\"samples\""),
            (r#""edits":[]"#, "unknown field"),
        ] {
            let line = format!(r#"{{"cmd":"session.explore","session":"s",{bad}}}"#);
            let (_, e) = parse_request(&line).unwrap_err();
            assert!(e.contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn parses_scenario_fields_and_rejects_bad_ones() {
        let r =
            parse_request(r#"{"cmd":"analyze","path":"a.g","corners":"min,typ,max","derate":5}"#)
                .unwrap();
        let Command::Analyze { opts, .. } = r.cmd else {
            panic!("wrong cmd");
        };
        assert_eq!(opts.corners, [Corner::Min, Corner::Typ, Corner::Max]);
        assert_eq!(opts.derate, 5.0);
        let r = parse_request(
            r#"{"cmd":"batch","paths":["a.g"],"corners":["max"],"samples":3,"seed":9}"#,
        )
        .unwrap();
        let Command::Batch { opts, .. } = r.cmd else {
            panic!("wrong cmd");
        };
        assert_eq!(opts.corners, [Corner::Max]);
        assert_eq!((opts.samples, opts.seed), (3, 9));
        for (bad, needle) in [
            (r#""corners":"fast""#, "unknown corner"),
            (r#""corners":"""#, "at least one"),
            (r#""corners":7"#, "\"corners\""),
            (r#""derate":100"#, "\"derate\""),
            (r#""derate":-1"#, "\"derate\""),
            (r#""samples":0"#, "\"samples\""),
            (r#""samples":1.5"#, "\"samples\""),
            (r#""seed":-3"#, "\"seed\""),
        ] {
            let line = format!(r#"{{"cmd":"analyze","path":"a.g",{bad}}}"#);
            let (_, e) = parse_request(&line).unwrap_err();
            assert!(e.contains(needle), "{line}: {e}");
        }
        let (_, e) = parse_request(r#"{"cmd":"sim","path":"a.g","corners":"min"}"#).unwrap_err();
        assert!(e.contains("unknown field"), "{e}");
    }

    #[test]
    fn parses_and_validates_deadlines() {
        let r = parse_request(r#"{"cmd":"stats"}"#).unwrap();
        assert_eq!(r.deadline, None);
        let r = parse_request(r#"{"cmd":"analyze","path":"a.g","deadline_ms":250}"#).unwrap();
        assert_eq!(r.deadline, Some(Duration::from_millis(250)));
        let r = parse_request(r#"{"cmd":"sim","path":"a.g","deadline_ms":0.5}"#).unwrap();
        assert_eq!(r.deadline, Some(Duration::from_micros(500)));
        for bad in ["0", "-5", "1e400", "\"fast\"", "null"] {
            let line = format!(r#"{{"cmd":"stats","deadline_ms":{bad}}}"#);
            let (_, e) = parse_request(&line).unwrap_err();
            assert!(
                e.contains("\"deadline_ms\"") || e.contains("invalid JSON"),
                "{line}: {e}"
            );
        }
    }

    #[test]
    fn structured_errors_carry_codes_and_detail() {
        let line = overloaded_response(&Json::Num(9.0), 32, 50);
        assert_eq!(
            line,
            concat!(
                r#"{"id":9,"ok":false,"code":"overloaded","#,
                r#""error":"pool is overloaded: 32 request(s) pending; "#,
                r#"retry after 50 ms or raise --max-pending","#,
                r#""queue_depth":32,"retry_after_ms":50}"#
            )
        );
        let line = too_large_response(1024);
        assert!(line.contains(r#""code":"request_too_large""#), "{line}");
        assert!(line.contains(r#""limit_bytes":1024"#), "{line}");
        assert!(line.starts_with(r#"{"id":null,"ok":false"#), "{line}");
    }

    #[test]
    fn responses_echo_ids_and_escape_output() {
        assert_eq!(
            ok_response(&Json::Num(3.0), "line1\nline2\n"),
            r#"{"id":3,"ok":true,"output":"line1\nline2\n"}"#
        );
        assert_eq!(
            err_response(&Json::Null, "bad \"quote\""),
            r#"{"id":null,"ok":false,"error":"bad \"quote\""}"#
        );
        let stats = ServeStats {
            served: 5,
            failed: 1,
            threads: 4,
            queue_depth: 2,
            rejected_overloaded: 1,
            deadline_exceeded: 3,
            cancelled: 0,
            timed_out_connections: 0,
            drained_in_flight: 0,
            worker_lost: 1,
            worker_respawns: 1,
            active_connections: 7,
            scenario_requests: 2,
            scenario_lanes: 6,
        };
        assert_eq!(
            stats_response(&Json::Str("s".into()), &stats, "avx2"),
            concat!(
                r#"{"id":"s","ok":true,"served":5,"failed":1,"threads":4,"kernel":"avx2","#,
                r#""queue_depth":2,"rejected_overloaded":1,"deadline_exceeded":3,"#,
                r#""cancelled":0,"timed_out_connections":0,"drained_in_flight":0,"#,
                r#""worker_lost":1,"worker_respawns":1,"active_connections":7,"#,
                r#""scenario_requests":2,"scenario_lanes":6}"#
            )
        );
        assert_eq!(
            batch_response(&Json::Num(1.0), &[Ok("a\n".into()), Err("e".into())]),
            r#"{"id":1,"ok":true,"results":[{"ok":true,"output":"a\n"},{"ok":false,"error":"e"}]}"#
        );
        let line = worker_lost_response(&Json::Num(9.0));
        assert!(
            line.starts_with(r#"{"id":9,"ok":false,"code":"worker_lost""#),
            "{line}"
        );
    }

    /// Feeds `chunks` into a fresh decoder and collects every frame.
    fn decode(cap: usize, chunks: &[&[u8]]) -> Vec<Frame> {
        let mut decoder = FrameDecoder::new(cap);
        let mut out = Vec::new();
        for chunk in chunks {
            decoder.feed_into(chunk, &mut out);
        }
        if let Some(tail) = decoder.finish() {
            out.push(tail);
        }
        out
    }

    #[test]
    fn frame_decoder_resumes_across_arbitrary_chunking() {
        // One read, two frames.
        assert_eq!(
            decode(64, &[b"{\"id\":1}\n{\"id\":2}\n"]),
            [
                Frame::Line("{\"id\":1}".into()),
                Frame::Line("{\"id\":2}".into())
            ]
        );
        // Byte-at-a-time dribble reassembles into the same frames.
        let script = b"{\"id\":1}\n{\"id\":2}\n";
        let bytes: Vec<&[u8]> = script.chunks(1).collect();
        assert_eq!(
            decode(64, &bytes),
            [
                Frame::Line("{\"id\":1}".into()),
                Frame::Line("{\"id\":2}".into())
            ]
        );
        // A split anywhere mid-frame resumes without loss.
        assert_eq!(
            decode(64, &[b"{\"id\"", b":1}\n{\"i", b"d\":2}\n"]),
            [
                Frame::Line("{\"id\":1}".into()),
                Frame::Line("{\"id\":2}".into())
            ]
        );
    }

    #[test]
    fn frame_decoder_skips_oversized_lines_in_bounded_memory() {
        // A line one byte over the cap is oversized; the cap itself fits.
        assert_eq!(
            decode(4, &[b"abcd\nabcde\nok!\n"]),
            [
                Frame::Line("abcd".into()),
                Frame::Oversized,
                Frame::Line("ok!".into())
            ]
        );
        // The oversized line's bytes are discarded as they stream in:
        // the buffer never holds more than the cap even for a huge line.
        let mut decoder = FrameDecoder::new(8);
        let mut out = Vec::new();
        for _ in 0..1000 {
            decoder.feed_into(b"xxxxxxxxxxxxxxxx", &mut out);
            assert!(decoder.buf.len() <= 8, "buffer stays under the cap");
        }
        assert!(out.is_empty(), "no frame until the line ends");
        assert!(decoder.mid_frame());
        decoder.feed_into(b"\nok\n", &mut out);
        assert_eq!(out, [Frame::Oversized, Frame::Line("ok".into())]);
        assert!(!decoder.mid_frame());
    }

    #[test]
    fn frame_decoder_flushes_partial_frame_at_eof() {
        // No trailing newline: EOF flushes the last request.
        assert_eq!(
            decode(64, &[b"{\"cmd\":\"stats\"}"]),
            [Frame::Line("{\"cmd\":\"stats\"}".into())]
        );
        // EOF mid-skip of an oversized line still reports it.
        assert_eq!(decode(2, &[b"abcdef"]), [Frame::Oversized]);
        // Invalid UTF-8 decodes lossily instead of killing the stream.
        let frames = decode(64, &[b"\xff\xfe{bad}\n"]);
        assert_eq!(frames.len(), 1);
        assert!(matches!(&frames[0], Frame::Line(l) if l.contains("{bad}")));
    }
}
