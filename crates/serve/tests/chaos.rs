//! Serve-tier hardening under fault injection.
//!
//! The acceptance bar of the hardened pool: with chaos armed (worker
//! panics, injected delays, garbled response writes, refused reads) the
//! pool itself never dies — every request on a healthy connection ends
//! in exactly one response line that is either the bit-identical normal
//! answer or a structured `deadline_exceeded` / `cancelled` /
//! `overloaded` / `request_too_large` error, the counters account for
//! every outcome, and shutdown drains within its deadline. Malformed,
//! truncated, interleaved and oversized frames (including randomized
//! junk) must never panic a worker or hang a session.

use std::io::{BufRead, BufReader, Cursor, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use tsg_serve::json::Json;
use tsg_serve::{serve, serve_tcp, ChaosConfig, Pool, ServeOptions, ServeStats};

/// One request line from `(key, value)` fields.
fn req(fields: &[(&str, Json)]) -> String {
    Json::Obj(
        fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    )
    .dump()
}

fn analyze_req(id: u64) -> String {
    req(&[
        ("id", Json::from(id)),
        ("cmd", Json::from("analyze")),
        ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
        ("name", Json::from("osc.g")),
    ])
}

fn sim_req(id: u64) -> String {
    req(&[
        ("id", Json::from(id)),
        ("cmd", Json::from("sim")),
        ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
        ("name", Json::from("osc.g")),
        ("periods", Json::Num(2.0)),
    ])
}

fn stats_req(id: u64) -> String {
    req(&[("id", Json::from(id)), ("cmd", Json::from("stats"))])
}

/// Runs one in-memory serve session, returning raw response lines and
/// the final pool counters.
fn run_serve(script: &str, opts: &ServeOptions) -> (Vec<String>, ServeStats) {
    let mut out = Vec::new();
    let stats = serve(Cursor::new(script.to_owned()), &mut out, opts, None)
        .expect("in-memory serve never hits I/O errors");
    let lines = String::from_utf8_lossy(&out)
        .lines()
        .map(str::to_owned)
        .collect();
    (lines, stats)
}

/// A dense two-phase barrier graph (`n` signals, every `+` transition
/// feeding every `-` and back, all return arcs marked): `n` border
/// events over `2n²` arcs, so the lockstep analysis is genuinely heavy
/// — seconds of matrix work at `n = 96` — while the spec text stays
/// well under the request byte cap. Deadline tests need a graph whose
/// analysis reliably outlives a few milliseconds on any machine.
fn dense_barrier_g(n: usize) -> String {
    use std::fmt::Write as _;
    let mut g = String::from(".model barrier\n.outputs");
    for i in 0..n {
        write!(g, " x{i}").unwrap();
    }
    g.push_str("\n.graph\n");
    for i in 0..n {
        write!(g, "x{i}+").unwrap();
        for j in 0..n {
            write!(g, " x{j}-").unwrap();
        }
        g.push('\n');
        write!(g, "x{i}-").unwrap();
        for j in 0..n {
            write!(g, " x{j}+").unwrap();
        }
        g.push('\n');
    }
    g.push_str(".marking {");
    for i in 0..n {
        for j in 0..n {
            write!(g, " <x{i}-,x{j}+>").unwrap();
        }
    }
    g.push_str(" }\n.end\n");
    g
}

/// The soak: panics and delays armed, two workers, 60 healthy requests.
/// The fault points fire deterministically every Nth crossing, so the
/// outcome counts are exact even though the request-to-worker mapping
/// is not: the pool survives all 8 injected panics, every request gets
/// exactly one in-order response, and `served + failed` accounts for
/// every line.
#[test]
fn chaos_soak_pool_survives_panics_and_delays() {
    let opts = ServeOptions {
        threads: Some(2),
        chaos: ChaosConfig {
            panic_every: 7,
            delay_every: 5,
            delay_ms: 1,
            ..ChaosConfig::default()
        },
        ..ServeOptions::default()
    };
    let total = 60u64;
    let script: String = (1..=total)
        .map(|i| match i % 3 {
            0 => stats_req(i) + "\n",
            1 => analyze_req(i) + "\n",
            _ => sim_req(i) + "\n",
        })
        .collect();
    let (lines, stats) = run_serve(&script, &opts);
    assert_eq!(lines.len(), total as usize, "one response per request");
    let mut panicked = 0u64;
    for (i, line) in lines.iter().enumerate() {
        let response = Json::parse(line).expect("no garble armed: every line parses");
        assert_eq!(
            response.get("id"),
            Some(&Json::Num((i + 1) as f64)),
            "responses stay in request order under chaos"
        );
        match response.get("ok") {
            Some(&Json::Bool(true)) => {}
            Some(&Json::Bool(false)) => {
                let msg = response.get("error").and_then(Json::as_str).unwrap();
                assert!(
                    msg.contains("chaos: injected worker panic"),
                    "healthy requests only fail by injected panic, got: {msg}"
                );
                panicked += 1;
            }
            other => panic!("response without ok field: {other:?}"),
        }
    }
    assert_eq!(panicked, total / 7, "panic point fires every 7th request");
    assert_eq!(stats.served, total - panicked);
    assert_eq!(stats.failed, panicked);
    assert_eq!(stats.queue_depth, 0, "nothing left behind");

    // The pool is still healthy after the soak: a fresh clean run on
    // the same options (chaos re-armed, counters fresh) serves fine.
    let (lines, stats) = run_serve(&(stats_req(1) + "\n"), &ServeOptions::default());
    assert!(lines[0].contains(r#""ok":true"#));
    assert_eq!((stats.served, stats.failed), (1, 0));
}

/// Garbling corrupts exactly every Nth written response line and
/// nothing else: clients see a framing error there, intact JSON
/// everywhere else, and the pool's own counters never notice.
#[test]
fn garble_corrupts_exactly_every_nth_response_line() {
    let opts = ServeOptions {
        threads: Some(1),
        chaos: ChaosConfig {
            garble_every: 3,
            ..ChaosConfig::default()
        },
        ..ServeOptions::default()
    };
    let script: String = (1..=9).map(|i| stats_req(i) + "\n").collect();
    let (lines, stats) = run_serve(&script, &opts);
    assert_eq!(lines.len(), 9, "garbling never drops or splits lines");
    for (i, line) in lines.iter().enumerate() {
        let parsed = Json::parse(line);
        if (i + 1) % 3 == 0 {
            assert!(parsed.is_err(), "line {} must be garbled: {line:?}", i + 1);
        } else {
            let response = parsed.expect("ungarbled lines stay intact");
            assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        }
    }
    assert_eq!(
        (stats.served, stats.failed),
        (9, 0),
        "garbling happens after accounting: the server-side answer was fine"
    );
}

/// A refused read surfaces as the session's I/O error after the
/// already-accepted requests get their responses — the reader fault
/// point models a connection dying mid-stream, not a request failure.
#[test]
fn injected_read_error_ends_session_after_accepted_work() {
    let opts = ServeOptions {
        threads: Some(1),
        chaos: ChaosConfig {
            read_err_every: 3,
            ..ChaosConfig::default()
        },
        ..ServeOptions::default()
    };
    let script: String = (1..=5).map(|i| stats_req(i) + "\n").collect();
    let mut out = Vec::new();
    let err = serve(Cursor::new(script), &mut out, &opts, None)
        .expect_err("the injected read error must propagate");
    assert!(err.to_string().contains("chaos: injected read error"));
    let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
    assert_eq!(lines.len(), 2, "reads 1 and 2 landed before read 3 failed");
    for line in lines {
        assert!(line.contains(r#""ok":true"#));
    }
}

/// The deadline acceptance test: a `deadline_ms` request against a
/// heavy graph comes back `deadline_exceeded` in bounded time with its
/// partial progress, while a concurrent small request on the same pool
/// completes normally, and the stats counter records the abort.
#[test]
fn deadline_exceeded_on_heavy_graph_while_small_request_completes() {
    let opts = ServeOptions {
        threads: Some(2),
        ..ServeOptions::default()
    };
    let script = [
        req(&[
            ("id", Json::from(1u64)),
            ("cmd", Json::from("analyze")),
            ("text", Json::from(dense_barrier_g(96).as_str())),
            ("name", Json::from("barrier.g")),
            ("deadline_ms", Json::Num(2.0)),
        ]),
        analyze_req(2),
    ]
    .join("\n")
        + "\n";
    let started = Instant::now();
    let (lines, stats) = run_serve(&script, &opts);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "a deadline-bounded request must not run to completion"
    );
    assert_eq!(lines.len(), 2);
    let aborted = Json::parse(&lines[0]).unwrap();
    assert_eq!(aborted.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(aborted.get("code"), Some(&Json::from("deadline_exceeded")));
    let done = aborted.get("done").and_then(Json::as_f64).unwrap();
    let total = aborted.get("total").and_then(Json::as_f64).unwrap();
    assert!(
        done < total,
        "progress must be partial: {done} of {total} rows"
    );
    let small = Json::parse(&lines[1]).unwrap();
    assert_eq!(small.get("ok"), Some(&Json::Bool(true)));
    assert!(
        small
            .get("output")
            .and_then(Json::as_str)
            .unwrap()
            .contains("cycle time: 10"),
        "the concurrent small request completes bit-identically"
    );
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!((stats.served, stats.failed), (1, 1));
}

/// A pool-wide default deadline applies to requests that carry none:
/// with an injected delay longer than the default, every request is
/// aborted as `deadline_exceeded` without any per-request field.
#[test]
fn default_deadline_applies_to_plain_requests() {
    let opts = ServeOptions {
        threads: Some(1),
        default_deadline: Some(Duration::from_millis(20)),
        chaos: ChaosConfig {
            delay_every: 1,
            delay_ms: 60,
            ..ChaosConfig::default()
        },
        ..ServeOptions::default()
    };
    let (lines, stats) = run_serve(&(analyze_req(1) + "\n"), &opts);
    let response = Json::parse(&lines[0]).unwrap();
    assert_eq!(response.get("code"), Some(&Json::from("deadline_exceeded")));
    assert_eq!(stats.deadline_exceeded, 1);
}

/// Admission control: with one worker held busy by an injected delay
/// and a pending cap of 1, a burst gets structured `overloaded`
/// rejections carrying the queue depth and a retry hint, the accepted
/// requests still complete, and the counters reconcile exactly.
#[test]
fn overload_rejections_are_structured_and_counted() {
    let opts = ServeOptions {
        threads: Some(1),
        max_pending: Some(1),
        chaos: ChaosConfig {
            delay_every: 1,
            delay_ms: 150,
            ..ChaosConfig::default()
        },
        ..ServeOptions::default()
    };
    let total = 5u64;
    let script: String = (1..=total).map(|i| stats_req(i) + "\n").collect();
    let (lines, stats) = run_serve(&script, &opts);
    assert_eq!(lines.len(), total as usize);
    let mut ok = 0u64;
    let mut overloaded = 0u64;
    for line in &lines {
        let response = Json::parse(line).unwrap();
        if response.get("ok") == Some(&Json::Bool(true)) {
            ok += 1;
        } else {
            assert_eq!(response.get("code"), Some(&Json::from("overloaded")));
            let retry = response
                .get("retry_after_ms")
                .and_then(Json::as_f64)
                .expect("overloaded responses carry a retry hint");
            assert!(retry >= 50.0);
            assert!(response.get("queue_depth").and_then(Json::as_f64).is_some());
            overloaded += 1;
        }
    }
    assert!(ok >= 1, "the first request is always admitted");
    assert!(overloaded >= 1, "the burst must overflow a cap of 1");
    assert_eq!(stats.served, ok);
    assert_eq!(stats.rejected_overloaded, overloaded);
    assert_eq!(stats.failed, overloaded);
    assert_eq!(stats.served + stats.failed, total);
}

/// The graceful-drain acceptance test, signal flag and all: shutdown is
/// raised while a worker sits in a long injected delay; the session
/// stops accepting, the drain watchdog cancels the straggler through
/// the drain group once the drain deadline passes, the request comes
/// back as a structured `cancelled`, and serve returns in bounded time
/// with the drain counters set.
#[test]
fn graceful_drain_cancels_stragglers_within_deadline() {
    let opts = ServeOptions {
        threads: Some(1),
        drain_deadline: Duration::from_millis(50),
        chaos: ChaosConfig {
            delay_every: 1,
            delay_ms: 400,
            ..ChaosConfig::default()
        },
        ..ServeOptions::default()
    };
    // The connection must outlive the shutdown signal (an EOF'd script
    // would end the session before the flag rises), so this runs over
    // TCP with the client holding its half open — the shape of a real
    // SIGINT against a live server.
    static FLAG: AtomicBool = AtomicBool::new(false);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let started = Instant::now();
    let server = std::thread::spawn(move || serve_tcp(listener, &opts, Some(&FLAG), None).unwrap());
    let mut client = std::net::TcpStream::connect(addr).unwrap();
    client
        .write_all((analyze_req(1) + "\n").as_bytes())
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    FLAG.store(true, Ordering::SeqCst);
    let mut line = String::new();
    BufReader::new(client.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    let stats = server.join().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "drain must complete promptly once the watchdog cancels"
    );
    let response = Json::parse(line.trim()).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(response.get("code"), Some(&Json::from("cancelled")));
    assert_eq!(stats.cancelled, 1);
    assert_eq!(
        stats.drained_in_flight, 1,
        "the watchdog counted the straggler it cancelled"
    );
}

/// A stalled client trips the socket read timeout: the connection ends
/// cleanly (counted, not an error) and the pool remains usable.
#[test]
fn tcp_read_timeout_ends_stalled_connection() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let opts = ServeOptions {
        threads: Some(1),
        io_timeout: Some(Duration::from_millis(100)),
        ..ServeOptions::default()
    };
    let server = std::thread::spawn(move || serve_tcp(listener, &opts, None, Some(1)).unwrap());
    let mut client = std::net::TcpStream::connect(addr).unwrap();
    client.write_all((stats_req(1) + "\n").as_bytes()).unwrap();
    let mut line = String::new();
    BufReader::new(client.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(line.contains(r#""ok":true"#));
    // Hold the connection open without sending anything: the server
    // must cut it on its own rather than wait forever.
    let stats = server.join().unwrap();
    assert_eq!(stats.timed_out_connections, 1);
    assert_eq!((stats.served, stats.failed), (1, 0));
    drop(client);
}

/// An oversized frame is skipped in bounded memory and answered with a
/// structured `request_too_large` (id unrecoverable, hence null); the
/// session keeps serving afterwards.
#[test]
fn oversized_frame_rejected_and_session_continues() {
    let opts = ServeOptions {
        threads: Some(1),
        max_request_bytes: 256,
        ..ServeOptions::default()
    };
    let huge = req(&[
        ("id", Json::from(2u64)),
        ("cmd", Json::from("analyze")),
        ("text", Json::from("x".repeat(600).as_str())),
    ]);
    assert!(huge.len() > 256);
    let script = [stats_req(1), huge, stats_req(3)].join("\n") + "\n";
    let (lines, stats) = run_serve(&script, &opts);
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains(r#""ok":true"#));
    let rejected = Json::parse(&lines[1]).unwrap();
    assert_eq!(rejected.get("id"), Some(&Json::Null));
    assert_eq!(rejected.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(rejected.get("code"), Some(&Json::from("request_too_large")));
    assert!(lines[2].contains(r#""ok":true"#));
    assert_eq!((stats.served, stats.failed), (2, 1));
}

/// Malformed and truncated frames each get exactly one structured
/// `ok: false` answer and never take the session or pool down.
#[test]
fn malformed_frames_never_kill_the_pool() {
    let frames = [
        r#"{"id": 1"#,                         // truncated object
        "definitely not json",                 // free text
        r#"{"cmd": 42}"#,                      // wrong type
        r#"[1, 2, 3]"#,                        // not an object
        r#""just a string""#,                  // scalar document
        r#"{"id": 6, "cmd": "analyze"}"#,      // missing source
        r#"{"id": 7, "cmd": "frobnicate"}"#,   // unknown cmd
        "{\"id\": 8, \"cmd\": \"stats\"\x00}", // embedded NUL
    ];
    let script = frames.join("\n") + "\n" + &stats_req(9) + "\n";
    let (lines, stats) = run_serve(&script, &ServeOptions::default());
    assert_eq!(lines.len(), frames.len() + 1);
    for line in &lines[..frames.len()] {
        let response = Json::parse(line).expect("errors are structured JSON");
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        assert!(response.get("error").and_then(Json::as_str).is_some());
    }
    let survivor = Json::parse(lines.last().unwrap()).unwrap();
    assert_eq!(survivor.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(stats.served, 1);
    assert_eq!(stats.failed, frames.len() as u64);
}

/// Interleaved sessions on one pool stay isolated: each connection gets
/// exactly its own responses, in its own order, even while another
/// connection is spraying garbage at the same workers.
#[test]
fn interleaved_connections_stay_isolated() {
    let pool = Arc::new(Pool::new(&ServeOptions {
        threads: Some(2),
        ..ServeOptions::default()
    }));
    let clean: String = (1..=10).map(|i| analyze_req(i) + "\n").collect();
    let dirty: String = (1..=10)
        .map(|i| format!("junk frame number {i}\n"))
        .collect();
    let spawn = |script: String| {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || {
            let mut out = Vec::new();
            pool.serve_session(Cursor::new(script), &mut out, None)
                .unwrap();
            String::from_utf8(out).unwrap()
        })
    };
    let clean_out = spawn(clean);
    let dirty_out = spawn(dirty);
    let clean_lines = clean_out.join().unwrap();
    let clean_lines: Vec<&str> = clean_lines.lines().collect();
    let dirty_lines = dirty_out.join().unwrap();
    let dirty_lines: Vec<&str> = dirty_lines.lines().collect();
    assert_eq!(clean_lines.len(), 10);
    assert_eq!(dirty_lines.len(), 10);
    let reference = Json::parse(clean_lines[0]).unwrap();
    for (i, line) in clean_lines.iter().enumerate() {
        let response = Json::parse(line).unwrap();
        assert_eq!(response.get("id"), Some(&Json::Num((i + 1) as f64)));
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            response.get("output"),
            reference.get("output"),
            "identical requests stay bit-identical despite the noisy neighbour"
        );
    }
    for line in &dirty_lines {
        let response = Json::parse(line).unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
    }
    let stats = pool.stats();
    assert_eq!((stats.served, stats.failed), (10, 10));
}

/// Deterministic junk from one seed: printable-ish characters weighted
/// toward JSON punctuation, so frames regularly look almost parseable.
fn junk_line(seed: u64, max_len: usize) -> String {
    const ALPHABET: &[u8] = br#"{}[]"':,.0123456789abcdefxyz \t null true"#;
    let mut state = seed | 1;
    let mut step = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let len = (step() as usize) % (max_len + 1);
    (0..len)
        .map(|_| ALPHABET[(step() as usize) % ALPHABET.len()] as char)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized frame fuzz: any batch of junk lines through a live
    /// pool yields exactly one structured response per non-blank,
    /// non-comment line — never a panic, never a hang, never an
    /// unparseable server-side answer.
    #[test]
    fn junk_frames_always_get_structured_answers(
        seed in 0u64..10_000,
        frames in 1usize..12,
        max_len in 1usize..120,
    ) {
        let script: String = (0..frames as u64)
            .map(|i| junk_line(seed.wrapping_add(i.wrapping_mul(0x9E37)), max_len) + "\n")
            .collect();
        let expected = script
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            })
            .count();
        let (lines, stats) = run_serve(&script, &ServeOptions { threads: Some(1), ..ServeOptions::default() });
        prop_assert_eq!(lines.len(), expected);
        for line in &lines {
            let response = Json::parse(line).expect("always structured JSON");
            prop_assert!(matches!(response.get("ok"), Some(Json::Bool(_))));
        }
        prop_assert_eq!(stats.served + stats.failed, expected as u64);
    }
}
