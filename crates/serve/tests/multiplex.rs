//! The multiplexed front-end acceptance bar.
//!
//! The readiness event loop must make hostile clients cheap: a
//! thousand idle, half-open or dribbling connections pin buffers, not
//! worker threads, so a healthy request arriving alongside them is
//! still answered promptly. Worker deaths outside the per-request
//! isolation boundary are healed by supervision — the in-flight
//! request is answered with a structured `worker_lost`, the session
//! slots the dead workspace held are released, and a respawned worker
//! keeps serving. Connection-level chaos (`rst`, `dribble`,
//! `halfopen`) degrades single connections without taking down the
//! loop, and every request still reconciles into exactly one counter.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Cursor, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use tsg_serve::json::Json;
use tsg_serve::{serve, serve_tcp, ChaosConfig, ServeOptions};

/// One request line from `(key, value)` fields.
fn req(fields: &[(&str, Json)]) -> String {
    Json::Obj(
        fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    )
    .dump()
}

fn stats_req(id: u64) -> String {
    req(&[("id", Json::from(id)), ("cmd", Json::from("stats"))])
}

fn open_req(id: u64, session: &str) -> String {
    req(&[
        ("id", Json::from(id)),
        ("cmd", Json::from("session.open")),
        ("session", Json::from(session)),
        ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
        ("name", Json::from("osc.g")),
    ])
}

/// The tentpole: 1024 connections that never complete a request — a
/// third fully idle, a third stuck mid-frame, a third that will finish
/// later — all parked on the event loop at once, while a well-behaved
/// control connection keeps getting prompt answers. The gauge must see
/// every parked connection, the stragglers must complete once they
/// finally finish their frames, and shutdown must reap the whole set
/// promptly with every counter reconciling.
#[test]
fn thousand_slow_clients_do_not_starve_healthy_requests() {
    const N: usize = 1024;
    static FLAG: AtomicBool = AtomicBool::new(false);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let opts = ServeOptions {
        threads: Some(2),
        ..ServeOptions::default()
    };
    let server = std::thread::spawn(move || serve_tcp(listener, &opts, Some(&FLAG), None).unwrap());

    let mut parked = Vec::new();
    let mut stragglers = Vec::new();
    for i in 0..N {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        match i % 3 {
            0 => parked.push(s), // idle: connected, never speaks
            1 => {
                // Half-open: a frame that never ends. The loop must
                // buffer the prefix and otherwise forget about it.
                s.write_all(br#"{"id":1,"cmd":"sta"#).unwrap();
                parked.push(s);
            }
            _ => {
                // Dribbler: same prefix, but this one finishes later.
                write!(s, "{{\"id\":{i},\"cmd\":\"st").unwrap();
                stragglers.push((i as u64, s));
            }
        }
    }

    // The healthy control connection: polled stats must answer
    // promptly despite the thousand parked peers, and eventually the
    // gauge sees all of them (accepts race the connect loop above).
    let mut control = std::net::TcpStream::connect(addr).unwrap();
    control
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut control_reader = BufReader::new(control.try_clone().unwrap());
    let mut polls = 0u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        control
            .write_all((stats_req(polls) + "\n").as_bytes())
            .unwrap();
        let started = Instant::now();
        let mut line = String::new();
        control_reader.read_line(&mut line).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "a healthy request must not wait behind parked connections"
        );
        polls += 1;
        let response = Json::parse(line.trim()).unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let active = response
            .get("active_connections")
            .and_then(Json::as_f64)
            .expect("stats carries the connection gauge");
        if active >= (N + 1) as f64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {active} of {} connections became visible",
            N + 1
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // The stragglers now finish their frames: every one must be
    // answered even though a thousand peers still sit stalled.
    let expected_stragglers = stragglers.len() as u64;
    for (id, s) in &mut stragglers {
        s.write_all(b"ats\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(s.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        let response = Json::parse(line.trim()).unwrap();
        assert_eq!(response.get("id"), Some(&Json::Num(*id as f64)));
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    }

    // Graceful shutdown reaps the entire parked set promptly — the
    // half-open prefixes are discarded, never answered as garbage.
    FLAG.store(true, Ordering::SeqCst);
    let started = Instant::now();
    let stats = server.join().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drain must not wait on stalled clients"
    );
    assert_eq!(stats.failed, 0, "no parked connection produced an error");
    assert_eq!(
        stats.served,
        polls + expected_stragglers,
        "every completed request reconciles, nothing else"
    );
    assert_eq!(stats.active_connections, 0);
    drop((parked, stragglers, control));
}

/// Worker supervision: an injected worker death outside the isolation
/// boundary answers the in-flight request with a structured
/// `worker_lost`, releases the session slots the dead workspace held
/// (the pool-wide cap frees up), and respawns a worker that keeps
/// serving — all visible in the counters.
#[test]
fn killed_worker_answers_worker_lost_and_respawns() {
    let opts = ServeOptions {
        threads: Some(1),
        max_sessions: Some(1),
        chaos: ChaosConfig {
            kill_every: 2,
            ..ChaosConfig::default()
        },
        ..ServeOptions::default()
    };
    let script = [
        open_req(1, "held"),
        req(&[
            ("id", Json::from(2u64)),
            ("cmd", Json::from("session.edit")),
            ("session", Json::from("held")),
            (
                "edits",
                Json::Arr(vec![Json::Obj(vec![
                    ("src".to_owned(), Json::from("a+")),
                    ("dst".to_owned(), Json::from("c+")),
                    ("delay".to_owned(), Json::Num(8.0)),
                ])]),
            ),
        ]),
        // Under a session cap of 1 this only succeeds if the dead
        // worker's slot was reconciled by the supervisor.
        open_req(3, "fresh"),
    ]
    .join("\n")
        + "\n";
    let mut out = Vec::new();
    let stats = serve(Cursor::new(script), &mut out, &opts, None).unwrap();
    let lines: Vec<String> = String::from_utf8_lossy(&out)
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(
        lines.len(),
        3,
        "one response per request, even the lost one"
    );
    let first = Json::parse(&lines[0]).unwrap();
    assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
    let lost = Json::parse(&lines[1]).unwrap();
    assert_eq!(lost.get("id"), Some(&Json::Num(2.0)));
    assert_eq!(lost.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(lost.get("code"), Some(&Json::from("worker_lost")));
    assert!(
        lost.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("respawned"),
        "the error tells the client what happened and what to do"
    );
    let healed = Json::parse(&lines[2]).unwrap();
    assert_eq!(
        healed.get("ok"),
        Some(&Json::Bool(true)),
        "the respawned worker serves, and the dead session's cap slot freed"
    );
    assert_eq!((stats.served, stats.failed), (2, 1));
    assert_eq!(stats.worker_lost, 1);
    assert_eq!(stats.worker_respawns, 1);
}

/// Frames arriving a few bytes at a time reassemble across event-loop
/// ticks, and a dribble-chaos response (written one byte per pacing
/// interval) still reaches the client intact.
#[test]
fn chunked_frames_and_dribbled_responses_survive() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let opts = ServeOptions {
        threads: Some(1),
        chaos: ChaosConfig {
            dribble_every: 1,
            dribble_ms: 1,
            ..ChaosConfig::default()
        },
        ..ServeOptions::default()
    };
    let server = std::thread::spawn(move || serve_tcp(listener, &opts, None, Some(1)).unwrap());
    let mut client = std::net::TcpStream::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let frame = stats_req(7) + "\n";
    for chunk in frame.as_bytes().chunks(5) {
        client.write_all(chunk).unwrap();
        client.flush().unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut line = String::new();
    BufReader::new(client.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    let response = Json::parse(line.trim()).expect("dribbled bytes reassemble");
    assert_eq!(response.get("id"), Some(&Json::Num(7.0)));
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    drop(client);
    let stats = server.join().unwrap();
    assert_eq!((stats.served, stats.failed), (1, 0));
}

/// `rst` chaos cuts the connection partway through the response bytes:
/// the client never sees a complete line, the server's accounting is
/// untouched (the answer was computed and counted before the write),
/// and the loop survives to report it.
#[test]
fn injected_rst_cuts_response_mid_line() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let opts = ServeOptions {
        threads: Some(1),
        chaos: ChaosConfig {
            rst_every: 1,
            ..ChaosConfig::default()
        },
        ..ServeOptions::default()
    };
    let server = std::thread::spawn(move || serve_tcp(listener, &opts, None, Some(1)).unwrap());
    let mut client = std::net::TcpStream::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    client.write_all((stats_req(1) + "\n").as_bytes()).unwrap();
    let mut line = String::new();
    let read = BufReader::new(client.try_clone().unwrap()).read_line(&mut line);
    assert!(
        read.is_err() || !line.ends_with('\n'),
        "the response must be cut mid-line, got {line:?}"
    );
    drop(client);
    let stats = server.join().unwrap();
    assert_eq!(
        (stats.served, stats.failed),
        (1, 0),
        "accounting happened before the injected cut"
    );
    assert_eq!(stats.active_connections, 0);
}

/// `halfopen` chaos accepts every Nth connection and then never reads
/// it: that client's requests go unanswered (it models a peer whose
/// accept succeeded into a dead socket), while the other connections
/// are served normally.
#[test]
fn halfopen_chaos_parks_every_nth_accept() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let opts = ServeOptions {
        threads: Some(1),
        chaos: ChaosConfig {
            halfopen_every: 2,
            ..ChaosConfig::default()
        },
        ..ServeOptions::default()
    };
    let server = std::thread::spawn(move || serve_tcp(listener, &opts, None, Some(2)).unwrap());

    // First accept: served normally.
    let mut healthy = std::net::TcpStream::connect(addr).unwrap();
    healthy
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    healthy.write_all((stats_req(1) + "\n").as_bytes()).unwrap();
    let mut line = String::new();
    BufReader::new(healthy.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(line.contains(r#""ok":true"#));

    // Second accept: parked by chaos — a request into it is never
    // answered; the client's read times out instead of hanging.
    let mut parked = std::net::TcpStream::connect(addr).unwrap();
    parked
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    parked.write_all((stats_req(2) + "\n").as_bytes()).unwrap();
    let mut unanswered = String::new();
    let read = BufReader::new(parked.try_clone().unwrap()).read_line(&mut unanswered);
    assert!(
        read.is_err(),
        "the half-open connection must stay silent, got {unanswered:?}"
    );

    drop(healthy);
    drop(parked);
    let stats = server.join().unwrap();
    assert_eq!(
        (stats.served, stats.failed),
        (1, 0),
        "the parked request never reached a worker"
    );
}

/// `max_connections` caps the live set: at the cap the listener is not
/// polled, so a further client waits unanswered in the OS backlog until
/// a slot frees, then is served from the bytes it already sent.
#[test]
fn max_connections_parks_excess_clients_in_backlog() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let opts = ServeOptions {
        threads: Some(1),
        max_connections: Some(1),
        ..ServeOptions::default()
    };
    let server = std::thread::spawn(move || serve_tcp(listener, &opts, None, Some(2)).unwrap());

    let mut first = std::net::TcpStream::connect(addr).unwrap();
    first
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    first.write_all((stats_req(1) + "\n").as_bytes()).unwrap();
    let mut line = String::new();
    BufReader::new(first.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(line.contains(r#""ok":true"#));

    // The second client connects (the kernel backlog accepts the
    // handshake) and sends its request, but at the cap the loop is not
    // accepting: nothing answers while the first connection lives.
    let mut second = std::net::TcpStream::connect(addr).unwrap();
    second
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    second.write_all((stats_req(2) + "\n").as_bytes()).unwrap();
    let mut early = String::new();
    let premature = BufReader::new(second.try_clone().unwrap()).read_line(&mut early);
    assert!(
        premature.is_err(),
        "past the cap nothing may be served, got {early:?}"
    );

    // Freeing the slot admits the waiter, which is then served from
    // the request bytes it queued while parked.
    drop(first);
    second
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut served = String::new();
    BufReader::new(second.try_clone().unwrap())
        .read_line(&mut served)
        .unwrap();
    let response = Json::parse(served.trim()).unwrap();
    assert_eq!(response.get("id"), Some(&Json::Num(2.0)));
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    drop(second);
    let stats = server.join().unwrap();
    assert_eq!((stats.served, stats.failed), (2, 0));
}
