//! Warm-pool guarantees and protocol-session behaviour of `tsg-serve`.
//!
//! The acceptance bar of the serve mode: responses arrive in request
//! order, byte-identical to the one-shot operations, with zero
//! per-request arena/queue allocation after warm-up (asserted through
//! the workspace capacity accessors), and failures isolated per request.

use std::io::{Cursor, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};

use tsg_serve::json::Json;
use tsg_serve::ops::{self, AnalyzeOptions, SimOptions, Source, Workspace};
use tsg_serve::{serve, serve_tcp, ServeOptions};
use tsg_sim::QueueKind;

/// One request line from `(key, value)` fields.
fn req(fields: &[(&str, Json)]) -> String {
    Json::Obj(
        fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    )
    .dump()
}

/// Runs a serve session over in-memory I/O, returning its parsed
/// response lines.
fn session(script: &str, threads: usize) -> Vec<Json> {
    let mut out = Vec::new();
    let opts = ServeOptions {
        threads: Some(threads),
    };
    serve(Cursor::new(script.to_owned()), &mut out, &opts, None).expect("in-memory serve");
    String::from_utf8(out)
        .expect("responses are UTF-8")
        .lines()
        .map(|line| Json::parse(line).expect("responses are valid JSON"))
        .collect()
}

fn inline_g() -> Source {
    Source::Inline {
        name: "osc.g".to_owned(),
        text: tsg_stg::EXAMPLE_OSCILLATOR.to_owned(),
    }
}

fn inline_ckt() -> Source {
    Source::Inline {
        name: "osc.ckt".to_owned(),
        text: tsg_circuit::parse::write_ckt(&tsg_circuit::library::c_element_oscillator()),
    }
}

#[test]
fn warm_analyze_is_allocation_free_and_byte_identical() {
    let mut ws = Workspace::new();
    let source = inline_g();
    let opts = AnalyzeOptions {
        baselines: true,
        slack: true,
        ..AnalyzeOptions::default()
    };
    let cold = {
        let sg = ops::load("osc.g", tsg_stg::EXAMPLE_OSCILLATOR, 1.0).unwrap();
        ops::report(&sg, &opts)
    };
    let first = ws.analyze(&source, &opts).unwrap();
    assert_eq!(first, cold, "warm path must match the one-shot report");
    let warm_caps = ws.arena_capacity();
    assert!(warm_caps.0 > 0, "first analyze warms the arena");
    for _ in 0..3 {
        let again = ws.analyze(&source, &opts).unwrap();
        assert_eq!(again, cold);
        assert_eq!(
            ws.arena_capacity(),
            warm_caps,
            "replaying an identical request must not touch the allocator"
        );
    }
}

#[test]
fn warm_sim_queues_stay_put_per_backend() {
    let mut ws = Workspace::new();
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        let g_opts = SimOptions {
            periods: Some(3),
            queue: kind,
            ..SimOptions::default()
        };
        let c_opts = SimOptions {
            horizon: Some(400.0),
            queue: kind,
            ..SimOptions::default()
        };
        let g_cold = Workspace::new().simulate(&inline_g(), &g_opts).unwrap();
        let c_cold = Workspace::new().simulate(&inline_ckt(), &c_opts).unwrap();
        assert_eq!(ws.simulate(&inline_g(), &g_opts).unwrap(), g_cold);
        assert_eq!(ws.simulate(&inline_ckt(), &c_opts).unwrap(), c_cold);
        let g_cap = ws.graph_queue_capacity(kind).expect("warmed");
        let c_cap = ws.netlist_queue_capacity(kind).expect("warmed");
        for _ in 0..3 {
            assert_eq!(ws.simulate(&inline_g(), &g_opts).unwrap(), g_cold);
            assert_eq!(ws.simulate(&inline_ckt(), &c_opts).unwrap(), c_cold);
            assert_eq!(ws.graph_queue_capacity(kind), Some(g_cap));
            assert_eq!(ws.netlist_queue_capacity(kind), Some(c_cap));
        }
    }
}

#[test]
fn failed_netlist_run_keeps_the_warm_queue() {
    // A zero-delay oscillation exhausts the event budget: the request
    // fails, but the queue must come back to the workspace.
    let mut ws = Workspace::new();
    let bad = Source::Inline {
        name: "loop.ckt".to_owned(),
        text: "gate a inv(a:0) = 0\n".to_owned(),
    };
    let opts = SimOptions {
        horizon: Some(10.0),
        ..SimOptions::default()
    };
    let err = ws.simulate(&bad, &opts).unwrap_err();
    assert!(err.contains("simulation failed"), "{err}");
    assert!(
        ws.netlist_queue_capacity(QueueKind::Heap).is_some(),
        "error isolation must not leak the warm queue"
    );
    // And the workspace still serves good requests afterwards.
    assert!(ws.simulate(&inline_ckt(), &opts).is_ok());
}

#[test]
fn responses_arrive_in_request_order_with_error_isolation() {
    let script = [
        req(&[
            ("id", Json::Num(0.0)),
            ("cmd", Json::from("analyze")),
            ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
            ("name", Json::from("osc.g")),
        ]),
        "this is not json".to_owned(),
        "# a comment line, skipped entirely".to_owned(),
        req(&[
            ("id", Json::Num(2.0)),
            ("cmd", Json::from("sim")),
            ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
            ("name", Json::from("osc.g")),
            ("periods", Json::Num(2.0)),
        ]),
        req(&[("id", Json::Num(3.0)), ("cmd", Json::from("frobnicate"))]),
        req(&[("id", Json::Num(4.0)), ("cmd", Json::from("stats"))]),
    ]
    .join("\n")
        + "\n";
    // Single worker: deterministic counters (requests complete in order).
    let responses = session(&script, 1);
    assert_eq!(responses.len(), 5, "one response per request line");
    let ids: Vec<&Json> = responses.iter().map(|r| r.get("id").unwrap()).collect();
    assert_eq!(
        ids,
        [
            &Json::Num(0.0),
            &Json::Null, // unparseable line: id unrecoverable
            &Json::Num(2.0),
            &Json::Num(3.0),
            &Json::Num(4.0),
        ]
    );
    assert_eq!(responses[0].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(responses[1].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(responses[3].get("ok"), Some(&Json::Bool(false)));
    // stats: 2 ok + 2 failures before it, itself excluded.
    assert_eq!(responses[4].get("served"), Some(&Json::Num(2.0)));
    assert_eq!(responses[4].get("failed"), Some(&Json::Num(2.0)));
    assert_eq!(responses[4].get("threads"), Some(&Json::Num(1.0)));
}

#[test]
fn parallel_pool_preserves_order_and_output() {
    // 24 requests of varying cost over 4 workers: responses must still
    // stream in request order and match the single-worker outputs.
    let mut script = String::new();
    for i in 0..24u32 {
        script.push_str(&req(&[
            ("id", Json::Num(f64::from(i))),
            ("cmd", Json::from("sim")),
            ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
            ("name", Json::from("osc.g")),
            ("periods", Json::Num(f64::from(1 + i % 7))),
        ]));
        script.push('\n');
    }
    let sequential = session(&script, 1);
    let parallel = session(&script, 4);
    assert_eq!(sequential, parallel);
    for (i, r) in parallel.iter().enumerate() {
        assert_eq!(r.get("id"), Some(&Json::Num(i as f64)));
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    }
}

#[test]
fn batch_sweeps_report_per_item_results_inline() {
    let dir = std::env::temp_dir().join("tsg-serve-batch-test");
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("osc.g");
    std::fs::write(&good, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
    let missing = dir.join("nope.g");
    let script = req(&[
        ("id", Json::Num(1.0)),
        ("cmd", Json::from("batch")),
        (
            "paths",
            Json::Arr(vec![
                Json::from(good.to_string_lossy().as_ref()),
                Json::from(missing.to_string_lossy().as_ref()),
            ]),
        ),
    ]) + "\n";
    let responses = session(&script, 2);
    assert_eq!(responses.len(), 1);
    let results = responses[0].get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].get("ok"), Some(&Json::Bool(true)));
    assert!(results[0]
        .get("output")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("cycle time: 10"));
    assert_eq!(results[1].get("ok"), Some(&Json::Bool(false)));
    assert!(results[1]
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("reading"));
}

#[test]
fn shutdown_flag_stops_accepting_but_flushes_accepted_work() {
    // A pre-raised flag: the session exits before reading anything.
    let flag = AtomicBool::new(true);
    let mut out = Vec::new();
    let stats = serve(
        Cursor::new(req(&[("cmd", Json::from("stats"))]) + "\n"),
        &mut out,
        &ServeOptions { threads: Some(1) },
        Some(&flag),
    )
    .unwrap();
    assert_eq!(stats.served + stats.failed, 0);
    assert!(out.is_empty());
    flag.store(false, Ordering::SeqCst);
}

#[test]
fn tcp_session_round_trips() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        serve_tcp(listener, &ServeOptions { threads: Some(2) }, None, Some(1)).unwrap()
    });
    let mut client = std::net::TcpStream::connect(addr).unwrap();
    let script = req(&[
        ("id", Json::Num(1.0)),
        ("cmd", Json::from("analyze")),
        ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
        ("name", Json::from("osc.g")),
    ]) + "\n";
    client.write_all(script.as_bytes()).unwrap();
    client.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = String::new();
    client.read_to_string(&mut reply).unwrap();
    let response = Json::parse(reply.trim()).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    assert!(response
        .get("output")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("cycle time: 10"));
    let stats = server.join().unwrap();
    assert_eq!((stats.served, stats.failed), (1, 0));
}

#[cfg(unix)]
#[test]
fn unix_socket_session_round_trips() {
    use std::os::unix::net::{UnixListener, UnixStream};
    let path = std::env::temp_dir().join(format!("tsg-serve-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).unwrap();
    let sock = path.clone();
    let server = std::thread::spawn(move || {
        tsg_serve::serve_unix(listener, &ServeOptions { threads: Some(1) }, None, Some(1)).unwrap()
    });
    let mut client = UnixStream::connect(&sock).unwrap();
    client
        .write_all(
            (req(&[("id", Json::from("u")), ("cmd", Json::from("stats"))]) + "\n").as_bytes(),
        )
        .unwrap();
    client.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = String::new();
    client.read_to_string(&mut reply).unwrap();
    assert!(reply.contains(r#""id":"u""#), "{reply}");
    let stats = server.join().unwrap();
    assert_eq!(stats.served, 1);
    let _ = std::fs::remove_file(&path);
}
