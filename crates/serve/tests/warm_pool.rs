//! Warm-pool guarantees and protocol-session behaviour of `tsg-serve`.
//!
//! The acceptance bar of the serve mode: responses arrive in request
//! order, byte-identical to the one-shot operations, with zero
//! per-request arena/queue allocation after warm-up (asserted through
//! the workspace capacity accessors), and failures isolated per request.

use std::io::{Cursor, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};

use tsg_serve::json::Json;
use tsg_serve::ops::{self, AnalyzeOptions, SimOptions, Source, Workspace};
use tsg_serve::{serve, serve_tcp, ServeOptions};
use tsg_sim::QueueKind;

/// One request line from `(key, value)` fields.
fn req(fields: &[(&str, Json)]) -> String {
    Json::Obj(
        fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    )
    .dump()
}

/// Runs a serve session over in-memory I/O, returning its parsed
/// response lines.
fn session(script: &str, threads: usize) -> Vec<Json> {
    let mut out = Vec::new();
    let opts = ServeOptions {
        threads: Some(threads),
        ..ServeOptions::default()
    };
    serve(Cursor::new(script.to_owned()), &mut out, &opts, None).expect("in-memory serve");
    String::from_utf8(out)
        .expect("responses are UTF-8")
        .lines()
        .map(|line| Json::parse(line).expect("responses are valid JSON"))
        .collect()
}

fn inline_g() -> Source {
    Source::Inline {
        name: "osc.g".to_owned(),
        text: tsg_stg::EXAMPLE_OSCILLATOR.to_owned(),
    }
}

fn inline_ckt() -> Source {
    Source::Inline {
        name: "osc.ckt".to_owned(),
        text: tsg_circuit::parse::write_ckt(&tsg_circuit::library::c_element_oscillator()),
    }
}

#[test]
fn warm_analyze_is_allocation_free_and_byte_identical() {
    let mut ws = Workspace::new();
    let source = inline_g();
    let opts = AnalyzeOptions {
        baselines: true,
        slack: true,
        ..AnalyzeOptions::default()
    };
    let cold = {
        let sg = ops::load("osc.g", tsg_stg::EXAMPLE_OSCILLATOR, 1.0).unwrap();
        ops::report(&sg, &opts)
    };
    let first = ws.analyze(&source, &opts, None).unwrap();
    assert_eq!(first, cold, "warm path must match the one-shot report");
    let warm_caps = ws.arena_capacity();
    assert!(warm_caps.0 > 0, "first analyze warms the wide lane matrix");
    assert!(warm_caps.1 > 0, "and the scalar finish arena");
    for _ in 0..3 {
        let again = ws.analyze(&source, &opts, None).unwrap();
        assert_eq!(again, cold);
        assert_eq!(
            ws.arena_capacity(),
            warm_caps,
            "replaying an identical request must not touch the allocator \
             (wide, scalar-times, scalar-parent capacities all constant)"
        );
    }
}

#[test]
fn warm_sim_queues_stay_put_per_backend() {
    let mut ws = Workspace::new();
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        let g_opts = SimOptions {
            periods: Some(3),
            queue: kind,
            ..SimOptions::default()
        };
        let c_opts = SimOptions {
            horizon: Some(400.0),
            queue: kind,
            ..SimOptions::default()
        };
        let g_cold = Workspace::new()
            .simulate(&inline_g(), &g_opts, None)
            .unwrap();
        let c_cold = Workspace::new()
            .simulate(&inline_ckt(), &c_opts, None)
            .unwrap();
        assert_eq!(ws.simulate(&inline_g(), &g_opts, None).unwrap(), g_cold);
        assert_eq!(ws.simulate(&inline_ckt(), &c_opts, None).unwrap(), c_cold);
        let g_cap = ws.graph_queue_capacity(kind).expect("warmed");
        let c_cap = ws.netlist_queue_capacity(kind).expect("warmed");
        for _ in 0..3 {
            assert_eq!(ws.simulate(&inline_g(), &g_opts, None).unwrap(), g_cold);
            assert_eq!(ws.simulate(&inline_ckt(), &c_opts, None).unwrap(), c_cold);
            assert_eq!(ws.graph_queue_capacity(kind), Some(g_cap));
            assert_eq!(ws.netlist_queue_capacity(kind), Some(c_cap));
        }
    }
}

#[test]
fn failed_netlist_run_keeps_the_warm_queue() {
    // A zero-delay oscillation exhausts the event budget: the request
    // fails, but the queue must come back to the workspace.
    let mut ws = Workspace::new();
    let bad = Source::Inline {
        name: "loop.ckt".to_owned(),
        text: "gate a inv(a:0) = 0\n".to_owned(),
    };
    let opts = SimOptions {
        horizon: Some(10.0),
        ..SimOptions::default()
    };
    let err = ws.simulate(&bad, &opts, None).unwrap_err().to_string();
    assert!(err.contains("simulation failed"), "{err}");
    assert!(
        ws.netlist_queue_capacity(QueueKind::Heap).is_some(),
        "error isolation must not leak the warm queue"
    );
    // And the workspace still serves good requests afterwards.
    assert!(ws.simulate(&inline_ckt(), &opts, None).is_ok());
}

#[test]
fn responses_arrive_in_request_order_with_error_isolation() {
    let script = [
        req(&[
            ("id", Json::Num(0.0)),
            ("cmd", Json::from("analyze")),
            ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
            ("name", Json::from("osc.g")),
        ]),
        "this is not json".to_owned(),
        "# a comment line, skipped entirely".to_owned(),
        req(&[
            ("id", Json::Num(2.0)),
            ("cmd", Json::from("sim")),
            ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
            ("name", Json::from("osc.g")),
            ("periods", Json::Num(2.0)),
        ]),
        req(&[("id", Json::Num(3.0)), ("cmd", Json::from("frobnicate"))]),
        req(&[("id", Json::Num(4.0)), ("cmd", Json::from("stats"))]),
    ]
    .join("\n")
        + "\n";
    // Single worker: deterministic counters (requests complete in order).
    let responses = session(&script, 1);
    assert_eq!(responses.len(), 5, "one response per request line");
    let ids: Vec<&Json> = responses.iter().map(|r| r.get("id").unwrap()).collect();
    assert_eq!(
        ids,
        [
            &Json::Num(0.0),
            &Json::Null, // unparseable line: id unrecoverable
            &Json::Num(2.0),
            &Json::Num(3.0),
            &Json::Num(4.0),
        ]
    );
    assert_eq!(responses[0].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(responses[1].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(responses[3].get("ok"), Some(&Json::Bool(false)));
    // stats: 2 ok + 2 failures before it, itself excluded.
    assert_eq!(responses[4].get("served"), Some(&Json::Num(2.0)));
    assert_eq!(responses[4].get("failed"), Some(&Json::Num(2.0)));
    assert_eq!(responses[4].get("threads"), Some(&Json::Num(1.0)));
}

#[test]
fn kernel_pinned_requests_and_stats_report_backend() {
    use tsg_core::analysis::KernelBackend;
    let analyze = |extra: &[(&str, Json)]| {
        let mut fields = vec![
            ("id", Json::Num(0.0)),
            ("cmd", Json::from("analyze")),
            ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
            ("name", Json::from("osc.g")),
        ];
        fields.extend(extra.iter().cloned());
        req(&fields)
    };
    let script = [
        analyze(&[]),
        analyze(&[("kernel", Json::from("portable"))]),
        req(&[("id", Json::Num(2.0)), ("cmd", Json::from("stats"))]),
    ]
    .join("\n")
        + "\n";
    let responses = session(&script, 1);
    assert_eq!(
        responses[0].get("output"),
        responses[1].get("output"),
        "a portable-pinned analysis is byte-identical to the auto one"
    );
    let kernel = responses[2]
        .get("kernel")
        .and_then(Json::as_str)
        .expect("stats reports the pool's kernel backend");
    assert!(["portable", "sse2", "avx2"].contains(&kernel), "{kernel}");
    // An explicitly requested backend the CPU lacks is refused with a
    // structured error, never silently downgraded.
    for backend in [KernelBackend::Sse2, KernelBackend::Avx2] {
        if backend.resolve().is_ok() {
            continue;
        }
        let responses = session(
            &(analyze(&[("kernel", Json::from(backend.name()))]) + "\n"),
            1,
        );
        assert_eq!(responses[0].get("ok"), Some(&Json::Bool(false)));
        let err = responses[0].get("error").and_then(Json::as_str).unwrap();
        assert!(err.contains("not available"), "{err}");
    }
}

#[test]
fn parallel_pool_preserves_order_and_output() {
    // 24 requests of varying cost over 4 workers: responses must still
    // stream in request order and match the single-worker outputs.
    let mut script = String::new();
    for i in 0..24u32 {
        script.push_str(&req(&[
            ("id", Json::Num(f64::from(i))),
            ("cmd", Json::from("sim")),
            ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
            ("name", Json::from("osc.g")),
            ("periods", Json::Num(f64::from(1 + i % 7))),
        ]));
        script.push('\n');
    }
    let sequential = session(&script, 1);
    let parallel = session(&script, 4);
    assert_eq!(sequential, parallel);
    for (i, r) in parallel.iter().enumerate() {
        assert_eq!(r.get("id"), Some(&Json::Num(i as f64)));
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    }
}

#[test]
fn batch_sweeps_report_per_item_results_inline() {
    let dir = std::env::temp_dir().join("tsg-serve-batch-test");
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("osc.g");
    std::fs::write(&good, tsg_stg::EXAMPLE_OSCILLATOR).unwrap();
    let missing = dir.join("nope.g");
    let script = req(&[
        ("id", Json::Num(1.0)),
        ("cmd", Json::from("batch")),
        (
            "paths",
            Json::Arr(vec![
                Json::from(good.to_string_lossy().as_ref()),
                Json::from(missing.to_string_lossy().as_ref()),
            ]),
        ),
    ]) + "\n";
    let responses = session(&script, 2);
    assert_eq!(responses.len(), 1);
    let results = responses[0].get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].get("ok"), Some(&Json::Bool(true)));
    assert!(results[0]
        .get("output")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("cycle time: 10"));
    assert_eq!(results[1].get("ok"), Some(&Json::Bool(false)));
    assert!(results[1]
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("reading"));
}

#[test]
fn shutdown_flag_stops_accepting_but_flushes_accepted_work() {
    // A pre-raised flag: the session exits before reading anything.
    let flag = AtomicBool::new(true);
    let mut out = Vec::new();
    let stats = serve(
        Cursor::new(req(&[("cmd", Json::from("stats"))]) + "\n"),
        &mut out,
        &ServeOptions {
            threads: Some(1),
            ..ServeOptions::default()
        },
        Some(&flag),
    )
    .unwrap();
    assert_eq!(stats.served + stats.failed, 0);
    assert!(out.is_empty());
    flag.store(false, Ordering::SeqCst);
}

#[test]
fn incremental_session_protocol_round_trips() {
    // open → edit (dirty subset) → edit back → close, plus the error
    // paths: unknown session, double open, bad labels. Single worker so
    // the script is fully deterministic.
    let osc = Json::from(tsg_stg::EXAMPLE_OSCILLATOR);
    let edit = |id: f64, src: &str, dst: &str, delay: f64| {
        req(&[
            ("id", Json::Num(id)),
            ("cmd", Json::from("session.edit")),
            ("session", Json::from("s1")),
            (
                "edits",
                Json::Arr(vec![Json::Obj(vec![
                    ("src".to_owned(), Json::from(src)),
                    ("dst".to_owned(), Json::from(dst)),
                    ("delay".to_owned(), Json::Num(delay)),
                ])]),
            ),
        ])
    };
    let script = [
        req(&[
            ("id", Json::Num(0.0)),
            ("cmd", Json::from("session.open")),
            ("session", Json::from("s1")),
            ("text", osc.clone()),
            ("name", Json::from("osc.g")),
        ]),
        edit(1.0, "a+", "c+", 8.0),
        edit(2.0, "a+", "c+", 3.0),
        // Error paths, all isolated per request:
        req(&[
            ("id", Json::Num(3.0)),
            ("cmd", Json::from("session.open")),
            ("session", Json::from("s1")),
            ("text", osc.clone()),
        ]),
        req(&[
            ("id", Json::Num(4.0)),
            ("cmd", Json::from("session.edit")),
            ("session", Json::from("nope")),
            (
                "edits",
                Json::Arr(vec![Json::Obj(vec![
                    ("src".to_owned(), Json::from("a+")),
                    ("dst".to_owned(), Json::from("c+")),
                    ("delay".to_owned(), Json::Num(1.0)),
                ])]),
            ),
        ]),
        edit(5.0, "a+", "zz", 1.0),
        req(&[
            ("id", Json::Num(6.0)),
            ("cmd", Json::from("session.close")),
            ("session", Json::from("s1")),
        ]),
        req(&[
            ("id", Json::Num(7.0)),
            ("cmd", Json::from("session.close")),
            ("session", Json::from("s1")),
        ]),
    ]
    .join("\n")
        + "\n";
    let responses = session(&script, 1);
    assert_eq!(responses.len(), 8);
    let out = |i: usize| responses[i].get("output").and_then(Json::as_str).unwrap();
    let err = |i: usize| responses[i].get("error").and_then(Json::as_str).unwrap();

    assert!(out(0).contains("opened session \"s1\""), "{}", out(0));
    assert!(out(0).contains("cycle time: 10"), "{}", out(0));
    // Stretching a+ -> c+ to 8 moves τ to 15 (the a-loop lengthens by 5).
    assert!(out(1).contains("cycle time: 15"), "{}", out(1));
    assert!(out(1).contains("re-simulated"), "{}", out(1));
    // Editing back restores the original analysis exactly.
    assert!(out(2).contains("cycle time: 10"), "{}", out(2));
    assert!(err(3).contains("already open"), "{}", err(3));
    assert!(err(4).contains("no open session \"nope\""), "{}", err(4));
    assert!(err(5).contains("no event labelled \"zz\""), "{}", err(5));
    assert!(out(6).contains("closed session \"s1\" after 2 edit(s)"));
    assert!(err(7).contains("no open session"), "{}", err(7));
}

#[test]
fn session_edits_survive_worker_pinning_under_load() {
    // Many interleaved sessions and plain requests over several workers:
    // per-session edit order must be request order (each session's final
    // τ proves its last edit won), and responses still stream in global
    // request order.
    let osc = Json::from(tsg_stg::EXAMPLE_OSCILLATOR);
    let mut script = String::new();
    let mut id = 0.0;
    for s in 0..6 {
        script.push_str(&req(&[
            ("id", Json::Num(id)),
            ("cmd", Json::from("session.open")),
            ("session", Json::from(format!("s{s}").as_str())),
            ("text", osc.clone()),
            ("name", Json::from("osc.g")),
        ]));
        script.push('\n');
        id += 1.0;
    }
    // Interleave edits across sessions; the LAST edit per session sets
    // a+ -> c+ to 3 + s, so τ = 10 + s.
    for round in 0..4 {
        for s in 0..6 {
            let delay = if round < 3 {
                20.0 + round as f64
            } else {
                3.0 + s as f64
            };
            script.push_str(&req(&[
                ("id", Json::Num(id)),
                ("cmd", Json::from("session.edit")),
                ("session", Json::from(format!("s{s}").as_str())),
                (
                    "edits",
                    Json::Arr(vec![Json::Obj(vec![
                        ("src".to_owned(), Json::from("a+")),
                        ("dst".to_owned(), Json::from("c+")),
                        ("delay".to_owned(), Json::Num(delay)),
                    ])]),
                ),
            ]));
            script.push('\n');
            id += 1.0;
        }
    }
    let responses = session(&script, 4);
    assert_eq!(responses.len(), 30);
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(r.get("id"), Some(&Json::Num(i as f64)), "order");
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "request {i}");
    }
    for s in 0..6usize {
        let last = &responses[6 + 18 + s];
        let output = last.get("output").and_then(Json::as_str).unwrap();
        let want = format!("cycle time: {}", 10 + s);
        assert!(output.contains(&want), "session s{s}: {output}");
    }
}

#[test]
fn workspace_sweeps_a_connections_sessions() {
    let mut ws = Workspace::new();
    ws.session_open(1, "a", &inline_g(), 1.0, None).unwrap();
    ws.session_open(1, "b", &inline_g(), 1.0, None).unwrap();
    ws.session_open(2, "a", &inline_g(), 1.0, None).unwrap();
    assert_eq!(ws.open_sessions(), 3);
    ws.close_conn_sessions(1);
    assert_eq!(ws.open_sessions(), 1);
    // Connection 2's session survives and is still editable.
    let out = ws
        .session_edit(
            2,
            "a",
            &[ops::EditOp::Delay(ops::EditSpec {
                src: "a+".to_owned(),
                dst: "c+".to_owned(),
                delay: 6.0,
            })],
            None,
        )
        .unwrap();
    assert!(out.contains("cycle time: 13"), "{out}");
    ws.close_conn_sessions(2);
    assert_eq!(ws.open_sessions(), 0);
}

#[test]
fn workspace_applies_structural_edits_transactionally() {
    let mut ws = Workspace::new();
    ws.session_open(1, "s", &inline_g(), 1.0, None).unwrap();
    // Pipeline-split a+ -> c+ through a fresh event in ONE batch: the
    // AddArc ops address "x+" before the graph has it, exercising the
    // pending-label resolution.
    let out = ws
        .session_edit(
            1,
            "s",
            &[
                ops::EditOp::AddEvent {
                    label: "x+".to_owned(),
                },
                ops::EditOp::AddArc {
                    src: "a+".to_owned(),
                    dst: "x+".to_owned(),
                    delay: 1.5,
                    marked: false,
                },
                ops::EditOp::AddArc {
                    src: "x+".to_owned(),
                    dst: "c+".to_owned(),
                    delay: 1.5,
                    marked: true,
                },
                ops::EditOp::RemoveArc {
                    src: "a+".to_owned(),
                    dst: "c+".to_owned(),
                },
            ],
            None,
        )
        .unwrap();
    // The extra token halves the a-cycle; the b-path cycle now rules.
    assert!(out.contains("cycle time: 8"), "{out}");
    assert!(out.contains("re-simulated"), "{out}");
    // A batch naming a now-gone arc is rejected whole...
    let err = ws
        .session_edit(
            1,
            "s",
            &[ops::EditOp::RemoveArc {
                src: "a+".to_owned(),
                dst: "c+".to_owned(),
            }],
            None,
        )
        .unwrap_err();
    assert!(err.to_string().contains("no arc from"), "{err}");
    // ...and a batch that would orphan an event rolls back whole too.
    let err = ws
        .session_edit(
            1,
            "s",
            &[ops::EditOp::AddEvent {
                label: "orphan".to_owned(),
            }],
            None,
        )
        .unwrap_err();
    assert!(err.to_string().contains("invalid structural edit"), "{err}");
    // The session survives both rejections with its state intact.
    let out = ws
        .session_edit(
            1,
            "s",
            &[ops::EditOp::Delay(ops::EditSpec {
                src: "b+".to_owned(),
                dst: "c+".to_owned(),
                delay: 2.0,
            })],
            None,
        )
        .unwrap();
    assert!(out.contains("cycle time: 8"), "{out}");
}

#[test]
fn workspace_explore_is_monotone_deterministic_and_verified() {
    let mut ws = Workspace::new();
    ws.session_open(1, "a", &inline_g(), 1.0, None).unwrap();
    ws.session_open(1, "b", &inline_g(), 1.0, None).unwrap();
    let out = ws
        .session_explore(1, "a", 16, 42, ops::Objective::Tau, 16, None)
        .unwrap();
    assert_eq!(out.matches("move ").count(), 16, "{out}");
    assert!(out.contains("optimized: tau 10 -> "), "{out}");
    assert!(
        out.contains("verified: bit-identical to a from-scratch analysis"),
        "{out}"
    );
    // The committed τ trajectory is monotone non-increasing: each move
    // starts from the previous committed value, accepted moves strictly
    // improve it, rejected moves leave it untouched.
    let mut committed = 10.0_f64;
    let mut accepted = 0usize;
    for line in out.lines().filter(|l| l.starts_with("move ")) {
        let rest = line.split("tau ").nth(1).expect("move line shape");
        let (before, rest) = rest.split_once(" -> ").expect("move line shape");
        let before: f64 = before.parse().unwrap();
        let after: f64 = rest.split(' ').next().unwrap().parse().unwrap();
        assert_eq!(before, committed, "{line}");
        if line.contains("(accepted") {
            assert!(after < before, "{line}");
            accepted += 1;
        } else {
            assert_eq!(after, before, "{line}");
        }
        committed = after;
    }
    let final_tau: f64 = out
        .split("optimized: tau 10 -> ")
        .nth(1)
        .unwrap()
        .split(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(final_tau, committed, "summary matches the trajectory");
    assert!(out.contains(&format!("{accepted} accepted")), "{out}");
    // Same seed on an identical session reproduces the run exactly.
    assert_eq!(
        ws.session_explore(1, "b", 16, 42, ops::Objective::Tau, 16, None)
            .unwrap(),
        out
    );
}

#[test]
fn protocol_sessions_take_structural_edits_and_explore() {
    let mut script = String::new();
    let open = req(&[
        ("id", Json::Num(0.0)),
        ("cmd", Json::from("session.open")),
        ("session", Json::from("s")),
        ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
        ("name", Json::from("osc.g")),
    ]);
    script.push_str(&open);
    script.push('\n');
    // One transactional structural batch: splice a pipeline stage.
    script.push_str(concat!(
        r#"{"id":1,"cmd":"session.edit","session":"s","edits":["#,
        r#"{"op":"add_event","label":"x+"},"#,
        r#"{"op":"add_arc","src":"a+","dst":"x+","delay":1.5},"#,
        r#"{"op":"add_arc","src":"x+","dst":"c+","delay":1.5,"marked":true},"#,
        r#"{"op":"remove_arc","src":"a+","dst":"c+"}]}"#,
    ));
    script.push('\n');
    // A rejected batch answers ok:false but keeps the session open.
    script.push_str(concat!(
        r#"{"id":2,"cmd":"session.edit","session":"s","edits":["#,
        r#"{"op":"remove_event","label":"x+"}]}"#,
    ));
    script.push('\n');
    script.push_str(r#"{"id":3,"cmd":"session.explore","session":"s","moves":8,"seed":3}"#);
    script.push('\n');
    script.push_str(r#"{"id":4,"cmd":"session.close","session":"s"}"#);
    script.push('\n');
    let responses = session(&script, 2);
    assert_eq!(responses.len(), 5);
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(r.get("id"), Some(&Json::Num(i as f64)), "order");
        let want_ok = i != 2;
        assert_eq!(r.get("ok"), Some(&Json::Bool(want_ok)), "request {i}");
    }
    let edited = responses[1].get("output").and_then(Json::as_str).unwrap();
    assert!(edited.contains("cycle time: 8"), "{edited}");
    assert!(edited.contains("re-simulated"), "{edited}");
    let error = responses[2].get("error").and_then(Json::as_str).unwrap();
    assert!(error.contains("invalid structural edit"), "{error}");
    let explored = responses[3].get("output").and_then(Json::as_str).unwrap();
    assert!(explored.contains("optimized: tau 8 -> "), "{explored}");
    assert!(
        explored.contains("verified: bit-identical to a from-scratch analysis"),
        "{explored}"
    );
}

#[test]
fn two_simultaneous_tcp_clients_share_one_pool() {
    use std::io::{BufRead, BufReader};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        serve_tcp(
            listener,
            &ServeOptions {
                threads: Some(2),
                ..ServeOptions::default()
            },
            None,
            Some(2),
        )
        .unwrap()
    });

    let mut a = std::net::TcpStream::connect(addr).unwrap();
    let mut b = std::net::TcpStream::connect(addr).unwrap();
    let request = |id: f64| {
        req(&[
            ("id", Json::Num(id)),
            ("cmd", Json::from("analyze")),
            ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
            ("name", Json::from("osc.g")),
        ]) + "\n"
    };
    // B is served while A's connection is still open and idle — the old
    // one-connection-at-a-time loop would block here forever.
    b.write_all(request(2.0).as_bytes()).unwrap();
    let mut b_reader = BufReader::new(b.try_clone().unwrap());
    let mut line = String::new();
    b_reader.read_line(&mut line).unwrap();
    let response = Json::parse(line.trim()).unwrap();
    assert_eq!(response.get("id"), Some(&Json::Num(2.0)));
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));

    // A still gets served afterwards, on the same pool.
    a.write_all(request(1.0).as_bytes()).unwrap();
    let mut a_reader = BufReader::new(a.try_clone().unwrap());
    let mut line = String::new();
    a_reader.read_line(&mut line).unwrap();
    let response = Json::parse(line.trim()).unwrap();
    assert_eq!(response.get("id"), Some(&Json::Num(1.0)));
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));

    a.shutdown(std::net::Shutdown::Both).unwrap();
    b.shutdown(std::net::Shutdown::Both).unwrap();
    let stats = server.join().unwrap();
    assert_eq!((stats.served, stats.failed), (2, 0));
    assert_eq!(stats.threads, 2);
}

#[test]
fn sessions_are_scoped_per_connection() {
    use std::io::{BufRead, BufReader};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        serve_tcp(
            listener,
            &ServeOptions {
                threads: Some(2),
                ..ServeOptions::default()
            },
            None,
            Some(2),
        )
        .unwrap()
    });

    let mut a = std::net::TcpStream::connect(addr).unwrap();
    let mut b = std::net::TcpStream::connect(addr).unwrap();
    let open = req(&[
        ("id", Json::Num(1.0)),
        ("cmd", Json::from("session.open")),
        ("session", Json::from("shared-name")),
        ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
        ("name", Json::from("osc.g")),
    ]) + "\n";
    let read_one = |stream: &std::net::TcpStream| {
        let mut line = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        Json::parse(line.trim()).unwrap()
    };
    a.write_all(open.as_bytes()).unwrap();
    assert_eq!(read_one(&a).get("ok"), Some(&Json::Bool(true)));
    // The same name opens independently on the other connection: no
    // collision, because sessions are connection-scoped.
    b.write_all(open.as_bytes()).unwrap();
    assert_eq!(read_one(&b).get("ok"), Some(&Json::Bool(true)));

    a.shutdown(std::net::Shutdown::Both).unwrap();
    b.shutdown(std::net::Shutdown::Both).unwrap();
    server.join().unwrap();
}

#[test]
fn tcp_session_round_trips() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        serve_tcp(
            listener,
            &ServeOptions {
                threads: Some(2),
                ..ServeOptions::default()
            },
            None,
            Some(1),
        )
        .unwrap()
    });
    let mut client = std::net::TcpStream::connect(addr).unwrap();
    let script = req(&[
        ("id", Json::Num(1.0)),
        ("cmd", Json::from("analyze")),
        ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
        ("name", Json::from("osc.g")),
    ]) + "\n";
    client.write_all(script.as_bytes()).unwrap();
    client.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = String::new();
    client.read_to_string(&mut reply).unwrap();
    let response = Json::parse(reply.trim()).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    assert!(response
        .get("output")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("cycle time: 10"));
    let stats = server.join().unwrap();
    assert_eq!((stats.served, stats.failed), (1, 0));
}

#[cfg(unix)]
#[test]
fn unix_socket_session_round_trips() {
    use std::os::unix::net::{UnixListener, UnixStream};
    let path = std::env::temp_dir().join(format!("tsg-serve-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).unwrap();
    let sock = path.clone();
    let server = std::thread::spawn(move || {
        tsg_serve::serve_unix(
            listener,
            &ServeOptions {
                threads: Some(1),
                ..ServeOptions::default()
            },
            None,
            Some(1),
        )
        .unwrap()
    });
    let mut client = UnixStream::connect(&sock).unwrap();
    client
        .write_all(
            (req(&[("id", Json::from("u")), ("cmd", Json::from("stats"))]) + "\n").as_bytes(),
        )
        .unwrap();
    client.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = String::new();
    client.read_to_string(&mut reply).unwrap();
    assert!(reply.contains(r#""id":"u""#), "{reply}");
    let stats = server.join().unwrap();
    assert_eq!(stats.served, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn session_cap_rejects_opens_beyond_the_limit() {
    // One worker so the pinned-lane script is fully deterministic:
    // two sessions fit, the third is refused with a structured error,
    // and closing one frees its slot for a retry.
    let osc = Json::from(tsg_stg::EXAMPLE_OSCILLATOR);
    let open = |id: f64, name: &str| {
        req(&[
            ("id", Json::Num(id)),
            ("cmd", Json::from("session.open")),
            ("session", Json::from(name)),
            ("text", osc.clone()),
            ("name", Json::from("osc.g")),
        ]) + "\n"
    };
    let close = |id: f64, name: &str| {
        req(&[
            ("id", Json::Num(id)),
            ("cmd", Json::from("session.close")),
            ("session", Json::from(name)),
        ]) + "\n"
    };
    let script = [
        open(1.0, "a"),
        open(2.0, "b"),
        open(3.0, "c"),
        close(4.0, "a"),
        open(5.0, "c"),
        close(6.0, "b"),
        close(7.0, "c"),
    ]
    .concat();
    let mut out = Vec::new();
    let opts = ServeOptions {
        threads: Some(1),
        max_sessions: Some(2),
        ..ServeOptions::default()
    };
    serve(Cursor::new(script), &mut out, &opts, None).unwrap();
    let responses: Vec<Json> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .collect();
    assert_eq!(responses.len(), 7);
    for (i, want_ok) in [true, true, false, true, true, true, true]
        .iter()
        .enumerate()
    {
        assert_eq!(
            responses[i].get("ok"),
            Some(&Json::Bool(*want_ok)),
            "request {}",
            i + 1
        );
    }
    let error = responses[2].get("error").and_then(Json::as_str).unwrap();
    assert!(
        error.contains("session limit reached: 2 of 2"),
        "structured error names the cap: {error}"
    );
    assert!(error.contains("--max-sessions"), "{error}");
}

#[test]
fn failed_session_open_does_not_leak_a_cap_slot() {
    // A cap of one: an open that fails to parse must release its
    // reserved slot, so the next valid open still fits.
    let script = [
        req(&[
            ("id", Json::Num(1.0)),
            ("cmd", Json::from("session.open")),
            ("session", Json::from("bad")),
            ("text", Json::from("this is not an stg file")),
            ("name", Json::from("bad.g")),
        ]) + "\n",
        req(&[
            ("id", Json::Num(2.0)),
            ("cmd", Json::from("session.open")),
            ("session", Json::from("good")),
            ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
            ("name", Json::from("osc.g")),
        ]) + "\n",
    ]
    .concat();
    let mut out = Vec::new();
    let opts = ServeOptions {
        threads: Some(1),
        max_sessions: Some(1),
        ..ServeOptions::default()
    };
    serve(Cursor::new(script), &mut out, &opts, None).unwrap();
    let responses: Vec<Json> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .collect();
    assert_eq!(responses[0].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        responses[1].get("ok"),
        Some(&Json::Bool(true)),
        "slot must be free after the failed open: {:?}",
        responses[1]
    );
}

#[test]
fn disconnect_sweep_releases_cap_slots() {
    // A client leaves its session open; the end-of-connection sweep must
    // hand the slot back so the next protocol session on the same pool
    // can open one under a cap of 1.
    let opts = ServeOptions {
        threads: Some(2),
        max_sessions: Some(1),
        ..ServeOptions::default()
    };
    let pool = tsg_serve::Pool::new(&opts);
    let open = req(&[
        ("id", Json::Num(1.0)),
        ("cmd", Json::from("session.open")),
        ("session", Json::from("left-open")),
        ("text", Json::from(tsg_stg::EXAMPLE_OSCILLATOR)),
        ("name", Json::from("osc.g")),
    ]) + "\n";
    for round in 0..3 {
        let mut out = Vec::new();
        pool.serve_session(Cursor::new(open.clone()), &mut out, None)
            .unwrap();
        let response = Json::parse(String::from_utf8(out).unwrap().trim()).unwrap();
        assert_eq!(
            response.get("ok"),
            Some(&Json::Bool(true)),
            "round {round}: sweep must have freed the slot: {response:?}"
        );
    }
}
