//! Exhaustive cycle enumeration — the "straightforward approach" of
//! Section II, kept as exact ground truth for small graphs.

use tsg_core::analysis::CycleTime;
use tsg_core::{ArcId, SignalGraph};
use tsg_graph::cycles::{simple_cycles_bounded, TooManyCycles};

/// Every simple cycle of a graph with its length and occurrence period
/// (Example 5's table).
#[derive(Clone, Debug)]
pub struct CycleInventory {
    /// Each simple cycle as original-graph arcs, with `(length, ε)`.
    pub cycles: Vec<(Vec<ArcId>, f64, u32)>,
}

impl CycleInventory {
    /// Enumerates all simple cycles of `sg`, failing beyond `limit`.
    ///
    /// # Errors
    ///
    /// Returns [`TooManyCycles`] when the graph has more than `limit`
    /// simple cycles — the exponential blow-up the paper's algorithm is
    /// designed to avoid.
    pub fn build(sg: &SignalGraph, limit: usize) -> Result<Self, TooManyCycles> {
        let view = sg.repetitive_view();
        let raw = simple_cycles_bounded(&view.graph, limit)?;
        let cycles = raw
            .into_iter()
            .map(|edges| {
                let arcs: Vec<ArcId> = edges.iter().map(|e| view.arcs[e.index()]).collect();
                let len = sg.path_length(&arcs);
                let eps = sg.occurrence_period(&arcs);
                (arcs, len, eps)
            })
            .collect();
        Ok(CycleInventory { cycles })
    }

    /// The critical cycle: the entry maximising `length / ε`.
    pub fn critical(&self) -> Option<&(Vec<ArcId>, f64, u32)> {
        self.cycles
            .iter()
            .max_by(|a, b| (a.1 * b.2 as f64).total_cmp(&(b.1 * a.2 as f64)))
    }

    /// Number of simple cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// `true` when the graph has no cycles.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }
}

/// Computes the cycle time by exhaustive enumeration:
/// `τ = max { C/ε | C a simple cycle }` (Proposition 5's corollary).
///
/// # Errors
///
/// Returns [`TooManyCycles`] past `limit` cycles.
///
/// # Examples
///
/// ```
/// let sg = tsg_gen::ring(6, 2, 5.0);
/// let tau = tsg_baselines::enumerate_cycle_time(&sg, 10_000).unwrap().unwrap();
/// assert_eq!(tau.as_f64(), 15.0);
/// ```
pub fn enumerate_cycle_time(
    sg: &SignalGraph,
    limit: usize,
) -> Result<Option<CycleTime>, TooManyCycles> {
    let inv = CycleInventory::build(sg, limit)?;
    Ok(inv
        .critical()
        .map(|(_, len, eps)| CycleTime::new(*len, *eps)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn example5_four_simple_cycles() {
        // Example 5: C1..C4 with lengths 10, 8, 8, 6, all ε = 1.
        let sg = figure2();
        let inv = CycleInventory::build(&sg, 100).unwrap();
        assert_eq!(inv.len(), 4);
        let mut lengths: Vec<f64> = inv.cycles.iter().map(|c| c.1).collect();
        lengths.sort_by(f64::total_cmp);
        assert_eq!(lengths, vec![6.0, 8.0, 8.0, 10.0]);
        assert!(inv.cycles.iter().all(|c| c.2 == 1));
    }

    #[test]
    fn example6_cycle_time() {
        // Example 6: τ = max{10, 8, 8, 6} = 10.
        let sg = figure2();
        let tau = enumerate_cycle_time(&sg, 100).unwrap().unwrap();
        assert_eq!(tau.as_f64(), 10.0);
        assert_eq!(tau.periods(), 1);
    }

    #[test]
    fn critical_is_c1() {
        let sg = figure2();
        let inv = CycleInventory::build(&sg, 100).unwrap();
        let (arcs, len, eps) = inv.critical().unwrap();
        assert_eq!(*len, 10.0);
        assert_eq!(*eps, 1);
        let labels: Vec<String> = arcs
            .iter()
            .map(|&a| sg.label(sg.arc(a).src()).to_string())
            .collect();
        assert!(labels.contains(&"a+".to_owned()));
        assert!(labels.contains(&"a-".to_owned()));
        assert!(!labels.contains(&"b+".to_owned()));
    }

    #[test]
    fn agrees_with_paper_algorithm() {
        use tsg_core::analysis::CycleTimeAnalysis;
        let sg = figure2();
        let fast = CycleTimeAnalysis::run(&sg).unwrap().cycle_time();
        let slow = enumerate_cycle_time(&sg, 100).unwrap().unwrap();
        assert_eq!(fast.as_f64(), slow.as_f64());
    }

    #[test]
    fn limit_is_enforced() {
        let sg = figure2();
        assert!(enumerate_cycle_time(&sg, 2).is_err());
    }

    #[test]
    fn acyclic_inventory_is_empty() {
        let mut b = SignalGraph::builder();
        let s = b.initial_event("s");
        let t = b.finite_event("t");
        b.arc(s, t, 1.0);
        let sg = b.build().unwrap();
        let inv = CycleInventory::build(&sg, 10).unwrap();
        assert!(inv.is_empty());
        assert!(enumerate_cycle_time(&sg, 10).unwrap().is_none());
    }
}
