//! The naive long-run estimate of the cycle time.
//!
//! Runs the plain timing simulation for many periods and estimates `τ` from
//! the late-time slope of an event's occurrence times. This is the approach
//! Section II and Figure 4 caution against: it converges asymptotically but
//! gives no exactness guarantee at any finite horizon — which is precisely
//! what the benchmarks demonstrate by comparing it with the exact
//! algorithms.
//!
//! The simulation itself runs event-drivenly on the shared `tsg-sim`
//! kernel ([`EventSimulation`]), the same queue that powers the
//! gate-level netlist simulator; [`longrun_estimate_batch`] fans whole
//! scenario sweeps out across threads with [`BatchRunner`].
//!
//! # Lane-batched Monte-Carlo estimation
//!
//! [`longrun_estimate_mc`] perturbs every arc delay by an independent
//! multiplicative jitter drawn from a seeded stream and re-runs the
//! estimator — the usual way to probe how sensitive a long-run estimate
//! is to delay uncertainty. [`longrun_estimate_mc_lanes`] runs K such
//! seeds at once as lanes of a single lockstep event-advance pass over
//! the unfolding: the token-counting rules of the event-driven kernel
//! are mirrored structurally (one schedule for all lanes), and only the
//! per-lane delays differ. Because firing times are maxima over the same
//! contribution set, the lockstep pass is bit-identical to running the
//! event-driven simulation once per seed — lane `k` reproduces
//! `longrun_estimate_mc(sg, periods, jitter, seeds[k])` exactly, and at
//! `jitter == 0` every lane reproduces [`longrun_estimate`] itself.
//! Each lane carries its own convergence verdict (tail slope vs the
//! reported second-half slope).

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use tsg_core::analysis::event_sim::EventSimulation;
use tsg_core::SignalGraph;
use tsg_sim::BatchRunner;

/// Estimates the cycle time from a `periods`-long timing simulation as the
/// average occurrence distance of a border event over the second half of
/// the horizon.
///
/// Returns `None` for graphs without repetitive events or `periods < 2`.
///
/// # Examples
///
/// ```
/// let sg = tsg_gen::ring(6, 2, 5.0);
/// let est = tsg_baselines::longrun_estimate(&sg, 64).unwrap();
/// assert!((est - 15.0).abs() < 1e-9);
/// ```
pub fn longrun_estimate(sg: &SignalGraph, periods: u32) -> Option<f64> {
    if periods < 2 {
        return None;
    }
    let probe = *sg.border_events().first()?;
    let sim = EventSimulation::run(sg, periods);
    let mid = periods / 2;
    let t_mid = sim.time(probe, mid)?;
    let t_end = sim.time(probe, periods - 1)?;
    Some((t_end - t_mid) / (periods - 1 - mid) as f64)
}

/// Runs [`longrun_estimate`] over many independent scenarios in parallel.
///
/// Scenario simulations share nothing, so they scale across threads on
/// the kernel's [`BatchRunner`]; results come back in input order, making
/// the batch observably identical to a sequential loop over
/// [`longrun_estimate`].
///
/// Sizes its pool with [`BatchRunner::sized`], the workspace's one
/// pool-sizing rule; pass an explicit runner through
/// [`longrun_estimate_batch_on`] to share a pool or honour a
/// `--threads` flag.
///
/// # Examples
///
/// ```
/// let scenarios: Vec<_> = (2..10).map(|k| tsg_gen::ring(12, k, 3.0)).collect();
/// let estimates = tsg_baselines::longrun_estimate_batch(&scenarios, 64);
/// assert_eq!(estimates.len(), 8);
/// assert!(estimates.iter().all(|e| e.is_some()));
/// ```
pub fn longrun_estimate_batch(scenarios: &[SignalGraph], periods: u32) -> Vec<Option<f64>> {
    longrun_estimate_batch_on(&BatchRunner::sized(None), scenarios, periods)
}

/// [`longrun_estimate_batch`] on a caller-provided runner — the variant
/// CLI `--threads` flags and shared pools use.
pub fn longrun_estimate_batch_on(
    runner: &BatchRunner,
    scenarios: &[SignalGraph],
    periods: u32,
) -> Vec<Option<f64>> {
    runner.run(scenarios, |sg| longrun_estimate(sg, periods))
}

/// One lane of a [`longrun_estimate_mc_lanes`] batch: the seed it ran
/// with, its slope estimate, and whether the tail of the horizon agrees
/// with the reported slope (a per-lane convergence check).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LongrunLane {
    /// The RNG seed this lane's jitter stream was drawn from.
    pub seed: u64,
    /// The second-half slope estimate, as in [`longrun_estimate`].
    pub estimate: Option<f64>,
    /// Whether the last-quarter slope matches the estimate to 1e-9
    /// relative — a cheap signal that the transient has died out.
    pub converged: bool,
}

/// A uniform draw in `[0, 1)` from the top 53 bits of the stream. Both
/// estimator paths draw once per arc in `ArcId` order, so sequential
/// and lane-batched runs consume bit-identical streams per seed.
fn unit_f64(rng: &mut SmallRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Multiplicative delay perturbation in `[1 - jitter, 1 + jitter)`.
/// At `jitter == 0` this is exactly `1.0`, so scaled delays are
/// bitwise-unchanged and the Monte-Carlo paths reproduce the plain
/// estimator exactly.
fn jitter_factor(rng: &mut SmallRng, jitter: f64) -> f64 {
    1.0 + jitter * (2.0 * unit_f64(rng) - 1.0)
}

/// [`longrun_estimate`] under one Monte-Carlo delay perturbation: every
/// arc delay is scaled by an independent factor in
/// `[1 - jitter, 1 + jitter)` drawn from a stream seeded with `seed`,
/// and the perturbed graph is simulated event-drivenly.
///
/// This is the sequential reference for [`longrun_estimate_mc_lanes`];
/// lane `k` of the batch reproduces this function bit-for-bit.
///
/// # Panics
///
/// Panics if `jitter` is outside `[0, 1)` (factors must stay positive
/// so delays remain valid).
///
/// # Examples
///
/// ```
/// let sg = tsg_gen::ring(6, 2, 5.0);
/// let plain = tsg_baselines::longrun_estimate(&sg, 64).unwrap();
/// let mc = tsg_baselines::longrun_estimate_mc(&sg, 64, 0.0, 1).unwrap();
/// assert_eq!(plain.to_bits(), mc.to_bits());
/// ```
pub fn longrun_estimate_mc(sg: &SignalGraph, periods: u32, jitter: f64, seed: u64) -> Option<f64> {
    assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut jittered = sg.clone();
    for a in sg.arc_ids() {
        let scaled = sg.arc(a).delay().get() * jitter_factor(&mut rng, jitter);
        jittered
            .set_delay(a, scaled)
            .expect("jitter < 1 keeps delays finite and non-negative");
    }
    longrun_estimate(&jittered, periods)
}

/// Runs K Monte-Carlo seeds as lanes of one lockstep event-advance pass.
///
/// The unfolding's token-counting rules (the event-driven kernel's
/// `prime`/`fire` semantics) are mirrored once, structurally: each
/// `(event, instance)` slot fires at the maximum over its expected token
/// arrivals, instances are swept in order, and within an instance events
/// follow a topological order of the same-instance dependency arcs
/// (every arc except marked repetitive→repetitive ones, which cross
/// instances; validated live graphs make that subgraph acyclic). Because
/// a maximum is order-invariant over a fixed contribution set, each lane
/// is bit-identical to [`longrun_estimate_mc`] on its seed — only the
/// per-lane jittered delays differ between lanes, and they are stored
/// lane-contiguously so the inner loop advances all K simulations in
/// lockstep.
///
/// Unfired slots are `NaN` and sticky: a missing token keeps every
/// downstream slot unfired, matching the event-driven kernel.
///
/// # Panics
///
/// Panics if `jitter` is outside `[0, 1)`.
///
/// # Examples
///
/// ```
/// let sg = tsg_gen::ring(6, 2, 5.0);
/// let lanes = tsg_baselines::longrun_estimate_mc_lanes(&sg, 64, 0.1, &[1, 2, 3]);
/// for lane in &lanes {
///     let seq = tsg_baselines::longrun_estimate_mc(&sg, 64, 0.1, lane.seed);
///     assert_eq!(lane.estimate.map(f64::to_bits), seq.map(f64::to_bits));
/// }
/// ```
pub fn longrun_estimate_mc_lanes(
    sg: &SignalGraph,
    periods: u32,
    jitter: f64,
    seeds: &[u64],
) -> Vec<LongrunLane> {
    assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
    let lanes = seeds.len();
    if lanes == 0 {
        return Vec::new();
    }
    let dead = |seed| LongrunLane {
        seed,
        estimate: None,
        converged: false,
    };
    if periods < 2 {
        return seeds.iter().map(|&s| dead(s)).collect();
    }
    let Some(&probe) = sg.border_events().first() else {
        return seeds.iter().map(|&s| dead(s)).collect();
    };

    let n = sg.event_count();
    let p_max = periods as usize;
    let m = sg.arc_count();

    // Per-lane jittered delays, arc-major with lanes contiguous:
    // jd[pos * lanes + k]. Each lane draws in ArcId order, exactly the
    // stream `longrun_estimate_mc(.., seeds[k])` consumes.
    let mut jd = vec![0.0f64; m * lanes];
    for (k, &seed) in seeds.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(seed);
        for (pos, a) in sg.arc_ids().enumerate() {
            jd[pos * lanes + k] = sg.arc(a).delay().get() * jitter_factor(&mut rng, jitter);
        }
    }

    // Expected-token counts per (instance, event) slot and per-event
    // contribution lists — the event-driven kernel's `prime` rules.
    // Classes: 0 = prefix source (instance 0 only), 1 = unmarked
    // repetitive (same instance), 2 = marked repetitive (previous
    // instance; the initial token enables instance 0 for free).
    let rep: Vec<bool> = sg.events().map(|e| sg.is_repetitive(e)).collect();
    let mut expected = vec![0u32; p_max * n];
    let mut inputs: Vec<Vec<(usize, usize, u8)>> = vec![Vec::new(); n];
    let mut indeg = vec![0u32; n];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (pos, a) in sg.arc_ids().enumerate() {
        let arc = sg.arc(a);
        let (src, dst) = (arc.src().index(), arc.dst().index());
        if !rep[src] {
            expected[dst] += 1;
            inputs[dst].push((pos, src, 0));
        } else if arc.is_marked() {
            debug_assert!(
                rep[dst],
                "validated graphs have no repetitive → prefix arcs"
            );
            for p in 1..p_max {
                expected[p * n + dst] += 1;
            }
            inputs[dst].push((pos, src, 2));
        } else {
            debug_assert!(
                rep[dst],
                "validated graphs have no repetitive → prefix arcs"
            );
            for p in 0..p_max {
                expected[p * n + dst] += 1;
            }
            inputs[dst].push((pos, src, 1));
        }
        // Same-instance dependency edges for the evaluation order:
        // everything except marked repetitive→repetitive arcs.
        if !rep[src] || !arc.is_marked() {
            indeg[dst] += 1;
            succ[src].push(dst);
        }
    }

    // Kahn order over the same-instance subgraph; one order serves
    // every instance because cross-instance inputs come from already
    // completed rows.
    let mut order: Vec<usize> = (0..n).filter(|&e| indeg[e] == 0).collect();
    let mut head = 0;
    while head < order.len() {
        let e = order[head];
        head += 1;
        for &d in &succ[e] {
            indeg[d] -= 1;
            if indeg[d] == 0 {
                order.push(d);
            }
        }
    }
    debug_assert_eq!(
        order.len(),
        n,
        "unmarked subgraph of a validated graph is acyclic"
    );

    // The lockstep sweep. times is lane-major: [(q * n + e) * lanes + k],
    // NaN = slot never fires.
    let mut times = vec![f64::NAN; p_max * n * lanes];
    let mut acc = vec![0.0f64; lanes];
    for q in 0..p_max {
        for &e in &order {
            if q > 0 && !rep[e] {
                continue; // prefix events only occur at instance 0
            }
            let slot = (q * n + e) * lanes;
            if expected[q * n + e] == 0 {
                times[slot..slot + lanes].fill(0.0);
                continue;
            }
            acc.fill(f64::NEG_INFINITY);
            for &(pos, src, class) in &inputs[e] {
                let src_q = match (class, q) {
                    (0, 0) => 0,
                    (1, _) => q,
                    (2, _) if q > 0 => q - 1,
                    _ => continue, // no token from this arc at this instance
                };
                let src_slot = (src_q * n + src) * lanes;
                for k in 0..lanes {
                    // NaN (an unfired source) is sticky: a missing token
                    // keeps this slot unfired too.
                    let cand = times[src_slot + k] + jd[pos * lanes + k];
                    let best = acc[k];
                    acc[k] = if cand.is_nan() || best.is_nan() {
                        f64::NAN
                    } else if cand > best {
                        cand
                    } else {
                        best
                    };
                }
            }
            times[slot..slot + lanes].copy_from_slice(&acc);
        }
    }

    let mid = (periods / 2) as usize;
    let end = p_max - 1;
    let probe_row = |q: usize, k: usize| times[(q * n + probe.index()) * lanes + k];
    seeds
        .iter()
        .enumerate()
        .map(|(k, &seed)| {
            let (t_mid, t_end) = (probe_row(mid, k), probe_row(end, k));
            let estimate = (t_mid.is_finite() && t_end.is_finite())
                .then(|| (t_end - t_mid) / (end - mid) as f64);
            // Convergence: the last-quarter slope agrees with the
            // reported second-half slope.
            let late = (mid + end).div_ceil(2);
            let converged = match estimate {
                Some(est) if late > mid && late < end => {
                    let t_late = probe_row(late, k);
                    t_late.is_finite() && {
                        let tail = (t_end - t_late) / (end - late) as f64;
                        (tail - est).abs() <= 1e-9 * est.abs().max(1.0)
                    }
                }
                _ => false,
            };
            LongrunLane {
                seed,
                estimate,
                converged,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_core::analysis::CycleTimeAnalysis;

    #[test]
    fn converges_on_rings() {
        let sg = tsg_gen::ring(9, 3, 2.0);
        let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        let est = longrun_estimate(&sg, 128).unwrap();
        assert!((est - want).abs() < 1e-9);
    }

    #[test]
    fn short_horizons_can_be_wrong() {
        // The estimator needs the transient to die out; at 2 periods it can
        // differ from τ (that is the point of the paper's event-initiated
        // construction). We only assert it is not *guaranteed* exact:
        // for the stack it still approximates τ within 50%.
        let sg = tsg_gen::stack66();
        let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        let est = longrun_estimate(&sg, 4).unwrap();
        assert!(est > 0.0);
        assert!((est - want).abs() / want < 0.5);
    }

    #[test]
    fn long_horizon_matches_on_stack() {
        let sg = tsg_gen::stack66();
        let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        let est = longrun_estimate(&sg, 256).unwrap();
        assert!((est - want).abs() < 1e-6, "{est} != {want}");
    }

    #[test]
    fn degenerate_inputs() {
        let sg = tsg_gen::ring(4, 1, 1.0);
        assert!(longrun_estimate(&sg, 1).is_none());
    }

    fn families() -> Vec<SignalGraph> {
        vec![
            tsg_gen::ring(9, 3, 2.0),
            tsg_gen::stack66(),
            tsg_gen::random_live_tsg(5, tsg_gen::RandomTsgConfig::default()),
            tsg_gen::random_live_tsg(11, tsg_gen::RandomTsgConfig::default()),
        ]
    }

    #[test]
    fn zero_jitter_mc_is_bitwise_the_plain_estimator() {
        for (i, sg) in families().iter().enumerate() {
            let plain = longrun_estimate(sg, 64);
            for seed in [0, 7, 42] {
                let mc = longrun_estimate_mc(sg, 64, 0.0, seed);
                assert_eq!(plain.map(f64::to_bits), mc.map(f64::to_bits), "family {i}");
            }
        }
    }

    #[test]
    fn lanes_reproduce_sequential_streams_bitwise() {
        let seeds: Vec<u64> = (1..=9).collect(); // odd lane count
        for (i, sg) in families().iter().enumerate() {
            let lanes = longrun_estimate_mc_lanes(sg, 48, 0.05, &seeds);
            assert_eq!(lanes.len(), seeds.len());
            for lane in &lanes {
                let seq = longrun_estimate_mc(sg, 48, 0.05, lane.seed);
                assert_eq!(
                    seq.map(f64::to_bits),
                    lane.estimate.map(f64::to_bits),
                    "family {i} seed {}",
                    lane.seed
                );
            }
        }
    }

    #[test]
    fn lane_batch_distribution_equals_sequential_distribution() {
        let seeds: Vec<u64> = (100..116).collect();
        let sg = tsg_gen::ring(12, 4, 3.0);
        let mut batch: Vec<u64> = longrun_estimate_mc_lanes(&sg, 64, 0.2, &seeds)
            .iter()
            .map(|l| l.estimate.unwrap().to_bits())
            .collect();
        let mut seq: Vec<u64> = seeds
            .iter()
            .map(|&s| longrun_estimate_mc(&sg, 64, 0.2, s).unwrap().to_bits())
            .collect();
        batch.sort_unstable();
        seq.sort_unstable();
        assert_eq!(batch, seq);
        // Jitter produces genuinely distinct samples.
        batch.dedup();
        assert!(batch.len() > 1);
    }

    #[test]
    fn zero_jitter_lanes_converge_on_rings() {
        let sg = tsg_gen::ring(9, 3, 2.0);
        let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        for lane in longrun_estimate_mc_lanes(&sg, 128, 0.0, &[1, 2, 3]) {
            let est = lane.estimate.unwrap();
            assert!((est - want).abs() < 1e-9);
            assert!(lane.converged);
        }
    }

    #[test]
    fn degenerate_mc_inputs() {
        let sg = tsg_gen::ring(4, 1, 1.0);
        assert!(longrun_estimate_mc(&sg, 1, 0.1, 3).is_none());
        let lanes = longrun_estimate_mc_lanes(&sg, 1, 0.1, &[3, 4]);
        assert!(lanes.iter().all(|l| l.estimate.is_none() && !l.converged));
        assert!(longrun_estimate_mc_lanes(&sg, 64, 0.1, &[]).is_empty());
    }

    #[test]
    fn batch_matches_sequential() {
        let scenarios: Vec<SignalGraph> = (0..9)
            .map(|seed| tsg_gen::random_live_tsg(seed, tsg_gen::RandomTsgConfig::default()))
            .collect();
        let batch = longrun_estimate_batch(&scenarios, 64);
        let sequential: Vec<Option<f64>> = scenarios
            .iter()
            .map(|sg| longrun_estimate(sg, 64))
            .collect();
        assert_eq!(batch, sequential);
        // Explicit runners give the same answers at any thread count.
        for threads in [1, 3] {
            let on = longrun_estimate_batch_on(&BatchRunner::with_threads(threads), &scenarios, 64);
            assert_eq!(on, sequential);
        }
    }
}
