//! The naive long-run estimate of the cycle time.
//!
//! Runs the plain timing simulation for many periods and estimates `τ` from
//! the late-time slope of an event's occurrence times. This is the approach
//! Section II and Figure 4 caution against: it converges asymptotically but
//! gives no exactness guarantee at any finite horizon — which is precisely
//! what the benchmarks demonstrate by comparing it with the exact
//! algorithms.
//!
//! The simulation itself runs event-drivenly on the shared `tsg-sim`
//! kernel ([`EventSimulation`]), the same queue that powers the
//! gate-level netlist simulator; [`longrun_estimate_batch`] fans whole
//! scenario sweeps out across threads with [`BatchRunner`].

use tsg_core::analysis::event_sim::EventSimulation;
use tsg_core::SignalGraph;
use tsg_sim::BatchRunner;

/// Estimates the cycle time from a `periods`-long timing simulation as the
/// average occurrence distance of a border event over the second half of
/// the horizon.
///
/// Returns `None` for graphs without repetitive events or `periods < 2`.
///
/// # Examples
///
/// ```
/// let sg = tsg_gen::ring(6, 2, 5.0);
/// let est = tsg_baselines::longrun_estimate(&sg, 64).unwrap();
/// assert!((est - 15.0).abs() < 1e-9);
/// ```
pub fn longrun_estimate(sg: &SignalGraph, periods: u32) -> Option<f64> {
    if periods < 2 {
        return None;
    }
    let probe = *sg.border_events().first()?;
    let sim = EventSimulation::run(sg, periods);
    let mid = periods / 2;
    let t_mid = sim.time(probe, mid)?;
    let t_end = sim.time(probe, periods - 1)?;
    Some((t_end - t_mid) / (periods - 1 - mid) as f64)
}

/// Runs [`longrun_estimate`] over many independent scenarios in parallel.
///
/// Scenario simulations share nothing, so they scale across threads on
/// the kernel's [`BatchRunner`]; results come back in input order, making
/// the batch observably identical to a sequential loop over
/// [`longrun_estimate`].
///
/// Sizes its pool with [`BatchRunner::sized`], the workspace's one
/// pool-sizing rule; pass an explicit runner through
/// [`longrun_estimate_batch_on`] to share a pool or honour a
/// `--threads` flag.
///
/// # Examples
///
/// ```
/// let scenarios: Vec<_> = (2..10).map(|k| tsg_gen::ring(12, k, 3.0)).collect();
/// let estimates = tsg_baselines::longrun_estimate_batch(&scenarios, 64);
/// assert_eq!(estimates.len(), 8);
/// assert!(estimates.iter().all(|e| e.is_some()));
/// ```
pub fn longrun_estimate_batch(scenarios: &[SignalGraph], periods: u32) -> Vec<Option<f64>> {
    longrun_estimate_batch_on(&BatchRunner::sized(None), scenarios, periods)
}

/// [`longrun_estimate_batch`] on a caller-provided runner — the variant
/// CLI `--threads` flags and shared pools use.
pub fn longrun_estimate_batch_on(
    runner: &BatchRunner,
    scenarios: &[SignalGraph],
    periods: u32,
) -> Vec<Option<f64>> {
    runner.run(scenarios, |sg| longrun_estimate(sg, periods))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_core::analysis::CycleTimeAnalysis;

    #[test]
    fn converges_on_rings() {
        let sg = tsg_gen::ring(9, 3, 2.0);
        let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        let est = longrun_estimate(&sg, 128).unwrap();
        assert!((est - want).abs() < 1e-9);
    }

    #[test]
    fn short_horizons_can_be_wrong() {
        // The estimator needs the transient to die out; at 2 periods it can
        // differ from τ (that is the point of the paper's event-initiated
        // construction). We only assert it is not *guaranteed* exact:
        // for the stack it still approximates τ within 50%.
        let sg = tsg_gen::stack66();
        let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        let est = longrun_estimate(&sg, 4).unwrap();
        assert!(est > 0.0);
        assert!((est - want).abs() / want < 0.5);
    }

    #[test]
    fn long_horizon_matches_on_stack() {
        let sg = tsg_gen::stack66();
        let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        let est = longrun_estimate(&sg, 256).unwrap();
        assert!((est - want).abs() < 1e-6, "{est} != {want}");
    }

    #[test]
    fn degenerate_inputs() {
        let sg = tsg_gen::ring(4, 1, 1.0);
        assert!(longrun_estimate(&sg, 1).is_none());
    }

    #[test]
    fn batch_matches_sequential() {
        let scenarios: Vec<SignalGraph> = (0..9)
            .map(|seed| tsg_gen::random_live_tsg(seed, tsg_gen::RandomTsgConfig::default()))
            .collect();
        let batch = longrun_estimate_batch(&scenarios, 64);
        let sequential: Vec<Option<f64>> = scenarios
            .iter()
            .map(|sg| longrun_estimate(sg, 64))
            .collect();
        assert_eq!(batch, sequential);
        // Explicit runners give the same answers at any thread count.
        for threads in [1, 3] {
            let on = longrun_estimate_batch_on(&BatchRunner::with_threads(threads), &scenarios, 64);
            assert_eq!(on, sequential);
        }
    }
}
