//! Howard's policy iteration for the maximum cycle ratio.
//!
//! Finds `τ = max { Σδ(C) / Σtokens(C) }` over all cycles `C`. Policy
//! iteration maintains one chosen out-arc per node; each round evaluates
//! the ratio of the cycles of the policy graph, computes node potentials,
//! and switches any arc that improves (ratio first, potential second).
//! Converges in finitely many policies; in practice a handful of rounds.
//!
//! This is the algorithmic family of the minimum cost-to-time ratio
//! literature the paper cites (Lawler \[11\], Hartmann–Orlin \[8\]).

use tsg_core::analysis::CycleTime;
use tsg_core::{ArcId, SignalGraph};
use tsg_graph::NodeId;

/// Computes the cycle time of `sg` by Howard's policy iteration.
///
/// Returns `None` for graphs without repetitive events.
///
/// # Examples
///
/// ```
/// let sg = tsg_gen::ring(6, 2, 5.0);
/// let tau = tsg_baselines::howard_cycle_time(&sg).unwrap();
/// assert!((tau.as_f64() - 15.0).abs() < 1e-9);
/// ```
pub fn howard_cycle_time(sg: &SignalGraph) -> Option<CycleTime> {
    let view = sg.repetitive_view();
    let n = view.graph.node_count();
    if n == 0 {
        return None;
    }
    let delay: Vec<f64> = view.arcs.iter().map(|&a| sg.arc(a).delay().get()).collect();
    let tokens: Vec<f64> = view
        .arcs
        .iter()
        .map(|&a| if sg.arc(a).is_marked() { 1.0 } else { 0.0 })
        .collect();

    // Policy: chosen out-edge (local edge index) per node.
    let mut policy: Vec<usize> = (0..n)
        .map(|v| view.graph.out_edges(NodeId(v as u32))[0].index())
        .collect();

    let mut ratio = vec![0.0f64; n];
    let mut value = vec![0.0f64; n];
    const EPS: f64 = 1e-12;

    for _round in 0..(n * n + 16) {
        evaluate_policy(
            &view.graph,
            &policy,
            &delay,
            &tokens,
            &mut ratio,
            &mut value,
        );
        let mut improved = false;
        for e in 0..view.arcs.len() {
            let u = view.graph.src(tsg_graph::EdgeId(e as u32)).index();
            let v = view.graph.dst(tsg_graph::EdgeId(e as u32)).index();
            if ratio[v] > ratio[u] + EPS {
                policy[u] = e;
                improved = true;
            } else if (ratio[v] - ratio[u]).abs() <= EPS {
                let cand = delay[e] - ratio[u] * tokens[e] + value[v];
                if cand > value[u] + EPS * (1.0 + value[u].abs()) {
                    policy[u] = e;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    // The answer is the best policy-cycle; recover it for an exact
    // (length, tokens) pair.
    let cycle = best_policy_cycle(&view.graph, &policy, &delay, &tokens);
    let arcs: Vec<ArcId> = cycle.iter().map(|&e| view.arcs[e]).collect();
    let len = sg.path_length(&arcs);
    let eps = sg.occurrence_period(&arcs);
    Some(CycleTime::new(len, eps.max(1)))
}

/// Evaluates the current policy: per node, the ratio of the policy cycle it
/// drains into and a consistent potential.
fn evaluate_policy(
    g: &tsg_graph::DiGraph,
    policy: &[usize],
    delay: &[f64],
    tokens: &[f64],
    ratio: &mut [f64],
    value: &mut [f64],
) {
    let n = g.node_count();
    let succ = |v: usize| g.dst(tsg_graph::EdgeId(policy[v] as u32)).index();
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on path, 2 done

    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        // Walk the functional graph until a visited node.
        let mut path = Vec::new();
        let mut v = start;
        while state[v] == 0 {
            state[v] = 1;
            path.push(v);
            v = succ(v);
        }
        if state[v] == 1 {
            // Found a new cycle beginning at `v`.
            let pos = path.iter().position(|&x| x == v).expect("v is on path");
            let cycle = &path[pos..];
            let (mut d, mut w) = (0.0, 0.0);
            for &u in cycle {
                d += delay[policy[u]];
                w += tokens[policy[u]];
            }
            debug_assert!(w > 0.0, "live graphs have tokens on every cycle");
            let r = d / w;
            // Anchor the cycle: potentials propagate backwards from v.
            ratio[v] = r;
            value[v] = 0.0;
            // Walk the cycle backwards by walking it forwards n-1 times.
            let mut u = succ(v);
            let mut acc_nodes = vec![v];
            while u != v {
                acc_nodes.push(u);
                u = succ(u);
            }
            // value[u] = delay - r*tokens + value[succ(u)], solved in
            // reverse cycle order.
            for &u in acc_nodes.iter().skip(1).rev() {
                let s = succ(u);
                ratio[u] = r;
                value[u] = delay[policy[u]] - r * tokens[policy[u]] + value[s];
            }
            for &u in cycle {
                state[u] = 2;
            }
        }
        // Tree part of the path: propagate from its attachment point.
        for &u in path.iter().rev() {
            if state[u] == 2 {
                continue;
            }
            let s = succ(u);
            ratio[u] = ratio[s];
            value[u] = delay[policy[u]] - ratio[s] * tokens[policy[u]] + value[s];
            state[u] = 2;
        }
    }
}

/// Extracts the best-ratio cycle of the final policy graph, as local edges.
fn best_policy_cycle(
    g: &tsg_graph::DiGraph,
    policy: &[usize],
    delay: &[f64],
    tokens: &[f64],
) -> Vec<usize> {
    let n = g.node_count();
    let succ = |v: usize| g.dst(tsg_graph::EdgeId(policy[v] as u32)).index();
    let mut seen = vec![false; n];
    let mut best: Option<(f64, f64, Vec<usize>)> = None;
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut v = start;
        let mut order = Vec::new();
        while !seen[v] {
            seen[v] = true;
            order.push(v);
            v = succ(v);
        }
        if let Some(pos) = order.iter().position(|&x| x == v) {
            let cycle_nodes = &order[pos..];
            let edges: Vec<usize> = cycle_nodes.iter().map(|&u| policy[u]).collect();
            let d: f64 = edges.iter().map(|&e| delay[e]).sum();
            let w: f64 = edges.iter().map(|&e| tokens[e]).sum();
            let better = match &best {
                None => true,
                Some((bd, bw, _)) => d * bw > bd * w,
            };
            if better {
                best = Some((d, w, edges));
            }
        }
    }
    best.expect("functional graph always contains a cycle").2
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_core::analysis::CycleTimeAnalysis;

    #[test]
    fn agrees_on_rings() {
        for (n, k, d) in [(4, 1, 2.0), (9, 3, 1.5), (12, 5, 3.0)] {
            let sg = tsg_gen::ring(n, k, d);
            let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
            let got = howard_cycle_time(&sg).unwrap().as_f64();
            assert!((got - want).abs() < 1e-9, "ring({n},{k}): {got} != {want}");
        }
    }

    #[test]
    fn agrees_on_figure2_shape() {
        let mut b = SignalGraph::builder();
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        let sg = b.build().unwrap();
        assert_eq!(howard_cycle_time(&sg).unwrap().as_f64(), 10.0);
    }

    #[test]
    fn agrees_on_random_graphs() {
        use tsg_gen::{random_live_tsg, RandomTsgConfig};
        for seed in 0..40 {
            let sg = random_live_tsg(seed, RandomTsgConfig::default());
            let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
            let got = howard_cycle_time(&sg).unwrap().as_f64();
            assert!(
                (got - want).abs() < 1e-6 * (1.0 + want),
                "seed {seed}: {got} != {want}"
            );
        }
    }

    #[test]
    fn none_for_acyclic() {
        let mut b = SignalGraph::builder();
        let s = b.initial_event("s");
        let t = b.finite_event("t");
        b.arc(s, t, 1.0);
        let sg = b.build().unwrap();
        assert!(howard_cycle_time(&sg).is_none());
    }

    #[test]
    fn exact_pair_on_multi_period() {
        let mut b = SignalGraph::builder();
        let n: Vec<_> = (0..4).map(|i| b.event(&format!("n{i}"))).collect();
        b.marked_arc(n[0], n[1], 2.0);
        b.arc(n[1], n[2], 2.0);
        b.marked_arc(n[2], n[3], 2.0);
        b.arc(n[3], n[0], 2.0);
        let sg = b.build().unwrap();
        let tau = howard_cycle_time(&sg).unwrap();
        assert_eq!(tau.as_f64(), 4.0);
        assert_eq!(tau.periods(), 2);
    }

    use tsg_core::SignalGraph;
}
