//! Lawler's binary search for the maximum cycle ratio.
//!
//! A candidate ratio `λ` satisfies `λ < τ` exactly when the graph weighted
//! with `δ(e) − λ·tokens(e)` contains a strictly positive cycle (the dual
//! feasibility test of Burns' linear program \[2\]). Binary search brackets
//! `τ`, then the certificate cycle found just below the optimum provides the
//! exact `(length, tokens)` pair.

use tsg_core::analysis::CycleTime;
use tsg_core::{ArcId, SignalGraph};
use tsg_graph::bellman::positive_cycle;

/// Computes the cycle time of `sg` by binary search over candidate ratios.
///
/// `iterations` controls the bracket width (60 reaches f64 resolution);
/// the returned value is exact whenever the certificate cycle below the
/// bracket is critical, which holds once the bracket is narrower than the
/// gap between distinct cycle ratios.
///
/// Returns `None` for graphs without repetitive events.
///
/// # Examples
///
/// ```
/// let sg = tsg_gen::ring(6, 2, 5.0);
/// let tau = tsg_baselines::lawler_cycle_time(&sg, 60).unwrap();
/// assert_eq!(tau.as_f64(), 15.0);
/// ```
pub fn lawler_cycle_time(sg: &SignalGraph, iterations: u32) -> Option<CycleTime> {
    let view = sg.repetitive_view();
    if view.graph.node_count() == 0 {
        return None;
    }
    let delay: Vec<f64> = view.arcs.iter().map(|&a| sg.arc(a).delay().get()).collect();
    let tokens: Vec<f64> = view
        .arcs
        .iter()
        .map(|&a| if sg.arc(a).is_marked() { 1.0 } else { 0.0 })
        .collect();

    // τ lies in [0, Σδ]: a cycle's length is at most the sum of all delays
    // and its token count is at least 1.
    let mut lo = 0.0f64;
    let mut hi: f64 = delay.iter().sum::<f64>().max(1e-9);
    let mut witness: Option<Vec<usize>> = None;

    // A cycle with ratio exactly `lo` exists iff weights δ − lo·w admit a
    // zero-weight cycle; we track the last strictly-positive certificate.
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        match positive_cycle(
            &view.graph,
            |e| delay[e.index()] - mid * tokens[e.index()],
            0.0,
        ) {
            Some(cycle) => {
                witness = Some(cycle.iter().map(|e| e.index()).collect());
                lo = mid;
            }
            None => hi = mid,
        }
    }

    let edges = match witness {
        Some(w) => w,
        // lo never moved: τ could still be 0 (all-zero delays) — find any
        // cycle via a tiny negative probe.
        None => positive_cycle(&view.graph, |e| 1.0 - 0.5 * tokens[e.index()], 0.0)?
            .iter()
            .map(|e| e.index())
            .collect(),
    };
    let arcs: Vec<ArcId> = edges.iter().map(|&e| view.arcs[e]).collect();
    let len = sg.path_length(&arcs);
    let eps = sg.occurrence_period(&arcs).max(1);
    Some(CycleTime::new(len, eps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_core::analysis::CycleTimeAnalysis;
    use tsg_core::SignalGraph;

    #[test]
    fn agrees_on_rings() {
        for (n, k, d) in [(4, 1, 2.0), (9, 3, 1.5), (10, 7, 0.25)] {
            let sg = tsg_gen::ring(n, k, d);
            let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
            let got = lawler_cycle_time(&sg, 60).unwrap().as_f64();
            assert!((got - want).abs() < 1e-9, "ring({n},{k}): {got} != {want}");
        }
    }

    #[test]
    fn agrees_on_random_graphs() {
        use tsg_gen::{random_live_tsg, RandomTsgConfig};
        for seed in 0..40 {
            let sg = random_live_tsg(seed, RandomTsgConfig::default());
            let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
            let got = lawler_cycle_time(&sg, 60).unwrap().as_f64();
            assert!(
                (got - want).abs() < 1e-6 * (1.0 + want),
                "seed {seed}: {got} != {want}"
            );
        }
    }

    #[test]
    fn all_zero_delays() {
        let mut b = SignalGraph::builder();
        let x = b.event("x");
        let y = b.event("y");
        b.arc(x, y, 0.0);
        b.marked_arc(y, x, 0.0);
        let sg = b.build().unwrap();
        assert_eq!(lawler_cycle_time(&sg, 60).unwrap().as_f64(), 0.0);
    }

    #[test]
    fn none_for_acyclic() {
        let mut b = SignalGraph::builder();
        let s = b.initial_event("s");
        let t = b.finite_event("t");
        b.arc(s, t, 1.0);
        let sg = b.build().unwrap();
        assert!(lawler_cycle_time(&sg, 60).is_none());
    }

    #[test]
    fn certificate_is_exact_for_integral_delays() {
        let sg = tsg_gen::stack66();
        let tau = lawler_cycle_time(&sg, 60).unwrap();
        let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time();
        assert_eq!(tau.as_f64(), want.as_f64());
        assert_eq!(tau.exact(), want.exact());
    }
}
