//! # tsg-baselines — the related-work cycle-time algorithms
//!
//! The paper positions its O(b²m) timing-simulation algorithm against a
//! family of classical formulations of the same problem (Section I). This
//! crate implements those comparators so the benchmarks can reproduce the
//! "who wins" analysis and the tests can cross-validate every result:
//!
//! * [`enumerate`] — exhaustive simple-cycle enumeration, the
//!   "straightforward approach" of Section II (exact, exponential; also
//!   regenerates Example 5/6);
//! * [`karp`] — Karp's maximum mean cycle on the border-reduced graph
//!   (refs \[1, 11\]);
//! * [`howard`] — Howard's policy iteration for the maximum cycle ratio
//!   (the practical workhorse of the min/max-ratio family, refs \[8, 13\]);
//! * [`lawler`] — Lawler's binary search with a Bellman–Ford positive-cycle
//!   oracle (equivalent in power to Burns' linear program \[2\]);
//! * [`longrun`] — the naive long-run simulation estimate that Figure 4
//!   warns about (asymptotically correct, never exact for off-critical
//!   initiations).
//!
//! All functions agree with
//! [`tsg_core::analysis::CycleTimeAnalysis`] on every valid graph; the
//! property tests in the workspace assert exactly that.

pub mod enumerate;
pub mod howard;
pub mod karp;
pub mod lawler;
pub mod longrun;

pub use enumerate::{enumerate_cycle_time, CycleInventory};
pub use howard::howard_cycle_time;
pub use karp::karp_cycle_time;
pub use lawler::lawler_cycle_time;
pub use longrun::{
    longrun_estimate, longrun_estimate_batch, longrun_estimate_batch_on, longrun_estimate_mc,
    longrun_estimate_mc_lanes, LongrunLane,
};
