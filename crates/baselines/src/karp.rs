//! Karp's maximum mean cycle on the border-reduced graph.
//!
//! Every cycle of a live Signal Graph alternates between token-free
//! stretches and marked arcs, and the head of each marked arc is a border
//! event. Contracting each token-free stretch to a single edge turns the
//! maximum cycle *ratio* problem into a maximum cycle *mean* problem on the
//! border events:
//!
//! * node set — the border events (`b` of them),
//! * edge `g → h` — the longest unmarked path from `g` to the tail of a
//!   marked arc into `h`, plus that arc's delay,
//!
//! after which Karp's classic O(b·E) characterisation
//! `τ = max_v min_k (D_b(v) − D_k(v)) / (b − k)` applies.
//!
//! Building the reduced graph costs one unmarked-DAG longest-path pass per
//! border event — the same O(b·m) flavour of work the paper's simulations
//! do, which is exactly why this is the natural classical comparator.

use tsg_core::analysis::CycleTime;
use tsg_core::{ArcId, EventId, SignalGraph};
use tsg_graph::topo;

/// Computes the cycle time of `sg` via the border reduction and Karp's
/// maximum mean cycle.
///
/// Returns `None` for graphs without repetitive events.
///
/// # Examples
///
/// ```
/// let sg = tsg_gen::ring(6, 2, 5.0);
/// let tau = tsg_baselines::karp_cycle_time(&sg).unwrap();
/// assert!((tau.as_f64() - 15.0).abs() < 1e-9);
/// ```
pub fn karp_cycle_time(sg: &SignalGraph) -> Option<CycleTime> {
    let border = sg.border_events();
    if border.is_empty() {
        return None;
    }
    let b = border.len();
    let mut border_index = vec![usize::MAX; sg.event_count()];
    for (i, &e) in border.iter().enumerate() {
        border_index[e.index()] = i;
    }

    // Topological order of the unmarked repetitive subgraph.
    let order: Vec<EventId> = topo::topological_order_masked(sg.digraph(), |e| {
        let arc = sg.arc(ArcId(e.0));
        sg.is_repetitive(arc.src()) && sg.is_repetitive(arc.dst()) && !arc.is_marked()
    })
    .expect("validated unmarked subgraph is acyclic")
    .into_iter()
    .map(|n| EventId(n.0))
    .filter(|&e| sg.is_repetitive(e))
    .collect();

    // Reduced edge weights: w[g][h] = max over (unmarked path g..u, marked
    // arc u -> h) of length + delay.
    let mut weight = vec![vec![f64::NEG_INFINITY; b]; b];
    let mut dist = vec![f64::NEG_INFINITY; sg.event_count()];
    for (gi, &g) in border.iter().enumerate() {
        dist.iter_mut().for_each(|d| *d = f64::NEG_INFINITY);
        dist[g.index()] = 0.0;
        for &v in &order {
            // relax unmarked in-arcs (topological order makes one pass enough)
            for a in sg.in_arcs(v) {
                let arc = sg.arc(a);
                if arc.is_marked() || arc.is_disengageable() || !sg.is_repetitive(arc.src()) {
                    continue;
                }
                let s = dist[arc.src().index()];
                if s > f64::NEG_INFINITY {
                    dist[v.index()] = dist[v.index()].max(s + arc.delay().get());
                }
            }
        }
        for a in sg.arc_ids() {
            let arc = sg.arc(a);
            if !arc.is_marked() {
                continue;
            }
            let s = dist[arc.src().index()];
            if s == f64::NEG_INFINITY {
                continue;
            }
            let hi = border_index[arc.dst().index()];
            debug_assert_ne!(hi, usize::MAX, "marked arcs point at border events");
            weight[gi][hi] = weight[gi][hi].max(s + arc.delay().get());
        }
    }

    // Karp on the reduced graph: D[k][v] = max weight of a k-edge walk from
    // an artificial source that reaches every node with D[0] = 0.
    //
    // With D[0][v] = 0 for all v (super-source trick) the recurrence yields
    // max mean over all cycles reachable from anywhere — the whole reduced
    // graph here, which is strongly connected.
    let rows = b + 1;
    let mut d = vec![vec![f64::NEG_INFINITY; b]; rows];
    d[0].iter_mut().for_each(|x| *x = 0.0);
    for k in 1..rows {
        for h in 0..b {
            for g in 0..b {
                let w = weight[g][h];
                if w == f64::NEG_INFINITY || d[k - 1][g] == f64::NEG_INFINITY {
                    continue;
                }
                d[k][h] = d[k][h].max(d[k - 1][g] + w);
            }
        }
    }

    let mut best: Option<f64> = None;
    #[allow(clippy::needless_range_loop)] // v indexes two rows of `d`
    for v in 0..b {
        if d[b][v] == f64::NEG_INFINITY {
            continue;
        }
        let mut worst = f64::INFINITY;
        for k in 0..b {
            if d[k][v] == f64::NEG_INFINITY {
                continue;
            }
            worst = worst.min((d[b][v] - d[k][v]) / (b - k) as f64);
        }
        if worst < f64::INFINITY {
            best = Some(best.map_or(worst, |x: f64| x.max(worst)));
        }
    }

    // Karp yields the value; express it over one period (the reduced mean
    // is already per-token).
    best.map(|tau| CycleTime::new(tau, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_core::analysis::CycleTimeAnalysis;
    use tsg_core::SignalGraph;

    #[test]
    fn agrees_on_rings() {
        for (n, k, d) in [(4, 1, 2.0), (9, 3, 1.5), (12, 5, 3.0)] {
            let sg = tsg_gen::ring(n, k, d);
            let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
            let got = karp_cycle_time(&sg).unwrap().as_f64();
            assert!((got - want).abs() < 1e-9, "ring({n},{k}): {got} != {want}");
        }
    }

    #[test]
    fn agrees_on_random_graphs() {
        use tsg_gen::{random_live_tsg, RandomTsgConfig};
        for seed in 0..40 {
            let sg = random_live_tsg(seed, RandomTsgConfig::default());
            let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
            let got = karp_cycle_time(&sg).unwrap().as_f64();
            assert!(
                (got - want).abs() < 1e-6 * (1.0 + want),
                "seed {seed}: {got} != {want}"
            );
        }
    }

    #[test]
    fn agrees_on_stack66() {
        let sg = tsg_gen::stack66();
        let want = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        let got = karp_cycle_time(&sg).unwrap().as_f64();
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn none_for_acyclic() {
        let mut b = SignalGraph::builder();
        let s = b.initial_event("s");
        let t = b.finite_event("t");
        b.arc(s, t, 1.0);
        let sg = b.build().unwrap();
        assert!(karp_cycle_time(&sg).is_none());
    }
}
