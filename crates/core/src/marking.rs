//! The token game: untimed execution semantics of Signal Graphs.
//!
//! An event is *enabled* when all its active in-arcs carry a token; firing
//! it consumes one token from each active in-arc and produces one token on
//! each out-arc (Section III.A). Disengageable arcs become permanently
//! inactive after their single token is consumed; prefix events fire at most
//! once.

use std::fmt;

use crate::arc::ArcId;
use crate::event::EventId;
use crate::graph::SignalGraph;

/// A marking of a [`SignalGraph`]: token counts per arc plus the one-shot
/// state of disengageable arcs and prefix events.
///
/// # Examples
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::marking::Marking;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 1.0);
/// b.marked_arc(xm, xp, 1.0);
/// let sg = b.build()?;
///
/// let mut m = Marking::initial(&sg);
/// assert!(m.is_enabled(&sg, xp));
/// assert!(!m.is_enabled(&sg, xm));
/// m.fire(&sg, xp)?;
/// assert!(m.is_enabled(&sg, xm));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Marking {
    tokens: Vec<u32>,
    spent: Vec<bool>,
    fired_prefix: Vec<bool>,
}

/// Error returned by [`Marking::fire`] when the event is not enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotEnabled(pub EventId);

impl fmt::Display for NotEnabled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event {} is not enabled", self.0)
    }
}

impl std::error::Error for NotEnabled {}

impl Marking {
    /// The initial marking: one token on each marked arc, disengageable
    /// arcs armed, no prefix event fired.
    pub fn initial(sg: &SignalGraph) -> Self {
        Marking {
            tokens: sg.arcs().iter().map(|a| u32::from(a.is_marked())).collect(),
            spent: vec![false; sg.arc_count()],
            fired_prefix: vec![false; sg.event_count()],
        }
    }

    /// Tokens currently on `arc`.
    pub fn tokens(&self, arc: ArcId) -> u32 {
        self.tokens[arc.index()]
    }

    /// `true` when the disengageable `arc` has already been consumed.
    pub fn is_spent(&self, arc: ArcId) -> bool {
        self.spent[arc.index()]
    }

    /// `true` when the prefix event `e` has already fired.
    pub fn has_fired(&self, e: EventId) -> bool {
        self.fired_prefix[e.index()]
    }

    fn arc_active(&self, sg: &SignalGraph, a: ArcId) -> bool {
        !(sg.arc(a).is_disengageable() && self.spent[a.index()])
    }

    /// `true` when `e` may fire in this marking.
    pub fn is_enabled(&self, sg: &SignalGraph, e: EventId) -> bool {
        if sg.kind(e).is_prefix() && self.fired_prefix[e.index()] {
            return false;
        }
        sg.in_arcs(e)
            .all(|a| !self.arc_active(sg, a) || self.tokens[a.index()] > 0)
    }

    /// All live events enabled in this marking, in id order. (A removed
    /// event has no live in-arcs and would otherwise look vacuously
    /// enabled.)
    pub fn enabled_events(&self, sg: &SignalGraph) -> Vec<EventId> {
        sg.events()
            .filter(|&e| sg.is_live_event(e) && self.is_enabled(sg, e))
            .collect()
    }

    /// Fires `e`: consumes a token from each active in-arc (spending
    /// disengageable arcs) and produces a token on each out-arc.
    ///
    /// # Errors
    ///
    /// Returns [`NotEnabled`] when `e` cannot fire, leaving the marking
    /// unchanged.
    pub fn fire(&mut self, sg: &SignalGraph, e: EventId) -> Result<(), NotEnabled> {
        if !self.is_enabled(sg, e) {
            return Err(NotEnabled(e));
        }
        let in_arcs: Vec<ArcId> = sg.in_arcs(e).collect();
        for a in in_arcs {
            if self.arc_active(sg, a) {
                self.tokens[a.index()] -= 1;
                if sg.arc(a).is_disengageable() {
                    self.spent[a.index()] = true;
                }
            }
        }
        let out_arcs: Vec<ArcId> = sg.out_arcs(e).collect();
        for a in out_arcs {
            self.tokens[a.index()] += 1;
        }
        if sg.kind(e).is_prefix() {
            self.fired_prefix[e.index()] = true;
        }
        Ok(())
    }

    /// Fires every prefix event and then one full period (each repetitive
    /// event exactly once), always choosing the lowest-id enabled event
    /// that still has occurrences due.
    ///
    /// After a full period of a (prefix-free) marked graph the marking
    /// returns to its starting value — the classical Marked Graph
    /// invariant, exercised by the property tests.
    ///
    /// # Errors
    ///
    /// Returns [`NotEnabled`] if the execution deadlocks before every due
    /// event has fired (cannot happen on a validated live graph).
    pub fn fire_period(&mut self, sg: &SignalGraph) -> Result<(), NotEnabled> {
        let mut due: Vec<u32> = sg
            .events()
            .map(|e| {
                if sg.kind(e).is_prefix() {
                    u32::from(!self.fired_prefix[e.index()])
                } else {
                    1
                }
            })
            .collect();
        let total: u32 = due.iter().sum();
        for _ in 0..total {
            let next = sg
                .events()
                .find(|&e| due[e.index()] > 0 && self.is_enabled(sg, e));
            match next {
                Some(e) => {
                    self.fire(sg, e)?;
                    due[e.index()] -= 1;
                }
                None => {
                    let stuck = sg
                        .events()
                        .find(|&e| due[e.index()] > 0)
                        .expect("total > 0 implies a due event exists");
                    return Err(NotEnabled(stuck));
                }
            }
        }
        Ok(())
    }

    /// Token counts restricted to non-disengageable arcs — the part of the
    /// marking that is meaningful across periods.
    pub fn cyclic_tokens(&self, sg: &SignalGraph) -> Vec<u32> {
        sg.arc_ids()
            .filter(|&a| !sg.arc(a).is_disengageable())
            .map(|a| self.tokens[a.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn initial_marking_matches_arcs() {
        let sg = figure2();
        let m = Marking::initial(&sg);
        let marked: u32 = sg.arc_ids().map(|a| m.tokens(a)).sum();
        assert_eq!(marked, 2);
    }

    #[test]
    fn initial_event_fires_once() {
        let sg = figure2();
        let e = sg.event_by_label("e-").unwrap();
        let mut m = Marking::initial(&sg);
        assert!(m.is_enabled(&sg, e));
        m.fire(&sg, e).unwrap();
        assert!(!m.is_enabled(&sg, e));
        assert!(m.has_fired(e));
        assert_eq!(m.fire(&sg, e), Err(NotEnabled(e)));
    }

    #[test]
    fn causal_chain_fires_in_order() {
        let sg = figure2();
        let e = sg.event_by_label("e-").unwrap();
        let f = sg.event_by_label("f-").unwrap();
        let ap = sg.event_by_label("a+").unwrap();
        let bp = sg.event_by_label("b+").unwrap();
        let cp = sg.event_by_label("c+").unwrap();
        let mut m = Marking::initial(&sg);
        assert!(!m.is_enabled(&sg, cp));
        assert!(!m.is_enabled(&sg, bp)); // waits on f-
        m.fire(&sg, e).unwrap();
        m.fire(&sg, f).unwrap();
        m.fire(&sg, ap).unwrap();
        m.fire(&sg, bp).unwrap();
        assert!(m.is_enabled(&sg, cp));
    }

    #[test]
    fn disengageable_arcs_spend() {
        let sg = figure2();
        let e = sg.event_by_label("e-").unwrap();
        let ap = sg.event_by_label("a+").unwrap();
        let dis = sg
            .arc_ids()
            .find(|&a| sg.arc(a).is_disengageable() && sg.arc(a).dst() == ap)
            .unwrap();
        let mut m = Marking::initial(&sg);
        m.fire(&sg, e).unwrap();
        assert!(!m.is_spent(dis));
        m.fire(&sg, ap).unwrap();
        assert!(m.is_spent(dis));
    }

    #[test]
    fn full_period_restores_cyclic_marking() {
        let sg = figure2();
        let mut m = Marking::initial(&sg);
        let before = m.cyclic_tokens(&sg);
        m.fire_period(&sg).unwrap();
        // After the prefix + one full period, tokens on the cyclic arcs
        // must equal the initial cyclic marking (Marked Graph invariant);
        // the e->f prefix arc keeps its produced token.
        let after = m.cyclic_tokens(&sg);
        let dis_free: Vec<usize> = sg
            .arc_ids()
            .filter(|&a| !sg.arc(a).is_disengageable())
            .enumerate()
            .filter(|(_, a)| {
                sg.is_repetitive(sg.arc(*a).src()) && sg.is_repetitive(sg.arc(*a).dst())
            })
            .map(|(i, _)| i)
            .collect();
        for i in dis_free {
            assert_eq!(before[i], after[i], "cyclic arc token mismatch");
        }
    }

    #[test]
    fn second_period_fires_without_prefix() {
        let sg = figure2();
        let mut m = Marking::initial(&sg);
        m.fire_period(&sg).unwrap();
        m.fire_period(&sg).unwrap(); // repetitive events keep cycling
    }

    #[test]
    fn enabled_events_initially() {
        let sg = figure2();
        let m = Marking::initial(&sg);
        let enabled = m.enabled_events(&sg);
        let e = sg.event_by_label("e-").unwrap();
        assert_eq!(enabled, vec![e]);
    }
}
