//! Structural validation of Signal Graphs.
//!
//! The paper (Section III.A) restricts its analysis to Signal Graphs that
//! are connected, bounded, initially safe, live and well-formed. These
//! properties translate into the purely structural rules below, each checked
//! when [`SignalGraphBuilder::build`](crate::builder::SignalGraphBuilder::build)
//! is called:
//!
//! 1. delays are finite and non-negative (enforced by [`Delay`]);
//! 2. labels are unique;
//! 3. initial events have no in-arcs;
//! 4. finite events have at least one in-arc (otherwise declare them
//!    initial);
//! 5. no arc leads from a repetitive event to a prefix event;
//! 6. marked arcs connect repetitive events only;
//! 7. disengageable arcs lead from prefix events to repetitive events and
//!    are unmarked ("no repetitive events before disengageable arcs" —
//!    well-formedness);
//! 8. every prefix→repetitive arc is disengageable (a plain arc there would
//!    deadlock the second occurrence of its destination);
//! 9. the unmarked repetitive subgraph is acyclic (every cycle carries a
//!    token ⇒ liveness of the cyclic part);
//! 10. the repetitive subgraph is strongly connected and, when it consists
//!     of a single event, that event carries a self-arc;
//! 11. the prefix subgraph is acyclic (prefix events occur once).
//!
//! [`Delay`]: crate::time::Delay

use std::fmt;

use tsg_graph::topo;
use tsg_graph::{DiGraph, NodeId};

use crate::event::{EventId, EventKind};
use crate::graph::SignalGraph;
use crate::time::InvalidDelay;

/// A structural rule violation detected while building a [`SignalGraph`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ValidationError {
    /// Two events share the same display label.
    DuplicateLabel(String),
    /// An arc was given a negative, infinite or NaN delay.
    InvalidDelay {
        /// Source event of the offending arc.
        src: EventId,
        /// Destination event of the offending arc.
        dst: EventId,
        /// The underlying delay error.
        source: InvalidDelay,
    },
    /// An initial event has an in-arc.
    InitialEventWithCause(EventId),
    /// A finite event has no in-arc.
    FiniteEventWithoutCause(EventId),
    /// An arc leads from a repetitive event to a prefix event.
    RepetitiveBeforePrefix { src: EventId, dst: EventId },
    /// A marked arc touches a non-repetitive event.
    MarkedArcOutsideCycle { src: EventId, dst: EventId },
    /// A disengageable arc violates well-formedness (repetitive source,
    /// prefix destination, or carries a token).
    MalformedDisengageableArc { src: EventId, dst: EventId },
    /// A prefix→repetitive arc is not disengageable.
    PrefixArcNotDisengageable { src: EventId, dst: EventId },
    /// The unmarked repetitive subgraph has a cycle: the graph is not live
    /// (a token-free cycle can never fire).
    TokenFreeCycle {
        /// Events on or downstream of the token-free cycle.
        events: Vec<EventId>,
    },
    /// The repetitive subgraph is not strongly connected.
    NotStronglyConnected,
    /// The prefix subgraph has a cycle.
    CyclicPrefix,
    /// A structural mutation addressed an out-of-range or removed
    /// event.
    UnknownEvent(EventId),
    /// A structural mutation addressed an out-of-range or removed arc.
    UnknownArc(crate::arc::ArcId),
    /// [`SignalGraph::remove_event`](crate::SignalGraph::remove_event)
    /// was asked to remove an event that still has live arcs.
    EventHasArcs(EventId),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DuplicateLabel(l) => write!(f, "duplicate event label {l:?}"),
            ValidationError::InvalidDelay { src, dst, source } => {
                write!(f, "arc {src}->{dst}: {source}")
            }
            ValidationError::InitialEventWithCause(e) => {
                write!(f, "initial event {e} must not have in-arcs")
            }
            ValidationError::FiniteEventWithoutCause(e) => {
                write!(f, "finite event {e} has no cause; declare it initial")
            }
            ValidationError::RepetitiveBeforePrefix { src, dst } => {
                write!(
                    f,
                    "arc {src}->{dst} leads from a repetitive event to a prefix event"
                )
            }
            ValidationError::MarkedArcOutsideCycle { src, dst } => {
                write!(f, "marked arc {src}->{dst} must connect repetitive events")
            }
            ValidationError::MalformedDisengageableArc { src, dst } => {
                write!(
                    f,
                    "disengageable arc {src}->{dst} must lead from a prefix event to a repetitive event and carry no token"
                )
            }
            ValidationError::PrefixArcNotDisengageable { src, dst } => {
                write!(
                    f,
                    "prefix->repetitive arc {src}->{dst} must be disengageable"
                )
            }
            ValidationError::TokenFreeCycle { events } => {
                write!(
                    f,
                    "cycle without initial token through {} event(s): graph is not live",
                    events.len()
                )
            }
            ValidationError::NotStronglyConnected => {
                write!(f, "repetitive subgraph is not strongly connected")
            }
            ValidationError::CyclicPrefix => write!(f, "prefix subgraph contains a cycle"),
            ValidationError::UnknownEvent(e) => write!(f, "no live event {e}"),
            ValidationError::UnknownArc(a) => write!(f, "no live arc {a}"),
            ValidationError::EventHasArcs(e) => {
                write!(f, "event {e} still has live arcs; remove them first")
            }
        }
    }
}

impl std::error::Error for ValidationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ValidationError::InvalidDelay { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Checks all structural rules; called by the builder.
pub(crate) fn validate(sg: &SignalGraph) -> Result<(), ValidationError> {
    check_event_rules(sg)?;
    check_arc_rules(sg)?;
    check_liveness(sg)?;
    check_connectivity(sg)?;
    check_prefix_acyclic(sg)?;
    Ok(())
}

fn check_event_rules(sg: &SignalGraph) -> Result<(), ValidationError> {
    for e in sg.events() {
        if !sg.is_live_event(e) {
            continue;
        }
        match sg.kind(e) {
            EventKind::Initial => {
                if sg.in_arcs(e).next().is_some() {
                    return Err(ValidationError::InitialEventWithCause(e));
                }
            }
            EventKind::Finite => {
                if sg.in_arcs(e).next().is_none() {
                    return Err(ValidationError::FiniteEventWithoutCause(e));
                }
            }
            EventKind::Repetitive => {}
        }
    }
    Ok(())
}

fn check_arc_rules(sg: &SignalGraph) -> Result<(), ValidationError> {
    for id in sg.arc_ids() {
        let arc = sg.arc(id);
        if !arc.is_alive() {
            continue;
        }
        let (src, dst) = (arc.src(), arc.dst());
        let src_rep = sg.is_repetitive(src);
        let dst_rep = sg.is_repetitive(dst);
        if src_rep && !dst_rep {
            return Err(ValidationError::RepetitiveBeforePrefix { src, dst });
        }
        if arc.is_marked() && !(src_rep && dst_rep) {
            return Err(ValidationError::MarkedArcOutsideCycle { src, dst });
        }
        if arc.is_disengageable() && (src_rep || !dst_rep || arc.is_marked()) {
            return Err(ValidationError::MalformedDisengageableArc { src, dst });
        }
        if !src_rep && dst_rep && !arc.is_disengageable() {
            return Err(ValidationError::PrefixArcNotDisengageable { src, dst });
        }
    }
    Ok(())
}

fn check_liveness(sg: &SignalGraph) -> Result<(), ValidationError> {
    // The unmarked repetitive subgraph must be acyclic.
    // The mask must exclude tombstoned arcs: they are detached from the
    // adjacency lists (so Kahn's algorithm would never relax them) but
    // still enumerated by `edge_ids`, and a mask-enabled dead edge
    // would inflate in-degrees into a spurious cycle report.
    let res = topo::topological_order_masked(sg.digraph(), |e| {
        let arc = sg.arc(crate::arc::ArcId(e.0));
        arc.is_alive()
            && sg.is_repetitive(arc.src())
            && sg.is_repetitive(arc.dst())
            && !arc.is_marked()
    });
    match res {
        Ok(_) => Ok(()),
        Err(cyc) => Err(ValidationError::TokenFreeCycle {
            events: cyc.remaining.into_iter().map(|n| EventId(n.0)).collect(),
        }),
    }
}

fn check_connectivity(sg: &SignalGraph) -> Result<(), ValidationError> {
    let rep: Vec<EventId> = sg.repetitive_events().collect();
    if rep.is_empty() {
        return Ok(()); // purely acyclic (PERT-style) graph is allowed
    }
    // Build the induced repetitive subgraph and check strong connectivity.
    let mut sub = DiGraph::with_capacity(rep.len(), sg.arc_count());
    let mut map = vec![usize::MAX; sg.event_count()];
    for (i, &e) in rep.iter().enumerate() {
        map[e.index()] = i;
        sub.add_node();
    }
    let mut has_self_arc = false;
    for id in sg.arc_ids() {
        let arc = sg.arc(id);
        if !arc.is_alive() {
            continue;
        }
        let (s, d) = (map[arc.src().index()], map[arc.dst().index()]);
        if s != usize::MAX && d != usize::MAX {
            sub.add_edge(NodeId(s as u32), NodeId(d as u32));
            if s == d {
                has_self_arc = true;
            }
        }
    }
    let connected = if rep.len() == 1 {
        has_self_arc
    } else {
        sub.is_strongly_connected()
    };
    if connected {
        Ok(())
    } else {
        Err(ValidationError::NotStronglyConnected)
    }
}

fn check_prefix_acyclic(sg: &SignalGraph) -> Result<(), ValidationError> {
    let res = topo::topological_order_masked(sg.digraph(), |e| {
        let arc = sg.arc(crate::arc::ArcId(e.0));
        // Liveness first: a dead arc is detached from adjacency, and a
        // mask-enabled dead edge would corrupt the in-degree counts.
        arc.is_alive() && !sg.is_repetitive(arc.src()) && !sg.is_repetitive(arc.dst())
    });
    res.map(|_| ()).map_err(|_| ValidationError::CyclicPrefix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    #[test]
    fn initial_event_with_cause_rejected() {
        let mut b = SignalGraph::builder();
        let i = b.initial_event("e-");
        let j = b.initial_event("g-");
        let r = b.event("a+");
        b.arc(j, i, 1.0); // arc into an initial event
        b.disengageable_arc(i, r, 1.0);
        b.marked_arc(r, r, 1.0);
        assert!(matches!(
            b.build(),
            Err(ValidationError::InitialEventWithCause(_))
        ));
    }

    #[test]
    fn finite_event_needs_cause() {
        let mut b = SignalGraph::builder();
        let f = b.finite_event("f-");
        let r = b.event("a+");
        b.disengageable_arc(f, r, 1.0);
        b.marked_arc(r, r, 1.0);
        assert!(matches!(
            b.build(),
            Err(ValidationError::FiniteEventWithoutCause(_))
        ));
    }

    #[test]
    fn repetitive_to_prefix_rejected() {
        let mut b = SignalGraph::builder();
        let i = b.initial_event("e-");
        let f = b.finite_event("f-");
        let r = b.event("a+");
        b.arc(i, f, 1.0);
        b.disengageable_arc(i, r, 1.0);
        b.marked_arc(r, r, 1.0);
        b.arc(r, f, 1.0); // repetitive -> prefix
        assert!(matches!(
            b.build(),
            Err(ValidationError::RepetitiveBeforePrefix { .. })
        ));
    }

    #[test]
    fn marked_arc_from_prefix_rejected() {
        let mut b = SignalGraph::builder();
        let i = b.initial_event("e-");
        let r = b.event("a+");
        b.marked_arc(i, r, 1.0);
        b.marked_arc(r, r, 1.0);
        assert!(matches!(
            b.build(),
            Err(ValidationError::MarkedArcOutsideCycle { .. })
        ));
    }

    #[test]
    fn plain_prefix_to_repetitive_rejected() {
        let mut b = SignalGraph::builder();
        let i = b.initial_event("e-");
        let r = b.event("a+");
        b.arc(i, r, 1.0); // must be disengageable
        b.marked_arc(r, r, 1.0);
        assert!(matches!(
            b.build(),
            Err(ValidationError::PrefixArcNotDisengageable { .. })
        ));
    }

    #[test]
    fn disengageable_between_repetitive_rejected() {
        let mut b = SignalGraph::builder();
        let a = b.event("a+");
        let c = b.event("c+");
        b.disengageable_arc(a, c, 1.0);
        b.marked_arc(c, a, 1.0);
        assert!(matches!(
            b.build(),
            Err(ValidationError::MalformedDisengageableArc { .. })
        ));
    }

    #[test]
    fn token_free_cycle_rejected() {
        let mut b = SignalGraph::builder();
        let a = b.event("a+");
        let c = b.event("c+");
        b.arc(a, c, 1.0);
        b.arc(c, a, 1.0); // no token anywhere
        assert!(matches!(
            b.build(),
            Err(ValidationError::TokenFreeCycle { .. })
        ));
    }

    #[test]
    fn disconnected_repetitive_subgraph_rejected() {
        let mut b = SignalGraph::builder();
        let a = b.event("a+");
        let c = b.event("c+");
        // two independent self-loops: live but not strongly connected
        b.marked_arc(a, a, 1.0);
        b.marked_arc(c, c, 1.0);
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::NotStronglyConnected
        );
    }

    #[test]
    fn single_event_needs_self_arc() {
        let mut b = SignalGraph::builder();
        b.event("a+");
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::NotStronglyConnected
        );

        let mut b = SignalGraph::builder();
        let a = b.event("a+");
        b.marked_arc(a, a, 4.0);
        assert!(b.build().is_ok());
    }

    #[test]
    fn cyclic_prefix_rejected() {
        let mut b = SignalGraph::builder();
        let f1 = b.finite_event("f");
        let f2 = b.finite_event("g");
        b.arc(f1, f2, 1.0);
        b.arc(f2, f1, 1.0);
        let r = b.event("a+");
        b.disengageable_arc(f1, r, 1.0);
        b.marked_arc(r, r, 1.0);
        assert_eq!(b.build().unwrap_err(), ValidationError::CyclicPrefix);
    }

    #[test]
    fn prefix_only_graph_is_valid() {
        // A PERT-style acyclic computation with no repetitive events.
        let mut b = SignalGraph::builder();
        let i = b.initial_event("start");
        let f = b.finite_event("end");
        b.arc(i, f, 7.0);
        assert!(b.build().is_ok());
    }

    #[test]
    fn figure2_shape_is_valid() {
        // The paper's Figure 2c graph passes validation.
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        let sg = b.build().unwrap();
        assert_eq!(sg.border_events().len(), 2);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ValidationError::NotStronglyConnected;
        assert!(e.to_string().contains("strongly connected"));
        let e = ValidationError::DuplicateLabel("a+".into());
        assert!(e.to_string().contains("a+"));
    }
}
