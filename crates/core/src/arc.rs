//! Arcs of a Timed Signal Graph: delay, initial marking, disengageability.

use std::fmt;

use crate::event::EventId;
use crate::time::Delay;

/// Identifier of an arc within a [`SignalGraph`](crate::SignalGraph).
///
/// Ids are dense indices assigned in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ArcId(pub u32);

impl ArcId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arc{}", self.0)
    }
}

/// An arc of a Timed Signal Graph.
///
/// Combines the precedence relation `→`, the initial marking function `M`
/// (boolean, since the graphs are initially safe) and the disengageable-arc
/// set `O` of the paper's Section III with the delay label `δ` of Section
/// III.C.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Arc {
    src: EventId,
    dst: EventId,
    delay: Delay,
    marked: bool,
    disengageable: bool,
    alive: bool,
}

impl Arc {
    pub(crate) fn new(
        src: EventId,
        dst: EventId,
        delay: Delay,
        marked: bool,
        disengageable: bool,
    ) -> Self {
        Arc {
            src,
            dst,
            delay,
            marked,
            disengageable,
            alive: true,
        }
    }

    /// Tombstones the arc: it keeps its [`ArcId`] slot (so other ids
    /// never shift) but reads as unmarked and non-disengageable, which
    /// keeps every consumer that filters raw arc slices by marking or
    /// disengageability harmless without a separate liveness check.
    pub(crate) fn kill(&mut self) {
        self.alive = false;
        self.marked = false;
        self.disengageable = false;
    }

    /// Source event (the direct predecessor).
    pub fn src(&self) -> EventId {
        self.src
    }

    /// Destination event.
    pub fn dst(&self) -> EventId {
        self.dst
    }

    /// The delay `δ` between the occurrence of the source and the earliest
    /// occurrence of the destination along this arc.
    pub fn delay(&self) -> Delay {
        self.delay
    }

    /// Replaces the delay — the only mutable attribute of an arc; see
    /// [`SignalGraph::set_delay`](crate::SignalGraph::set_delay).
    pub(crate) fn set_delay(&mut self, delay: Delay) {
        self.delay = delay;
    }

    /// `true` when the arc carries an initial token (drawn `•` in the paper).
    pub fn is_marked(&self) -> bool {
        self.marked
    }

    /// `true` when the arc is disengageable: it constrains the execution
    /// exactly once and then disappears (drawn crossed in the paper).
    pub fn is_disengageable(&self) -> bool {
        self.disengageable
    }

    /// `false` when the arc has been removed by
    /// [`SignalGraph::remove_arc`](crate::SignalGraph::remove_arc) and
    /// only its id slot remains.
    pub fn is_alive(&self) -> bool {
        self.alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let a = Arc::new(
            EventId(0),
            EventId(1),
            Delay::new(3.0).unwrap(),
            true,
            false,
        );
        assert_eq!(a.src(), EventId(0));
        assert_eq!(a.dst(), EventId(1));
        assert_eq!(a.delay().get(), 3.0);
        assert!(a.is_marked());
        assert!(!a.is_disengageable());
    }

    #[test]
    fn killed_arc_reads_as_inert() {
        let mut a = Arc::new(
            EventId(0),
            EventId(1),
            Delay::new(3.0).unwrap(),
            true,
            false,
        );
        assert!(a.is_alive());
        a.kill();
        assert!(!a.is_alive());
        assert!(!a.is_marked(), "tombstone must not look like a token");
        assert!(!a.is_disengageable());
        assert_eq!(a.src(), EventId(0), "endpoints survive for diagnostics");
    }

    #[test]
    fn arc_id_display() {
        assert_eq!(ArcId(4).to_string(), "arc4");
        assert_eq!(ArcId(4).index(), 4);
    }
}
