//! Graphviz (DOT) export of Signal Graphs.

use std::fmt::Write as _;

use crate::event::EventKind;
use crate::graph::SignalGraph;

/// Renders `sg` in Graphviz DOT syntax.
///
/// Repetitive events are ellipses, prefix events are boxes; marked arcs are
/// decorated with a dot label (`●`), disengageable arcs are drawn dashed —
/// mirroring the paper's Figure 2 conventions.
///
/// # Examples
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::dot::to_dot;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 1.0);
/// b.marked_arc(xm, xp, 1.0);
/// let sg = b.build()?;
/// let dot = to_dot(&sg, "osc");
/// assert!(dot.starts_with("digraph osc"));
/// assert!(dot.contains("\"x+\" [shape=ellipse]"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(sg: &SignalGraph, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph {name} {{");
    let _ = writeln!(s, "  rankdir=TB;");
    for e in sg.events() {
        let shape = match sg.kind(e) {
            EventKind::Repetitive => "ellipse",
            EventKind::Initial | EventKind::Finite => "box",
        };
        let _ = writeln!(s, "  \"{}\" [shape={}];", sg.label(e), shape);
    }
    for a in sg.arc_ids() {
        let arc = sg.arc(a);
        let mut attrs = vec![format!("label=\"{}\"", arc.delay())];
        if arc.is_marked() {
            attrs.push("taillabel=\"&#9679;\"".to_owned());
        }
        if arc.is_disengageable() {
            attrs.push("style=dashed".to_owned());
        }
        let _ = writeln!(
            s,
            "  \"{}\" -> \"{}\" [{}];",
            sg.label(arc.src()),
            sg.label(arc.dst()),
            attrs.join(", ")
        );
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    #[test]
    fn dot_contains_all_arcs() {
        let mut b = SignalGraph::builder();
        let i = b.initial_event("go");
        let xp = b.event("x+");
        let xm = b.event("x-");
        b.disengageable_arc(i, xp, 0.5);
        b.arc(xp, xm, 1.0);
        b.marked_arc(xm, xp, 1.0);
        let sg = b.build().unwrap();
        let dot = to_dot(&sg, "t");
        assert!(dot.contains("\"go\" [shape=box]"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("taillabel"));
        assert_eq!(dot.matches(" -> ").count(), 3);
    }
}
