//! Event-initiated timing simulation `t_g(·)` (Section IV.B).
//!
//! ```text
//! t_g(f) = 0                                         if f = g or g ⇏ f
//! t_g(f) = max { t_g(e) + δ | (e = g ∨ g ⇒ e) ∧ e →δ f }   otherwise
//! ```
//!
//! The `g`-initiated simulation discards all history concurrent with or
//! preceding `g₀`: by Proposition 1 it computes exactly the longest delay
//! path from `g₀` to each instantiation in the unfolding. Average occurrence
//! distances of the initiating event, `δ_{g0}(g_i) = t_{g0}(g_i) / i`, are
//! the quantities the cycle-time algorithm maximises (Proposition 4/7).
//!
//! The time and parent matrices of a simulation live in a [`SimArena`]:
//! one pair of flat, row-major buffers that successive runs reuse. The
//! cycle-time algorithm runs `b` simulations per analysis and the batch
//! APIs run thousands of analyses per sweep; without the arena every one
//! of them would allocate (and fault in) its own `Vec<Vec<f64>>`.
//!
//! The `SimArena` here is the **scalar reference kernel**: one
//! simulation, row-major `times[p][e]`, with optional parent tracking
//! for backtracking. Its production twin is
//! [`wide::WideArena`](crate::analysis::wide::WideArena), which runs all
//! `b` simulations of an analysis in lockstep over one structure pass,
//! storing times **lane-major** (`times[p][e][lane]`) so each in-arc
//! feeds `b` contiguous lanes with a branchless SIMD-friendly
//! `max(best, src + δ)`. Both kernels perform per lane the exact same
//! comparison sequence, so their results are bit-identical by
//! construction (see the [`wide`](crate::analysis::wide) module docs
//! for the argument, and `tests/wide.rs` for the property tests); the
//! scalar kernel remains the oracle the wide one is verified against,
//! and the engine for parent-tracked re-runs of the winning border.

use crate::analysis::structure::CyclicStructure;
use crate::arc::ArcId;
use crate::event::EventId;
use crate::graph::SignalGraph;

/// Sentinel for "no parent arc" in the flat parent matrix.
const NO_PARENT: u32 = u32::MAX;

/// Error returned by [`InitiatedSimulation::run`] when the initiating event
/// is not repetitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotRepetitive(pub EventId);

impl std::fmt::Display for NotRepetitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "initiating event {} is not repetitive", self.0)
    }
}

impl std::error::Error for NotRepetitive {}

/// Reusable backing store — and result view — of event-initiated
/// simulations.
///
/// An arena owns two flat, row-major matrices:
///
/// * `times[p * n + e] = t_{g0}(e_p)` (`NEG_INFINITY` when `g₀ ⇏ e_p`),
/// * `parent[p * n + e]` = arg-max in-arc of `e_p`, for backtracking.
///
/// [`SimArena::run`] sizes them with `resize` — a no-op after the first
/// simulation of equal or larger shape — and leaves the results in place,
/// so the arena doubles as the accessor for the last run. Workers in
/// `analyze_batch` hold one arena each for a whole sweep.
///
/// # Examples
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::analysis::initiated::SimArena;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 3.0);
/// b.marked_arc(xm, xp, 2.0);
/// let sg = b.build()?;
///
/// let mut arena = SimArena::new();
/// arena.run(&sg, xp, 2, false)?;
/// assert_eq!(arena.time(xp, 1), Some(5.0));
/// arena.run(&sg, xm, 2, false)?; // reuses both buffers
/// assert_eq!(arena.time(xm, 1), Some(5.0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SimArena {
    /// Flat `p_total × n` occurrence-time matrix of the last run.
    times: Vec<f64>,
    /// Flat `p_total × n` arg-max in-arc matrix (`NO_PARENT` = none);
    /// empty when the last run did not track parents.
    parent: Vec<u32>,
    /// Events per row of the last run.
    n: usize,
    /// Rows of the last run (`periods + 1`).
    p_total: usize,
    /// Initiating event of the last run.
    origin: EventId,
    /// Periods of the last run.
    periods: u32,
}

impl Default for SimArena {
    fn default() -> Self {
        Self::new()
    }
}

impl SimArena {
    /// An empty arena; the first [`SimArena::run`] sizes it.
    pub fn new() -> Self {
        SimArena {
            times: Vec::new(),
            parent: Vec::new(),
            n: 0,
            p_total: 0,
            origin: EventId(0),
            periods: 0,
        }
    }

    /// Runs the `origin₀`-initiated simulation over `periods` periods,
    /// reusing this arena's buffers, and leaves the result readable
    /// through the arena's accessors.
    ///
    /// # Errors
    ///
    /// Returns [`NotRepetitive`] when `origin` is a prefix event.
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0`.
    pub fn run(
        &mut self,
        sg: &SignalGraph,
        origin: EventId,
        periods: u32,
        track_parents: bool,
    ) -> Result<(), NotRepetitive> {
        let structure = CyclicStructure::new(sg);
        self.run_with(sg, &structure, origin, periods, track_parents)
    }

    /// Shared-structure variant: the cycle-time algorithm builds one
    /// [`CyclicStructure`] and runs all `b` border simulations over it.
    pub(crate) fn run_with(
        &mut self,
        sg: &SignalGraph,
        structure: &CyclicStructure,
        origin: EventId,
        periods: u32,
        track_parents: bool,
    ) -> Result<(), NotRepetitive> {
        assert!(periods >= 1, "simulation needs at least one period");
        if !sg.is_repetitive(origin) {
            return Err(NotRepetitive(origin));
        }
        let n = sg.event_count();
        let p_total = periods as usize + 1; // instance indices 0..=periods
        let cells = p_total * n;
        self.n = n;
        self.p_total = p_total;
        self.origin = origin;
        self.periods = periods;

        // `resize` + `fill` touch existing capacity only: after the first
        // run of this shape, no allocator traffic.
        self.times.resize(cells, f64::NEG_INFINITY);
        self.times.fill(f64::NEG_INFINITY);
        if track_parents {
            self.parent.resize(cells, NO_PARENT);
            self.parent.fill(NO_PARENT);
        } else {
            self.parent.clear();
        }
        self.times[origin.index()] = 0.0;

        self.compute_rows(structure, track_parents, 0);
        Ok(())
    }

    /// The longest-path recurrence over rows `start_row..p_total`; row
    /// `start_row - 1` (when any) must hold valid values.
    fn compute_rows(&mut self, structure: &CyclicStructure, track_parents: bool, start_row: usize) {
        let n = self.n;
        let origin = self.origin;
        for p in start_row..self.p_total {
            let (before, current) = self.times.split_at_mut(p * n);
            let prev: Option<&[f64]> = (p > 0).then(|| &before[(p - 1) * n..]);
            let row = &mut current[..n];
            let parent_row = if track_parents {
                &mut self.parent[p * n..(p + 1) * n]
            } else {
                &mut []
            };
            for &ev in &structure.order {
                if p == 0 && ev == origin {
                    continue; // t_g(g) = 0 by definition; no in-arc applies
                }
                let mut best = f64::NEG_INFINITY;
                let mut best_arc = NO_PARENT;
                for ia in structure.in_arcs(ev) {
                    let src_t = if ia.marked {
                        match prev {
                            Some(prev_row) => prev_row[ia.src as usize],
                            None => continue, // p == 0: token enables for free
                        }
                    } else {
                        row[ia.src as usize]
                    };
                    if src_t == f64::NEG_INFINITY {
                        continue;
                    }
                    let cand = src_t + ia.delay;
                    if cand > best {
                        best = cand;
                        best_arc = ia.arc.0;
                    }
                }
                row[ev.index()] = best;
                if track_parents {
                    parent_row[ev.index()] = best_arc;
                }
            }
        }
    }

    /// Allocated capacity of the `(times, parent)` buffers, in cells.
    ///
    /// A warm-pool worker asserts this stays constant across requests of
    /// the same shape: `run` only `resize`s within existing capacity, so
    /// after the first (largest) run the arena never touches the
    /// allocator again.
    pub fn capacity(&self) -> (usize, usize) {
        (self.times.capacity(), self.parent.capacity())
    }

    /// The initiating event `g` of the last run.
    pub fn origin(&self) -> EventId {
        self.origin
    }

    /// Periods of the last run (instances `0..=periods` are available).
    pub fn periods(&self) -> u32 {
        self.periods
    }

    /// `t_{g0}(e_p)` of the last run, or `None` when `g₀ ⇏ e_p` (the
    /// paper reports such entries as 0; see
    /// [`time_or_zero`](Self::time_or_zero)).
    pub fn time(&self, e: EventId, instance: u32) -> Option<f64> {
        let p = instance as usize;
        if p >= self.p_total {
            return None;
        }
        let t = self.times[p * self.n + e.index()];
        (t > f64::NEG_INFINITY).then_some(t)
    }

    /// `t_{g0}(e_p)` with the paper's convention: events not reached from
    /// `g₀` are assigned occurrence time 0.
    pub fn time_or_zero(&self, e: EventId, instance: u32) -> f64 {
        self.time(e, instance).unwrap_or(0.0)
    }

    /// Average occurrence distance of the initiating event,
    /// `δ_{g0}(g_i) = t_{g0}(g_i) / i` for `i > 0`.
    ///
    /// Returns `None` when `g_i` is not reachable from `g₀` (possible when
    /// every cycle through `g` spans several periods) or `i` is out of
    /// range.
    pub fn average_distance(&self, i: u32) -> Option<f64> {
        if i == 0 {
            return None;
        }
        self.time(self.origin, i).map(|t| t / i as f64)
    }

    /// All defined `δ_{g0}(g_i)` for `0 < i <= periods`, as `(i, t, δ)`.
    pub fn distance_series(&self) -> Vec<(u32, f64, f64)> {
        let mut out = Vec::new();
        self.distance_series_into(&mut out);
        out
    }

    /// Allocation-reusing form of [`distance_series`](Self::distance_series):
    /// clears `out` and fills it in place, so steady-state callers (the
    /// serve workspace, a session's per-border records) keep one buffer
    /// alive across runs instead of allocating a fresh `Vec` per call.
    pub fn distance_series_into(&self, out: &mut Vec<(u32, f64, f64)>) {
        out.clear();
        out.extend(
            (1..=self.periods)
                .filter_map(|i| self.time(self.origin, i).map(|t| (i, t, t / i as f64))),
        );
    }

    /// Backtracks the longest path from `g₀` to `e_p` through the arg-max
    /// parent arcs (Proposition 1), returning the Signal Graph arcs of the
    /// path in forward order.
    ///
    /// Returns `None` when `e_p` is not reachable from `g₀` (or when the
    /// last run did not track parents).
    pub fn backtrack_in(&self, sg: &SignalGraph, e: EventId, instance: u32) -> Option<Vec<ArcId>> {
        if self.parent.is_empty() {
            return None;
        }
        self.time(e, instance)?;
        let mut arcs = Vec::new();
        let mut ev = e;
        let mut p = instance as usize;
        loop {
            let slot = self.parent[p * self.n + ev.index()];
            if slot == NO_PARENT {
                break;
            }
            let a = ArcId(slot);
            arcs.push(a);
            let arc = sg.arc(a);
            if arc.is_marked() {
                p -= 1;
            }
            ev = arc.src();
        }
        debug_assert!(
            ev == self.origin && p == 0,
            "backtrack must terminate at the origin instance"
        );
        arcs.reverse();
        Some(arcs)
    }
}

/// Result of an event-initiated timing simulation.
///
/// A thin owner of a [`SimArena`] holding exactly one run — the
/// convenient API when no buffer reuse is needed. Analyses that run many
/// simulations (the cycle-time algorithm, `analyze_batch` sweeps) drive
/// an arena directly.
///
/// # Examples
///
/// Example 4 of the paper (the `b+₀`-initiated simulation of Figure 2c) is
/// reproduced in the tests; a minimal use:
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::analysis::initiated::InitiatedSimulation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 3.0);
/// b.marked_arc(xm, xp, 2.0);
/// let sg = b.build()?;
///
/// let sim = InitiatedSimulation::run(&sg, xp, 2).unwrap();
/// assert_eq!(sim.time(xp, 0), Some(0.0));
/// assert_eq!(sim.time(xm, 0), Some(3.0));
/// assert_eq!(sim.time(xp, 1), Some(5.0));
/// assert_eq!(sim.average_distance(1), Some(5.0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct InitiatedSimulation {
    arena: SimArena,
}

impl InitiatedSimulation {
    /// Runs the `origin₀`-initiated simulation over `periods` periods.
    ///
    /// Within the returned simulation, instance indices align with the
    /// global unfolding: `time(e, p)` is `t_{g0}(e_p)`.
    ///
    /// # Errors
    ///
    /// Returns [`NotRepetitive`] when `origin` is a prefix event.
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0`.
    pub fn run(sg: &SignalGraph, origin: EventId, periods: u32) -> Result<Self, NotRepetitive> {
        let mut arena = SimArena::new();
        arena.run(sg, origin, periods, true)?;
        Ok(InitiatedSimulation { arena })
    }

    /// The initiating event `g`.
    pub fn origin(&self) -> EventId {
        self.arena.origin()
    }

    /// Number of periods simulated (instances `0..=periods` are available).
    pub fn periods(&self) -> u32 {
        self.arena.periods()
    }

    /// `t_{g0}(e_p)`, or `None` when `g₀ ⇏ e_p` — see [`SimArena::time`].
    pub fn time(&self, e: EventId, instance: u32) -> Option<f64> {
        self.arena.time(e, instance)
    }

    /// `t_{g0}(e_p)` with the paper's zero convention — see
    /// [`SimArena::time_or_zero`].
    pub fn time_or_zero(&self, e: EventId, instance: u32) -> f64 {
        self.arena.time_or_zero(e, instance)
    }

    /// `δ_{g0}(g_i)` — see [`SimArena::average_distance`].
    pub fn average_distance(&self, i: u32) -> Option<f64> {
        self.arena.average_distance(i)
    }

    /// All defined `δ_{g0}(g_i)` — see [`SimArena::distance_series`].
    pub fn distance_series(&self) -> Vec<(u32, f64, f64)> {
        self.arena.distance_series()
    }

    /// Backtracks the longest path from `g₀` to `e_p` — see
    /// [`SimArena::backtrack_in`].
    pub fn backtrack_in(&self, sg: &SignalGraph, e: EventId, instance: u32) -> Option<Vec<ArcId>> {
        self.arena.backtrack_in(sg, e, instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn example4_b_initiated() {
        // Paper Example 4: t_{b+0}: b+0 c+0 a-0 b-0 c-0 a+1 b+1 c+1
        //                         =  0   2   4   3   7   9   8   12
        let sg = figure2();
        let bp = sg.event_by_label("b+").unwrap();
        let sim = InitiatedSimulation::run(&sg, bp, 2).unwrap();
        let t = |l: &str, i: u32| sim.time_or_zero(sg.event_by_label(l).unwrap(), i);
        assert_eq!(t("b+", 0), 0.0);
        assert_eq!(t("c+", 0), 2.0);
        assert_eq!(t("a-", 0), 4.0);
        assert_eq!(t("b-", 0), 3.0);
        assert_eq!(t("c-", 0), 7.0);
        assert_eq!(t("a+", 1), 9.0);
        assert_eq!(t("b+", 1), 8.0);
        assert_eq!(t("c+", 1), 12.0);
        // events concurrent with or preceding b+0 read as zero
        assert_eq!(t("e-", 0), 0.0);
        assert_eq!(t("f-", 0), 0.0);
        assert_eq!(t("a+", 0), 0.0);
        assert_eq!(sim.time(sg.event_by_label("a+").unwrap(), 0), None);
    }

    #[test]
    fn section8c_a_initiated_table() {
        // Section VIII.C: t_{a+0}: a+0 b+0 c+0 a-0 b-0 c-0 a+1 b+1 .. c-1 a+2 b+2
        //                        =  0   0   3   5   4   8   10  9  .. 18  20  19
        let sg = figure2();
        let ap = sg.event_by_label("a+").unwrap();
        let sim = InitiatedSimulation::run(&sg, ap, 2).unwrap();
        let t = |l: &str, i: u32| sim.time_or_zero(sg.event_by_label(l).unwrap(), i);
        assert_eq!(t("a+", 0), 0.0);
        assert_eq!(t("b+", 0), 0.0);
        assert_eq!(t("c+", 0), 3.0);
        assert_eq!(t("a-", 0), 5.0);
        assert_eq!(t("b-", 0), 4.0);
        assert_eq!(t("c-", 0), 8.0);
        assert_eq!(t("a+", 1), 10.0);
        assert_eq!(t("b+", 1), 9.0);
        assert_eq!(t("c-", 1), 18.0);
        assert_eq!(t("a+", 2), 20.0);
        assert_eq!(t("b+", 2), 19.0);
        // δ_{a+0}(a+1) = 10, δ_{a+0}(a+2) = 10
        assert_eq!(sim.average_distance(1), Some(10.0));
        assert_eq!(sim.average_distance(2), Some(10.0));
    }

    #[test]
    fn section8c_b_initiated_distances() {
        // Section VIII.C: δ_{b+0}(b+1) = 8, δ_{b+0}(b+2) = 9.
        let sg = figure2();
        let bp = sg.event_by_label("b+").unwrap();
        let sim = InitiatedSimulation::run(&sg, bp, 2).unwrap();
        assert_eq!(sim.average_distance(1), Some(8.0));
        assert_eq!(sim.average_distance(2), Some(9.0));
    }

    #[test]
    fn infinite_b_initiated_approaches_cycle_time_from_below() {
        // Section VIII.C: max{8, 9, 9⅓, 9½, 9⅗, ...} → 10, never reaching it.
        let sg = figure2();
        let bp = sg.event_by_label("b+").unwrap();
        let sim = InitiatedSimulation::run(&sg, bp, 40).unwrap();
        let expect = [8.0, 9.0, 9.0 + 1.0 / 3.0, 9.5, 9.6];
        for (i, want) in expect.iter().enumerate() {
            let got = sim.average_distance(i as u32 + 1).unwrap();
            assert!(
                (got - want).abs() < 1e-12,
                "i={} {} != {}",
                i + 1,
                got,
                want
            );
        }
        for i in 1..=40 {
            assert!(
                sim.average_distance(i).unwrap() < 10.0,
                "Prop 8: strictly below"
            );
        }
        assert!(sim.average_distance(40).unwrap() > 9.9);
    }

    #[test]
    fn backtrack_recovers_critical_walk() {
        let sg = figure2();
        let ap = sg.event_by_label("a+").unwrap();
        let sim = InitiatedSimulation::run(&sg, ap, 2).unwrap();
        let path = sim.backtrack_in(&sg, ap, 1).unwrap();
        assert_eq!(sg.path_length(&path), 10.0);
        assert_eq!(sg.occurrence_period(&path), 1);
        // The walk is a+ -> c+ -> a- -> c- -> a+ (the true critical cycle).
        assert_eq!(
            sg.display_path(&path),
            "a+ -3-> c+ -2-> a- -3-> c- -2*-> a+"
        );
    }

    #[test]
    fn distance_series_shape() {
        let sg = figure2();
        let ap = sg.event_by_label("a+").unwrap();
        let sim = InitiatedSimulation::run(&sg, ap, 2).unwrap();
        let series = sim.distance_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], (1, 10.0, 10.0));
        assert_eq!(series[1], (2, 20.0, 10.0));
    }

    #[test]
    fn prefix_origin_rejected() {
        let sg = figure2();
        let e = sg.event_by_label("e-").unwrap();
        assert_eq!(
            InitiatedSimulation::run(&sg, e, 2).unwrap_err(),
            NotRepetitive(e)
        );
    }

    #[test]
    fn arena_reuse_across_runs_matches_fresh_runs() {
        // One arena cycled through different origins, period counts and
        // tracking modes gives bit-identical times to fresh simulations —
        // no stale state survives the buffer reuse.
        let sg = figure2();
        let mut arena = SimArena::new();
        let runs = [
            ("a+", 3, true),
            ("b+", 1, false),
            ("a+", 2, false),
            ("b+", 4, true),
        ];
        for (label, periods, track) in runs {
            let g = sg.event_by_label(label).unwrap();
            arena.run(&sg, g, periods, track).unwrap();
            let fresh = InitiatedSimulation::run(&sg, g, periods).unwrap();
            for e in sg.events() {
                for p in 0..=periods {
                    assert_eq!(
                        arena.time(e, p),
                        fresh.time(e, p),
                        "{label} periods={periods} e={} p={p}",
                        sg.label(e)
                    );
                }
            }
            assert_eq!(arena.distance_series(), fresh.distance_series());
            if track {
                assert_eq!(
                    arena.backtrack_in(&sg, g, periods),
                    fresh.backtrack_in(&sg, g, periods)
                );
            } else {
                assert_eq!(arena.backtrack_in(&sg, g, periods), None);
            }
        }
    }

    #[test]
    fn arena_shrinking_graph_leaves_no_ghosts() {
        // A big graph followed by a small one: the small run must not see
        // the big run's cells.
        let big = {
            let mut b = SignalGraph::builder();
            let evs: Vec<_> = (0..12).map(|i| b.event(&format!("e{i}"))).collect();
            for w in evs.windows(2) {
                b.arc(w[0], w[1], 1.0);
            }
            b.marked_arc(evs[11], evs[0], 1.0);
            b.build().unwrap()
        };
        let small = figure2();
        let mut arena = SimArena::new();
        arena
            .run(&big, big.event_by_label("e0").unwrap(), 8, true)
            .unwrap();
        let bp = small.event_by_label("b+").unwrap();
        arena.run(&small, bp, 2, true).unwrap();
        let fresh = InitiatedSimulation::run(&small, bp, 2).unwrap();
        for e in small.events() {
            for p in 0..=2 {
                assert_eq!(arena.time(e, p), fresh.time(e, p));
            }
        }
    }
}
