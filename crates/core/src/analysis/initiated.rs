//! Event-initiated timing simulation `t_g(·)` (Section IV.B).
//!
//! ```text
//! t_g(f) = 0                                         if f = g or g ⇏ f
//! t_g(f) = max { t_g(e) + δ | (e = g ∨ g ⇒ e) ∧ e →δ f }   otherwise
//! ```
//!
//! The `g`-initiated simulation discards all history concurrent with or
//! preceding `g₀`: by Proposition 1 it computes exactly the longest delay
//! path from `g₀` to each instantiation in the unfolding. Average occurrence
//! distances of the initiating event, `δ_{g0}(g_i) = t_{g0}(g_i) / i`, are
//! the quantities the cycle-time algorithm maximises (Proposition 4/7).

use crate::analysis::structure::CyclicStructure;
use crate::arc::ArcId;
use crate::event::EventId;
use crate::graph::SignalGraph;

/// Result of an event-initiated timing simulation.
///
/// # Examples
///
/// Example 4 of the paper (the `b+₀`-initiated simulation of Figure 2c) is
/// reproduced in the tests; a minimal use:
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::analysis::initiated::InitiatedSimulation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 3.0);
/// b.marked_arc(xm, xp, 2.0);
/// let sg = b.build()?;
///
/// let sim = InitiatedSimulation::run(&sg, xp, 2).unwrap();
/// assert_eq!(sim.time(xp, 0), Some(0.0));
/// assert_eq!(sim.time(xm, 0), Some(3.0));
/// assert_eq!(sim.time(xp, 1), Some(5.0));
/// assert_eq!(sim.average_distance(1), Some(5.0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct InitiatedSimulation {
    origin: EventId,
    periods: u32,
    /// `times[p][e] = t_{g0}(e_p)`, `NEG_INFINITY` when `g₀ ⇏ e_p`.
    times: Vec<Vec<f64>>,
    /// Arg-max in-arc per `(period, event)` for path backtracking.
    parent: Vec<Vec<Option<ArcId>>>,
}

/// Error returned by [`InitiatedSimulation::run`] when the initiating event
/// is not repetitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotRepetitive(pub EventId);

impl std::fmt::Display for NotRepetitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "initiating event {} is not repetitive", self.0)
    }
}

impl std::error::Error for NotRepetitive {}

impl InitiatedSimulation {
    /// Runs the `origin₀`-initiated simulation over `periods` periods.
    ///
    /// Within the returned simulation, instance indices align with the
    /// global unfolding: `time(e, p)` is `t_{g0}(e_p)`.
    ///
    /// # Errors
    ///
    /// Returns [`NotRepetitive`] when `origin` is a prefix event.
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0`.
    pub fn run(sg: &SignalGraph, origin: EventId, periods: u32) -> Result<Self, NotRepetitive> {
        let structure = CyclicStructure::new(sg);
        Self::run_with(sg, &structure, origin, periods, true)
    }

    /// Shared-structure variant: the cycle-time algorithm builds one
    /// [`CyclicStructure`] and runs all `b` border simulations over it,
    /// tracking parents only for the winning re-run.
    pub(crate) fn run_with(
        sg: &SignalGraph,
        structure: &CyclicStructure,
        origin: EventId,
        periods: u32,
        track_parents: bool,
    ) -> Result<Self, NotRepetitive> {
        assert!(periods >= 1, "simulation needs at least one period");
        if !sg.is_repetitive(origin) {
            return Err(NotRepetitive(origin));
        }
        let n = sg.event_count();
        let p_total = periods as usize + 1; // instance indices 0..=periods
        let mut times = vec![vec![f64::NEG_INFINITY; n]; p_total];
        let mut parent: Vec<Vec<Option<ArcId>>> = if track_parents {
            vec![vec![None; n]; p_total]
        } else {
            Vec::new()
        };
        times[0][origin.index()] = 0.0;

        #[allow(clippy::needless_range_loop)] // p drives split_at_mut and parent rows
        for p in 0..p_total {
            let (before, current) = times.split_at_mut(p);
            let prev: Option<&[f64]> = before.last().map(Vec::as_slice);
            let row = &mut current[0];
            for &ev in &structure.order {
                if p == 0 && ev == origin {
                    continue; // t_g(g) = 0 by definition; no in-arc applies
                }
                let mut best = f64::NEG_INFINITY;
                let mut best_arc = None;
                for ia in structure.in_arcs(ev) {
                    let src_t = if ia.marked {
                        match prev {
                            Some(prev_row) => prev_row[ia.src as usize],
                            None => continue, // p == 0: token enables for free
                        }
                    } else {
                        row[ia.src as usize]
                    };
                    if src_t == f64::NEG_INFINITY {
                        continue;
                    }
                    let cand = src_t + ia.delay;
                    if cand > best {
                        best = cand;
                        best_arc = Some(ia.arc);
                    }
                }
                row[ev.index()] = best;
                if track_parents {
                    parent[p][ev.index()] = best_arc;
                }
            }
        }

        Ok(InitiatedSimulation {
            origin,
            periods,
            times,
            parent,
        })
    }

    /// The initiating event `g`.
    pub fn origin(&self) -> EventId {
        self.origin
    }

    /// Number of periods simulated (instances `0..=periods` are available).
    pub fn periods(&self) -> u32 {
        self.periods
    }

    /// `t_{g0}(e_p)`, or `None` when `g₀ ⇏ e_p` (the paper reports such
    /// entries as 0; see [`time_or_zero`](Self::time_or_zero)).
    pub fn time(&self, e: EventId, instance: u32) -> Option<f64> {
        self.times
            .get(instance as usize)
            .map(|row| row[e.index()])
            .filter(|t| *t > f64::NEG_INFINITY)
    }

    /// `t_{g0}(e_p)` with the paper's convention: events not reached from
    /// `g₀` are assigned occurrence time 0.
    pub fn time_or_zero(&self, e: EventId, instance: u32) -> f64 {
        self.time(e, instance).unwrap_or(0.0)
    }

    /// Average occurrence distance of the initiating event,
    /// `δ_{g0}(g_i) = t_{g0}(g_i) / i` for `i > 0`.
    ///
    /// Returns `None` when `g_i` is not reachable from `g₀` (possible when
    /// every cycle through `g` spans several periods) or `i` is out of
    /// range.
    pub fn average_distance(&self, i: u32) -> Option<f64> {
        if i == 0 {
            return None;
        }
        self.time(self.origin, i).map(|t| t / i as f64)
    }

    /// All defined `δ_{g0}(g_i)` for `0 < i <= periods`, as `(i, t, δ)`.
    pub fn distance_series(&self) -> Vec<(u32, f64, f64)> {
        (1..=self.periods)
            .filter_map(|i| self.time(self.origin, i).map(|t| (i, t, t / i as f64)))
            .collect()
    }

    /// Backtracks the longest path from `g₀` to `e_p` through the arg-max
    /// parent arcs (Proposition 1), returning the Signal Graph arcs of the
    /// path in forward order.
    ///
    /// Returns `None` when `e_p` is not reachable from `g₀` (or when the
    /// simulation was run without parent tracking).
    pub fn backtrack_in(&self, sg: &SignalGraph, e: EventId, instance: u32) -> Option<Vec<ArcId>> {
        if self.parent.is_empty() {
            return None;
        }
        self.time(e, instance)?;
        let mut arcs = Vec::new();
        let mut ev = e;
        let mut p = instance as usize;
        while let Some(a) = self.parent[p][ev.index()] {
            arcs.push(a);
            let arc = sg.arc(a);
            if arc.is_marked() {
                p -= 1;
            }
            ev = arc.src();
        }
        debug_assert!(
            ev == self.origin && p == 0,
            "backtrack must terminate at the origin instance"
        );
        arcs.reverse();
        Some(arcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn example4_b_initiated() {
        // Paper Example 4: t_{b+0}: b+0 c+0 a-0 b-0 c-0 a+1 b+1 c+1
        //                         =  0   2   4   3   7   9   8   12
        let sg = figure2();
        let bp = sg.event_by_label("b+").unwrap();
        let sim = InitiatedSimulation::run(&sg, bp, 2).unwrap();
        let t = |l: &str, i: u32| sim.time_or_zero(sg.event_by_label(l).unwrap(), i);
        assert_eq!(t("b+", 0), 0.0);
        assert_eq!(t("c+", 0), 2.0);
        assert_eq!(t("a-", 0), 4.0);
        assert_eq!(t("b-", 0), 3.0);
        assert_eq!(t("c-", 0), 7.0);
        assert_eq!(t("a+", 1), 9.0);
        assert_eq!(t("b+", 1), 8.0);
        assert_eq!(t("c+", 1), 12.0);
        // events concurrent with or preceding b+0 read as zero
        assert_eq!(t("e-", 0), 0.0);
        assert_eq!(t("f-", 0), 0.0);
        assert_eq!(t("a+", 0), 0.0);
        assert_eq!(sim.time(sg.event_by_label("a+").unwrap(), 0), None);
    }

    #[test]
    fn section8c_a_initiated_table() {
        // Section VIII.C: t_{a+0}: a+0 b+0 c+0 a-0 b-0 c-0 a+1 b+1 .. c-1 a+2 b+2
        //                        =  0   0   3   5   4   8   10  9  .. 18  20  19
        let sg = figure2();
        let ap = sg.event_by_label("a+").unwrap();
        let sim = InitiatedSimulation::run(&sg, ap, 2).unwrap();
        let t = |l: &str, i: u32| sim.time_or_zero(sg.event_by_label(l).unwrap(), i);
        assert_eq!(t("a+", 0), 0.0);
        assert_eq!(t("b+", 0), 0.0);
        assert_eq!(t("c+", 0), 3.0);
        assert_eq!(t("a-", 0), 5.0);
        assert_eq!(t("b-", 0), 4.0);
        assert_eq!(t("c-", 0), 8.0);
        assert_eq!(t("a+", 1), 10.0);
        assert_eq!(t("b+", 1), 9.0);
        assert_eq!(t("c-", 1), 18.0);
        assert_eq!(t("a+", 2), 20.0);
        assert_eq!(t("b+", 2), 19.0);
        // δ_{a+0}(a+1) = 10, δ_{a+0}(a+2) = 10
        assert_eq!(sim.average_distance(1), Some(10.0));
        assert_eq!(sim.average_distance(2), Some(10.0));
    }

    #[test]
    fn section8c_b_initiated_distances() {
        // Section VIII.C: δ_{b+0}(b+1) = 8, δ_{b+0}(b+2) = 9.
        let sg = figure2();
        let bp = sg.event_by_label("b+").unwrap();
        let sim = InitiatedSimulation::run(&sg, bp, 2).unwrap();
        assert_eq!(sim.average_distance(1), Some(8.0));
        assert_eq!(sim.average_distance(2), Some(9.0));
    }

    #[test]
    fn infinite_b_initiated_approaches_cycle_time_from_below() {
        // Section VIII.C: max{8, 9, 9⅓, 9½, 9⅗, ...} → 10, never reaching it.
        let sg = figure2();
        let bp = sg.event_by_label("b+").unwrap();
        let sim = InitiatedSimulation::run(&sg, bp, 40).unwrap();
        let expect = [8.0, 9.0, 9.0 + 1.0 / 3.0, 9.5, 9.6];
        for (i, want) in expect.iter().enumerate() {
            let got = sim.average_distance(i as u32 + 1).unwrap();
            assert!(
                (got - want).abs() < 1e-12,
                "i={} {} != {}",
                i + 1,
                got,
                want
            );
        }
        for i in 1..=40 {
            assert!(
                sim.average_distance(i).unwrap() < 10.0,
                "Prop 8: strictly below"
            );
        }
        assert!(sim.average_distance(40).unwrap() > 9.9);
    }

    #[test]
    fn backtrack_recovers_critical_walk() {
        let sg = figure2();
        let ap = sg.event_by_label("a+").unwrap();
        let sim = InitiatedSimulation::run(&sg, ap, 2).unwrap();
        let path = sim.backtrack_in(&sg, ap, 1).unwrap();
        assert_eq!(sg.path_length(&path), 10.0);
        assert_eq!(sg.occurrence_period(&path), 1);
        // The walk is a+ -> c+ -> a- -> c- -> a+ (the true critical cycle).
        assert_eq!(
            sg.display_path(&path),
            "a+ -3-> c+ -2-> a- -3-> c- -2*-> a+"
        );
    }

    #[test]
    fn distance_series_shape() {
        let sg = figure2();
        let ap = sg.event_by_label("a+").unwrap();
        let sim = InitiatedSimulation::run(&sg, ap, 2).unwrap();
        let series = sim.distance_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], (1, 10.0, 10.0));
        assert_eq!(series[1], (2, 20.0, 10.0));
    }

    #[test]
    fn prefix_origin_rejected() {
        let sg = figure2();
        let e = sg.event_by_label("e-").unwrap();
        assert_eq!(
            InitiatedSimulation::run(&sg, e, 2).unwrap_err(),
            NotRepetitive(e)
        );
    }
}
