//! Incremental analysis sessions: delta-driven re-analysis.
//!
//! The paper's headline workflow is bottleneck hunting — edit a gate
//! delay, re-measure the cycle time, repeat. Re-running the full
//! O(b²·m) algorithm per edit throws away almost all of the previous
//! work: a delay edit leaves the graph's *structure* (topology, marking,
//! border set) untouched, so of the `b` border-initiated simulations
//! only the rows an edit can actually influence need recomputing. An
//! [`AnalysisSession`] owns the graph plus all warm simulation state —
//! the shared [`CyclicStructure`], the cached [`BorderRecord`]s, and one
//! warm lane-major [`WideArena`] holding all `b` border matrices — and
//! answers [`edit_delays`](AnalysisSession::edit_delays) queries by
//! re-simulating only that dirty region.
//!
//! # The dirty-region criterion
//!
//! The simulation of border event `g` fills a `(b+1) × n` matrix of
//! longest-path lengths `t_{g0}(e_p)` over the unfolding restricted to
//! `b` periods; its record collects the diagonal `t_{g0}(g_i)`. Editing
//! the delay of arc `a = u → v` can only change a cell `(e, p)` if some
//! `g_0 → e_p` path passes through `a` — and any such path spends at
//! least
//!
//! ```text
//! r0(g, a)  =  ε(g → u) + marked(a)
//! ```
//!
//! periods before crossing `a`, where `ε(x → y)` is the minimum number
//! of marked arcs on any path from `x` to `y` in the cyclic structure
//! (a 0-1 BFS, O(m) per edited arc). Every row below `r0` is therefore
//! bit-exact for the edited graph. The session keeps all `b` matrices
//! warm in one lane-major [`WideArena`] and *resumes* the whole batch at
//! `min(r0)` over the dirty lanes — one shared lockstep pass recomputes
//! rows at or beyond that minimum from the cached row below, with the
//! identical recurrence. Lanes whose own `r0` lies deeper have their
//! intermediate rows recomputed to bit-identical values (the recurrence
//! is a pure function of the rows below and the dirtiness criterion
//! guarantees the edit cannot reach them there), so the per-lane `r0`
//! contract of the delta query is preserved while each recomputed row
//! streams the in-arc table once for all lanes. When no lane's `r0`
//! falls within the horizon the batch is not touched at all.
//!
//! The final winner-selection and critical-cycle backtracking re-run as
//! usual (one parent-tracked simulation), so the produced
//! [`CycleTimeAnalysis`] is **bit-identical** to a from-scratch run on
//! the edited graph — asserted across generator families and random
//! edit scripts in `tests/incremental.rs`. The price is memory: a
//! session holds `b` matrices of `(b+1) × n` floats, O(b²·n) cells,
//! instead of one.
//!
//! # Structural edits and the border-set remap contract
//!
//! [`edit_structure`](AnalysisSession::edit_structure) extends the
//! delta contract to *structural* mutations — add/remove arc and event
//! ([`GraphEdit`]). A batch is applied through [`SignalGraph`]'s
//! mutation API (tombstoning ids, so every cached `ArcId`/`EventId`
//! stays valid), re-validated as a whole, and rolled back untouched if
//! any rule breaks. For a committed batch the session rebuilds the
//! [`CyclicStructure`] in place on its warm scratch and then remaps the
//! lane axis of the wide arena by one rule:
//!
//! * **Border set unchanged and no new events** — every surviving
//!   border keeps its warm lane. The dirty row of each lane is the
//!   minimum over (a) pre-apply bounds `ε_old(g → src) + marked`
//!   computed on the *old* graph for removed and re-delayed arcs (any
//!   influenced cell owes its change to an old-graph path through the
//!   arc), and (b) post-apply bounds computed on the *new* graph for
//!   added arcs (any newly-created path crosses the new arc). All lanes
//!   resume in lockstep from the global minimum, exactly like a delay
//!   batch; rows below it are provably bit-identical.
//! * **Border set changed (or the event axis grew)** — the lane ↔
//!   border mapping is stale: dead lanes are retired, new borders get
//!   lanes, and one full warm pass reseeds the whole arena
//!   (allocation-reusing, same buffers). The delta then reports
//!   `rows == rows_total`.
//!
//! Either way the refreshed analysis is bit-identical to a from-scratch
//! run on the mutated graph. A cancelled structural resume (or reseed)
//! behaves like a cancelled delay resume: the graph mutation is
//! committed, the matrix remembers its first stale row, and the next
//! uncancelled call — even an empty batch — heals it.
//!
use std::collections::VecDeque;
use std::fmt;

use tsg_sim::{CancelKind, CancelToken};

use crate::analysis::cycle_time::{halt_to_error, AnalysisError, BorderRecord, CycleTimeAnalysis};
use crate::analysis::initiated::SimArena;
use crate::analysis::scenario::{ScenarioAnalysis, ScenarioSet};
use crate::analysis::structure::CyclicStructure;
use crate::analysis::wide::{Halt, KernelBackend, WideArena};
use crate::analysis::CycleTime;
use crate::arc::ArcId;
use crate::event::EventId;
use crate::graph::SignalGraph;
use crate::time::Delay;

/// Sentinel for "not reachable" in the period-distance buffers.
const UNREACHED: u32 = u32::MAX;

/// Sentinel for "arc not in the cyclic structure" in the arc→entry map.
const NO_ENTRY: u32 = u32::MAX;

/// One delay edit: assign `delay` to `arc`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayEdit {
    /// The arc whose delay changes.
    pub arc: ArcId,
    /// The new delay (must be finite and non-negative).
    pub delay: f64,
}

/// One edit of an [`AnalysisSession::edit_structure`] batch: a delay
/// assignment or a structural mutation of the graph itself.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphEdit {
    /// Assign `delay` to `arc` — the [`DelayEdit`] fast path; an
    /// all-delay batch delegates to
    /// [`edit_delays`](AnalysisSession::edit_delays) unchanged.
    Delay {
        /// The arc whose delay changes.
        arc: ArcId,
        /// The new delay (must be finite and non-negative).
        delay: f64,
    },
    /// Add an arc `src → dst`, optionally carrying an initial token
    /// (see [`SignalGraph::add_arc`]).
    AddArc {
        /// Source event.
        src: EventId,
        /// Destination event.
        dst: EventId,
        /// The arc's delay.
        delay: f64,
        /// Whether the arc carries an initial token.
        marked: bool,
    },
    /// Remove (tombstone) an arc; its id slot stays valid.
    RemoveArc {
        /// The arc to remove.
        arc: ArcId,
    },
    /// Add a repetitive event with the given label; its id is the
    /// graph's `event_count()` at the point the edit applies.
    AddEvent {
        /// The new event's label (parsed leniently, like the builder).
        label: String,
    },
    /// Remove an event; it must have no remaining live arcs.
    RemoveEvent {
        /// The event to remove.
        event: EventId,
    },
}

/// What one delta query changed, and how much work it saved.
#[derive(Clone, Copy, Debug)]
pub struct CycleTimeDelta {
    /// Cycle time before the edit batch.
    pub before: CycleTime,
    /// Cycle time after the edit batch.
    pub after: CycleTime,
    /// Border simulations that had to resume (their dirty region starts
    /// within the simulated horizon).
    pub dirty: usize,
    /// Total border simulations a from-scratch run would perform.
    pub borders: usize,
    /// Matrix rows inside the per-border dirty regions — the rows whose
    /// values the edit batch could influence, summed over the dirty
    /// lanes. (The wide kernel recomputes whole lane-major rows from the
    /// earliest dirty row in one shared pass; rows below each lane's own
    /// `r0` come back bit-identical, so this counts the query's logical
    /// dirtiness, the same metric the scalar engine reported.)
    pub rows: usize,
    /// Rows a from-scratch run would compute: `borders × (b + 1)`.
    pub rows_total: usize,
}

/// Error of [`AnalysisSession::edit_delays`]; the session state is
/// unchanged when one is returned.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum EditError {
    /// The arc id is not an arc of the session's graph.
    UnknownArc(ArcId),
    /// The new delay is negative, infinite or NaN.
    InvalidDelay {
        /// The arc the edit addressed.
        arc: ArcId,
        /// The offending delay.
        delay: f64,
    },
    /// A label-addressed edit named an event the graph does not have.
    NoSuchEvent(String),
    /// A label-addressed edit named an event pair with no connecting arc.
    NoArcBetween(String, String),
    /// A structural edit broke a per-operation or batch-level graph
    /// rule; the whole batch is rolled back and the session unchanged.
    Invalid(crate::validate::ValidationError),
    /// The batch leaves a graph with no border events (no cyclic
    /// behavior to analyse); rolled back, session unchanged.
    NoCyclicBehavior,
    /// The batch's re-analysis was cancelled mid-flight. Unlike the
    /// validation errors, the edits *are* applied to the graph; the
    /// cached analysis is stale until the next uncancelled
    /// [`edit_delays`](AnalysisSession::edit_delays) call (even with an
    /// empty batch) heals the matrix bit-identically.
    Cancelled {
        /// Why the run stopped.
        kind: CancelKind,
        /// Matrix rows that were complete when the run stopped.
        rows_done: usize,
        /// Rows a full resume pass computes.
        rows_total: usize,
    },
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownArc(a) => write!(f, "unknown arc {a}"),
            EditError::InvalidDelay { arc, delay } => {
                write!(
                    f,
                    "invalid delay {delay} for {arc}: must be finite and >= 0"
                )
            }
            EditError::NoSuchEvent(l) => write!(f, "no event labelled {l:?}"),
            EditError::NoArcBetween(s, d) => write!(f, "no arc from {s:?} to {d:?}"),
            EditError::Invalid(v) => write!(f, "invalid structural edit: {v}"),
            EditError::NoCyclicBehavior => {
                write!(f, "edit batch leaves no cyclic behavior to analyse")
            }
            EditError::Cancelled {
                kind,
                rows_done,
                rows_total,
            } => {
                write!(
                    f,
                    "{kind} after {rows_done} of {rows_total} simulation row(s)"
                )
            }
        }
    }
}

impl std::error::Error for EditError {}

/// An open incremental-analysis session; see the [module docs](self).
///
/// # Examples
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::analysis::session::{AnalysisSession, DelayEdit};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// let up = b.arc(xp, xm, 3.0);
/// b.marked_arc(xm, xp, 2.0);
/// let sg = b.build()?;
///
/// let mut session = AnalysisSession::open(sg)?;
/// assert_eq!(session.analysis().cycle_time().as_f64(), 5.0);
/// let delta = session.edit_delay(up, 7.0)?;
/// assert_eq!(delta.after.as_f64(), 9.0);
/// assert_eq!(session.analysis().cycle_time().as_f64(), 9.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct AnalysisSession {
    sg: SignalGraph,
    structure: CyclicStructure,
    /// `ArcId` → slot in `structure.entries` (`NO_ENTRY` when the arc is
    /// outside the cyclic structure and no record can depend on it).
    entry_of_arc: Vec<u32>,
    border: Vec<EventId>,
    /// Periods each border simulation runs (`border.len()`).
    b: u32,
    /// The cached per-border distance tables, master copies.
    records: Vec<BorderRecord>,
    /// All `b` warm border matrices in one lane-major wide arena — the
    /// state the dirty-region restarts resume into (O(b²·n) cells).
    wide: WideArena,
    /// The arena `finish` re-runs the winner in (with parent tracking).
    finish_arena: SimArena,
    analysis: CycleTimeAnalysis,
    edits: u64,
    /// First matrix row a cancelled resume left stale (`None` when the
    /// session is healed). The next resume starts at or below this row
    /// and refreshes every record, restoring bit-identity to scratch.
    dirty_from: Option<usize>,
    /// Scratch: per-border restart row of the current edit batch
    /// (`UNREACHED` = untouched).
    restart: Vec<u32>,
    /// Scratch: `ε(e → u)` of the backward 0-1 BFS.
    dist_back: Vec<u32>,
    /// Scratch: the BFS deque.
    deque: VecDeque<EventId>,
    /// Warm corner/sample-lane state, when
    /// [`enable_scenarios`](Self::enable_scenarios) turned it on.
    scenarios: Option<ScenarioState>,
}

/// The session's warm scenario-lane state: one `b × s` wide arena whose
/// lanes mirror the nominal matrices under each scenario's reweighted
/// delays, kept in lockstep with the nominal arena by the same dirty-row
/// resumes. The two staleness flags let a cancelled pass heal later:
/// `stale_weights` marks the reweighted graphs / δ table out of sync
/// with the session graph (structural batch committed but not yet
/// resynced), `needs_reseed` marks the whole lane matrix stale (border
/// set or event axis changed).
#[derive(Clone, Debug)]
struct ScenarioState {
    set: ScenarioSet,
    /// Per-scenario reweighted graphs — the canonical delay source for
    /// both the δ table and the per-scenario winner re-runs.
    reweighted: Vec<SignalGraph>,
    /// All `b × s` scenario matrices, lane `j·b + k`.
    wide: WideArena,
    /// Arena the per-scenario winner re-runs use.
    finish: SimArena,
    /// Scratch structure rebuilt per reweighted graph for the re-runs.
    structure: CyclicStructure,
    analysis: ScenarioAnalysis,
    /// First scenario-matrix row a cancelled pass left stale.
    dirty_from: Option<usize>,
    stale_weights: bool,
    needs_reseed: bool,
}

impl AnalysisSession {
    /// Opens a session: one full analysis, with every intermediate the
    /// delta queries need kept warm.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoCyclicBehavior`] when `sg` has no
    /// repetitive events.
    pub fn open(sg: SignalGraph) -> Result<Self, AnalysisError> {
        Self::open_with_kernel(sg, KernelBackend::Auto)
    }

    /// [`open`](Self::open) on an explicitly chosen [`KernelBackend`]:
    /// the session's warm wide arena — and hence every dirty-region
    /// resume — runs on it for the session's whole lifetime. `kernel`
    /// is resolved leniently (see
    /// [`WideArena::with_kernel`](crate::analysis::wide::WideArena::with_kernel));
    /// validate with [`KernelBackend::resolve`] first where an
    /// unavailable request must be a structured error.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoCyclicBehavior`] when `sg` has no
    /// repetitive events.
    pub fn open_with_kernel(sg: SignalGraph, kernel: KernelBackend) -> Result<Self, AnalysisError> {
        Self::open_with_cancel(sg, kernel, None)
    }

    /// [`open_with_kernel`](Self::open_with_kernel) under a cancellation
    /// token: the opening full analysis polls `cancel` once per matrix
    /// row and no session is created when it fires.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoCyclicBehavior`] when `sg` has no
    /// repetitive events, or [`AnalysisError::Cancelled`] when `cancel`
    /// fires mid-analysis.
    pub fn open_with_cancel(
        sg: SignalGraph,
        kernel: KernelBackend,
        cancel: Option<&CancelToken>,
    ) -> Result<Self, AnalysisError> {
        let border = sg.border_events();
        if border.is_empty() {
            return Err(AnalysisError::NoCyclicBehavior);
        }
        let b = border.len() as u32;
        let structure = CyclicStructure::new(&sg);
        let mut entry_of_arc = vec![NO_ENTRY; sg.arc_count()];
        for (slot, entry) in structure.entries.iter().enumerate() {
            entry_of_arc[entry.arc.index()] = slot as u32;
        }

        let mut wide = WideArena::with_kernel(kernel);
        if let Err(halt) = wide.run_with(&sg, &structure, &border, b, cancel) {
            // `NotRepetitive` cannot fire (border events are repetitive
            // by construction) and `Degenerate` cannot either (border
            // verified non-empty, b >= 1), but the mapping is total so
            // either would surface as a structured error, not a panic.
            return Err(halt_to_error(halt));
        }
        let records: Vec<BorderRecord> = (0..border.len())
            .map(|k| BorderRecord {
                event: border[k],
                distances: wide.distance_series(k),
            })
            .collect();
        let mut finish_arena = SimArena::new();
        let analysis = CycleTimeAnalysis::finish(
            &sg,
            &structure,
            border.clone(),
            records.clone(),
            &mut finish_arena,
        )?;

        let n = sg.event_count();
        Ok(AnalysisSession {
            sg,
            structure,
            entry_of_arc,
            restart: vec![UNREACHED; border.len()],
            border,
            b,
            records,
            wide,
            finish_arena,
            analysis,
            edits: 0,
            dirty_from: None,
            dist_back: vec![UNREACHED; n],
            deque: VecDeque::new(),
            scenarios: None,
        })
    }

    /// The session's graph, with all applied edits.
    pub fn graph(&self) -> &SignalGraph {
        &self.sg
    }

    /// The current analysis — always bit-identical to
    /// [`CycleTimeAnalysis::run`] on [`graph`](Self::graph).
    pub fn analysis(&self) -> &CycleTimeAnalysis {
        &self.analysis
    }

    /// Number of edit batches applied so far.
    pub fn edits_applied(&self) -> u64 {
        self.edits
    }

    /// Whether a cancelled resume left the cached analysis (nominal or
    /// scenario) stale; the next uncancelled
    /// [`edit_delays`](Self::edit_delays) call (even with an empty
    /// batch) heals it.
    pub fn is_stale(&self) -> bool {
        self.dirty_from.is_some()
            || self
                .scenarios
                .as_ref()
                .is_some_and(|s| s.dirty_from.is_some() || s.stale_weights || s.needs_reseed)
    }

    /// The resolved kernel backend the session's warm wide arena (and
    /// every dirty-region resume) runs on.
    pub fn kernel(&self) -> KernelBackend {
        self.wide.kernel()
    }

    /// Resolves a label-addressed edit (`src -> dst`) to the first arc
    /// between the named events.
    ///
    /// # Errors
    ///
    /// Returns [`EditError::NoSuchEvent`] / [`EditError::NoArcBetween`]
    /// with the offending labels.
    pub fn resolve_arc(&self, src: &str, dst: &str) -> Result<ArcId, EditError> {
        let s = self
            .sg
            .event_by_label(src)
            .ok_or_else(|| EditError::NoSuchEvent(src.to_owned()))?;
        let d = self
            .sg
            .event_by_label(dst)
            .ok_or_else(|| EditError::NoSuchEvent(dst.to_owned()))?;
        self.sg
            .arc_between(s, d)
            .ok_or_else(|| EditError::NoArcBetween(src.to_owned(), dst.to_owned()))
    }

    /// Applies one delay edit; see [`edit_delays`](Self::edit_delays).
    ///
    /// # Errors
    ///
    /// Returns [`EditError`] for an unknown arc or invalid delay.
    pub fn edit_delay(&mut self, arc: ArcId, delay: f64) -> Result<CycleTimeDelta, EditError> {
        self.edit_delays(&[DelayEdit { arc, delay }])
    }

    /// Applies a batch of delay edits and re-analyses only the dirty
    /// region: each border simulation resumes at the first row the batch
    /// can influence (the module-level `r0` criterion), reusing every
    /// cached row below it; simulations whose `r0` lies beyond the
    /// horizon are not touched at all.
    ///
    /// The updated [`analysis`](Self::analysis) is bit-identical to a
    /// from-scratch [`CycleTimeAnalysis::run`] on the edited graph; the
    /// returned [`CycleTimeDelta`] reports how many simulations resumed
    /// and how many matrix rows were actually recomputed.
    ///
    /// # Errors
    ///
    /// Returns [`EditError`] — and leaves the session untouched — when
    /// any edit names an unknown arc or an invalid delay.
    pub fn edit_delays(&mut self, edits: &[DelayEdit]) -> Result<CycleTimeDelta, EditError> {
        self.edit_delays_with_cancel(edits, None)
    }

    /// [`edit_delays`](Self::edit_delays) under a cancellation token:
    /// the dirty-region resume polls `cancel` once per recomputed matrix
    /// row.
    ///
    /// On cancellation the edits **are** applied to the graph but the
    /// cached [`analysis`](Self::analysis) is stale: the session
    /// remembers which rows were left unhealed and the next uncancelled
    /// call — any edit batch, even an empty one — recomputes them
    /// together with its own dirty region, restoring the
    /// bit-identical-to-scratch invariant. Rows already recomputed
    /// before the abort are final (the recurrence is a pure function of
    /// the rows below), so a healing pass resumes where the cancelled
    /// one stopped rather than starting over.
    ///
    /// # Errors
    ///
    /// Returns the validation [`EditError`]s — and leaves the session
    /// untouched — for an unknown arc or invalid delay, or
    /// [`EditError::Cancelled`] when `cancel` fires mid-resume (edits
    /// applied, analysis stale until healed).
    pub fn edit_delays_with_cancel(
        &mut self,
        edits: &[DelayEdit],
        cancel: Option<&CancelToken>,
    ) -> Result<CycleTimeDelta, EditError> {
        // Validate the whole batch before mutating anything.
        for e in edits {
            if !self.sg.is_live_arc(e.arc) {
                return Err(EditError::UnknownArc(e.arc));
            }
            if Delay::new(e.delay).is_err() {
                return Err(EditError::InvalidDelay {
                    arc: e.arc,
                    delay: e.delay,
                });
            }
        }

        let before = self.analysis.cycle_time();
        self.restart.fill(UNREACHED);
        for e in edits {
            if self.sg.arc(e.arc).delay().get().to_bits() == e.delay.to_bits() {
                continue; // no-op edit: influences nothing
            }
            self.sg
                .set_delay(e.arc, e.delay)
                .expect("delay validated above");
            let slot = self.entry_of_arc[e.arc.index()];
            if slot != NO_ENTRY {
                self.structure.entries[slot as usize].delay = e.delay;
                self.lower_restart_rows(e.arc);
            }
            // Arcs outside the cyclic structure (prefix/disengageable)
            // never feed a border simulation: delay applied, zero dirty.

            // Keep the scenario lanes' delay sources in lockstep: each
            // reweighted graph takes the scaled edit and the warm δ
            // table folds it in place, so the scenario matrices resume
            // from the same min dirty row as the nominal one. (A stale
            // scenario state resyncs wholesale in `refresh_scenarios`.)
            if let Some(scen) = self.scenarios.as_mut() {
                if !scen.stale_weights && !scen.needs_reseed {
                    for j in 0..scen.set.len() {
                        let scaled = e.delay * scen.set.factor(j, e.arc);
                        scen.reweighted[j]
                            .set_delay(e.arc, scaled)
                            .expect("scaled delay stays finite and non-negative");
                        if slot != NO_ENTRY {
                            scen.wide.set_scenario_delay(slot as usize, j, scaled);
                        }
                    }
                }
            }
        }

        let (dirty_count, rows) = self.resume_dirty_rows(cancel)?;
        self.refinish();
        self.refresh_scenarios(cancel)?;
        self.edits += 1;
        Ok(CycleTimeDelta {
            before,
            after: self.analysis.cycle_time(),
            dirty: dirty_count,
            borders: self.border.len(),
            rows,
            rows_total: self.border.len() * (self.b as usize + 1),
        })
    }

    /// Applies one structural edit; see
    /// [`edit_structure`](Self::edit_structure).
    ///
    /// # Errors
    ///
    /// Returns [`EditError`] when the edit breaks a graph rule; the
    /// session is rolled back untouched.
    pub fn edit(&mut self, edit: GraphEdit) -> Result<CycleTimeDelta, EditError> {
        self.edit_structure(&[edit])
    }

    /// Applies a batch of structural and delay edits ([`GraphEdit`]) and
    /// re-analyses incrementally, per the module-level border-set remap
    /// contract: when the batch leaves the border set (and the event
    /// axis) unchanged, every warm lane resumes from the min dirty row
    /// like a delay batch; otherwise the lane mapping is rebuilt and one
    /// full warm pass reseeds the arena. Either way the refreshed
    /// [`analysis`](Self::analysis) is bit-identical to a from-scratch
    /// [`CycleTimeAnalysis::run`] on the mutated graph.
    ///
    /// An all-[`Delay`](GraphEdit::Delay) batch takes the
    /// [`edit_delays`](Self::edit_delays) fast path unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`EditError`] — rolling the graph back so the session is
    /// untouched — when any edit breaks a per-operation rule
    /// ([`EditError::Invalid`], [`EditError::UnknownArc`],
    /// [`EditError::InvalidDelay`]), when the mutated graph fails
    /// whole-graph validation, or when it has no border events left
    /// ([`EditError::NoCyclicBehavior`]).
    pub fn edit_structure(&mut self, edits: &[GraphEdit]) -> Result<CycleTimeDelta, EditError> {
        self.edit_structure_with_cancel(edits, None)
    }

    /// [`edit_structure`](Self::edit_structure) under a cancellation
    /// token, polled once per recomputed matrix row. Like a cancelled
    /// delay batch, a cancelled structural batch **is** committed to the
    /// graph — including a border-set change, whose new lane mapping is
    /// installed before the reseed starts — and the stale matrix heals
    /// on the next uncancelled call.
    ///
    /// # Errors
    ///
    /// The validation errors of [`edit_structure`](Self::edit_structure)
    /// (batch rolled back), or [`EditError::Cancelled`] (batch applied,
    /// analysis stale until healed).
    pub fn edit_structure_with_cancel(
        &mut self,
        edits: &[GraphEdit],
        cancel: Option<&CancelToken>,
    ) -> Result<CycleTimeDelta, EditError> {
        if edits.iter().all(|e| matches!(e, GraphEdit::Delay { .. })) {
            let delays: Vec<DelayEdit> = edits
                .iter()
                .map(|e| match *e {
                    GraphEdit::Delay { arc, delay } => DelayEdit { arc, delay },
                    _ => unreachable!("all-delay batch"),
                })
                .collect();
            return self.edit_delays_with_cancel(&delays, cancel);
        }

        let before = self.analysis.cycle_time();
        let old_event_count = self.sg.event_count();
        self.restart.fill(UNREACHED);

        // Pre-apply pass on the OLD graph: a cell influenced by a
        // removal or re-delay owes its change to an old-graph path
        // through the arc, so the old-graph token distance bounds it.
        for e in edits {
            let arc = match *e {
                GraphEdit::Delay { arc, .. } | GraphEdit::RemoveArc { arc } => arc,
                _ => continue,
            };
            if self.sg.is_live_arc(arc) && self.entry_of_arc[arc.index()] != NO_ENTRY {
                self.lower_restart_rows(arc);
            }
        }

        // Apply the batch on a transactional copy of the graph; any
        // rejected edit (or failed whole-graph validation) drops the
        // copy and leaves the session untouched.
        let backup = self.sg.clone();
        let mut added: Vec<ArcId> = Vec::new();
        for e in edits {
            let result = match e {
                GraphEdit::Delay { arc, delay } => {
                    if !self.sg.is_live_arc(*arc) {
                        self.sg = backup;
                        return Err(EditError::UnknownArc(*arc));
                    }
                    match self.sg.set_delay(*arc, *delay) {
                        Ok(()) => Ok(()),
                        Err(_) => {
                            self.sg = backup;
                            return Err(EditError::InvalidDelay {
                                arc: *arc,
                                delay: *delay,
                            });
                        }
                    }
                }
                GraphEdit::AddArc {
                    src,
                    dst,
                    delay,
                    marked,
                } => self
                    .sg
                    .add_arc(*src, *dst, *delay, *marked)
                    .map(|a| added.push(a)),
                GraphEdit::RemoveArc { arc } => self.sg.remove_arc(*arc),
                GraphEdit::AddEvent { label } => self.sg.add_event(label).map(|_| ()),
                GraphEdit::RemoveEvent { event } => self.sg.remove_event(*event),
            };
            if let Err(v) = result {
                self.sg = backup;
                return Err(EditError::Invalid(v));
            }
        }
        if let Err(v) = self.sg.validate() {
            self.sg = backup;
            return Err(EditError::Invalid(v));
        }
        let new_border = self.sg.border_events();
        if new_border.is_empty() {
            self.sg = backup;
            return Err(EditError::NoCyclicBehavior);
        }

        // Committed. Rebuild the flattened structure in place on the
        // warm scratch, then refresh the arc→entry map for it.
        self.structure.rebuild(&self.sg);
        self.entry_of_arc.clear();
        self.entry_of_arc.resize(self.sg.arc_count(), NO_ENTRY);
        for (slot, entry) in self.structure.entries.iter().enumerate() {
            self.entry_of_arc[entry.arc.index()] = slot as u32;
        }

        // The batch re-flattened the in-arc table and may have changed
        // the arc set, so the scenario reweighted graphs and the δ table
        // are stale until `refresh_scenarios` resyncs them. Flagged
        // before the cancellable resume so an abort heals later.
        if let Some(scen) = self.scenarios.as_mut() {
            scen.stale_weights = true;
        }

        let (dirty_count, rows);
        if new_border == self.border && self.sg.event_count() == old_event_count {
            // Surviving borders keep their warm lanes. Post-apply pass
            // on the NEW graph: any newly-created path crosses an added
            // arc, so the new-graph token distances bound the additions.
            for &a in &added {
                if self.entry_of_arc[a.index()] != NO_ENTRY {
                    self.lower_restart_rows(a);
                }
            }
            (dirty_count, rows) = self.resume_dirty_rows(cancel)?;
        } else {
            // Border set changed or the event axis grew: retire dead
            // lanes, seed lanes for the new borders, reseed in full.
            // Lane metadata is installed BEFORE the cancellable run so a
            // cancelled reseed heals through the standard stale path.
            self.border = new_border;
            self.b = self.border.len() as u32;
            self.restart.clear();
            self.restart.resize(self.border.len(), UNREACHED);
            self.records.truncate(self.border.len());
            for (k, &g) in self.border.iter().enumerate() {
                match self.records.get_mut(k) {
                    Some(r) => r.event = g,
                    None => self.records.push(BorderRecord {
                        event: g,
                        distances: Vec::new(),
                    }),
                }
            }
            let p_total = self.b as usize + 1;
            // The scenario lane axis is stale too — flag the full
            // reseed before the cancellable nominal run.
            if let Some(scen) = self.scenarios.as_mut() {
                scen.needs_reseed = true;
            }
            match self
                .wide
                .run_with(&self.sg, &self.structure, &self.border, self.b, cancel)
            {
                Ok(()) => {}
                Err(Halt::NotRepetitive(_)) => {
                    unreachable!("border events are repetitive by construction")
                }
                Err(Halt::Degenerate { .. }) => {
                    unreachable!("border set verified non-empty above and b >= 1")
                }
                Err(Halt::Cancelled(c)) => {
                    self.dirty_from = Some(c.rows_done);
                    return Err(EditError::Cancelled {
                        kind: c.kind,
                        rows_done: c.rows_done,
                        rows_total: p_total,
                    });
                }
            }
            self.dirty_from = None;
            for k in 0..self.border.len() {
                self.wide
                    .distance_series_into(k, &mut self.records[k].distances);
            }
            (dirty_count, rows) = (self.border.len(), self.border.len() * p_total);
        }

        self.refinish();
        self.refresh_scenarios(cancel)?;
        self.edits += 1;
        Ok(CycleTimeDelta {
            before,
            after: self.analysis.cycle_time(),
            dirty: dirty_count,
            borders: self.border.len(),
            rows,
            rows_total: self.border.len() * (self.b as usize + 1),
        })
    }

    /// Resumes every lane whose dirty row (this batch's `restart`,
    /// folded with a cancelled earlier pass's stale watermark) falls
    /// within the horizon, in one lockstep pass from the global minimum,
    /// then refreshes the dirty lanes' records. Returns
    /// `(dirty_lanes, dirty_rows)`.
    fn resume_dirty_rows(
        &mut self,
        cancel: Option<&CancelToken>,
    ) -> Result<(usize, usize), EditError> {
        let p_total = self.b as usize + 1;
        // Rows a cancelled earlier pass left stale dirty *every* lane
        // from that row on — fold them into this batch's per-lane r0.
        let stale = self.dirty_from.unwrap_or(p_total);
        let (mut dirty_count, mut rows) = (0usize, 0usize);
        let mut min_r0 = p_total;
        for k in 0..self.border.len() {
            let r0 = (self.restart[k] as usize).min(stale);
            if r0 >= p_total {
                continue; // influence starts beyond the horizon: clean
            }
            min_r0 = min_r0.min(r0);
            dirty_count += 1;
            rows += p_total - r0;
        }
        if dirty_count > 0 {
            // The scenario lanes share the dirty bound (the `r0`
            // criterion is a property of the structure, not the
            // delays): record it up front so a cancelled nominal
            // resume still heals the scenario matrices later.
            if let Some(scen) = self.scenarios.as_mut() {
                scen.dirty_from = Some(scen.dirty_from.map_or(min_r0, |d| d.min(min_r0)));
            }
            // One lockstep pass resumes every lane from the earliest
            // dirty row; clean lanes' recomputed rows are bit-identical
            // to their cached values (module docs), so only the dirty
            // lanes' records can have changed.
            if let Err(c) = self.wide.rerun_rows_from(&self.structure, min_r0, cancel) {
                // Rows below `rows_done` were already recomputed for the
                // edited structure and are final; everything from there
                // on stays stale until a later pass heals it.
                self.dirty_from = Some(c.rows_done);
                return Err(EditError::Cancelled {
                    kind: c.kind,
                    rows_done: c.rows_done,
                    rows_total: p_total,
                });
            }
            self.dirty_from = None;
            for k in 0..self.border.len() {
                if (self.restart[k] as usize).min(stale) < p_total {
                    // Refill the record in place: the per-lane buffer
                    // outlives the edit loop, so steady-state edits stay
                    // allocation-free.
                    self.wide
                        .distance_series_into(k, &mut self.records[k].distances);
                }
            }
        }
        Ok((dirty_count, rows))
    }

    /// Re-runs winner selection and critical-cycle backtracking from the
    /// cached records; the border set was verified non-empty by the
    /// caller.
    fn refinish(&mut self) {
        self.analysis = CycleTimeAnalysis::finish(
            &self.sg,
            &self.structure,
            self.border.clone(),
            self.records.clone(),
            &mut self.finish_arena,
        )
        .expect("border set verified non-empty");
    }

    /// Turns on corner/sample-lane analysis: one `b × s` wide pass over
    /// the session's graph computes every (border, scenario) matrix, and
    /// from then on every edit batch keeps the scenario lanes warm —
    /// delay edits fold the scaled delays into the δ table and resume
    /// all scenario lanes from the same min dirty row as the nominal
    /// matrix; structural edits resync the reweighted graphs (reseeding
    /// only when the border set or event axis changed). The produced
    /// [`ScenarioAnalysis`] is bit-identical to
    /// [`CycleTimeAnalysis::run_scenarios`] on
    /// [`graph`](Self::graph) with the same set.
    ///
    /// Calling it again replaces the scenario set; `set` is re-derived
    /// over the session graph's arc-slot count, so a set built for a
    /// different graph generation is fine.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Cancelled`] when `cancel` fires
    /// mid-sweep; no scenario state is installed then.
    pub fn enable_scenarios(
        &mut self,
        set: &ScenarioSet,
    ) -> Result<&ScenarioAnalysis, AnalysisError> {
        self.enable_scenarios_with_cancel(set, None)
    }

    /// [`enable_scenarios`](Self::enable_scenarios) under a cancellation
    /// token, polled once per scenario-matrix row.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Cancelled`] when `cancel` fires
    /// mid-sweep; no scenario state is installed then.
    pub fn enable_scenarios_with_cancel(
        &mut self,
        set: &ScenarioSet,
        cancel: Option<&CancelToken>,
    ) -> Result<&ScenarioAnalysis, AnalysisError> {
        let set = set.resized(self.sg.arc_count());
        let s = set.len();
        let reweighted: Vec<SignalGraph> = (0..s).map(|j| set.reweighted(&self.sg, j)).collect();
        let mut wide = WideArena::with_kernel(self.wide.kernel());
        if let Err(halt) = wide.run_scenarios_with(
            &self.sg,
            &self.structure,
            &self.border,
            s,
            |arc, j| reweighted[j].arc(arc).delay().get(),
            self.b,
            cancel,
        ) {
            return Err(halt_to_error(halt));
        }
        let mut structure = CyclicStructure::new(&self.sg);
        let mut finish = SimArena::new();
        let analysis = finish_scenarios(
            &self.border,
            &set,
            &reweighted,
            &wide,
            &mut structure,
            &mut finish,
        );
        self.scenarios = Some(ScenarioState {
            set,
            reweighted,
            wide,
            finish,
            structure,
            analysis,
            dirty_from: None,
            stale_weights: false,
            needs_reseed: false,
        });
        Ok(&self.scenarios.as_ref().expect("just installed").analysis)
    }

    /// Drops the warm scenario state; edits go back to nominal-only.
    pub fn disable_scenarios(&mut self) {
        self.scenarios = None;
    }

    /// The current scenario analysis, when scenarios are enabled —
    /// always bit-identical to
    /// [`CycleTimeAnalysis::run_scenarios`] on
    /// [`graph`](Self::graph) with the current set.
    pub fn scenario_analysis(&self) -> Option<&ScenarioAnalysis> {
        self.scenarios.as_ref().map(|s| &s.analysis)
    }

    /// The enabled scenario set (re-derived over the current arc-slot
    /// count), if any.
    pub fn scenario_set(&self) -> Option<&ScenarioSet> {
        self.scenarios.as_ref().map(|s| &s.set)
    }

    /// Number of enabled scenario lanes per border (0 when disabled).
    pub fn scenario_count(&self) -> usize {
        self.scenarios.as_ref().map_or(0, |s| s.set.len())
    }

    /// Brings the scenario state back in sync with the session graph
    /// after an edit batch (or heals a cancelled earlier pass): resyncs
    /// stale reweighted graphs / δ tables, reseeds or resumes the lane
    /// matrices from the recorded dirty row, and re-runs every
    /// scenario's winner selection. No-op when scenarios are disabled.
    fn refresh_scenarios(&mut self, cancel: Option<&CancelToken>) -> Result<(), EditError> {
        let p_total = self.b as usize + 1;
        let Some(scen) = self.scenarios.as_mut() else {
            return Ok(());
        };
        if scen.stale_weights {
            scen.set = scen.set.resized(self.sg.arc_count());
            let reweighted: Vec<SignalGraph> = (0..scen.set.len())
                .map(|j| scen.set.reweighted(&self.sg, j))
                .collect();
            scen.reweighted = reweighted;
            if !scen.needs_reseed {
                // Slots remapped but the lane axis survived: re-derive
                // the δ table in place, the matrices resume below.
                let ScenarioState {
                    reweighted, wide, ..
                } = scen;
                wide.rebuild_scenario_deltas(&self.structure, |arc, j| {
                    reweighted[j].arc(arc).delay().get()
                });
            }
            scen.stale_weights = false;
        }
        if scen.needs_reseed {
            scen.needs_reseed = false;
            let ScenarioState {
                set,
                reweighted,
                wide,
                ..
            } = scen;
            match wide.run_scenarios_with(
                &self.sg,
                &self.structure,
                &self.border,
                set.len(),
                |arc, j| reweighted[j].arc(arc).delay().get(),
                self.b,
                cancel,
            ) {
                Ok(()) => {}
                Err(Halt::NotRepetitive(_)) => {
                    unreachable!("border events are repetitive by construction")
                }
                Err(Halt::Degenerate { .. }) => {
                    unreachable!("border verified non-empty and scenario sets are never empty")
                }
                Err(Halt::Cancelled(c)) => {
                    // Shape and δ table are installed before the rows
                    // compute, so the standard resume heals from here.
                    scen.dirty_from = Some(c.rows_done);
                    return Err(EditError::Cancelled {
                        kind: c.kind,
                        rows_done: c.rows_done,
                        rows_total: p_total,
                    });
                }
            }
            scen.dirty_from = None;
        } else if let Some(r0) = scen.dirty_from {
            if r0 < p_total {
                if let Err(c) = scen.wide.rerun_rows_from(&self.structure, r0, cancel) {
                    scen.dirty_from = Some(c.rows_done);
                    return Err(EditError::Cancelled {
                        kind: c.kind,
                        rows_done: c.rows_done,
                        rows_total: p_total,
                    });
                }
            }
            scen.dirty_from = None;
        }
        // Winner selection re-runs on the reweighted graphs every
        // batch, mirroring the nominal `refinish`.
        let ScenarioState {
            set,
            reweighted,
            wide,
            finish,
            structure,
            analysis,
            ..
        } = scen;
        *analysis = finish_scenarios(&self.border, set, reweighted, wide, structure, finish);
        Ok(())
    }

    /// Captures the full warm state — graph, structure, records, wide
    /// arena — for later [`rollback`](Self::rollback). Speculative
    /// explorers snapshot once, try an edit batch, and roll back the
    /// losers; a rollback restores warm-lane state too, so the next
    /// speculation resumes incrementally instead of reopening.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            state: Box::new(self.clone()),
        }
    }

    /// Restores the session to `snapshot`, keeping the snapshot usable
    /// for further rollbacks (one clone per call).
    pub fn rollback(&mut self, snapshot: &SessionSnapshot) {
        *self = (*snapshot.state).clone();
    }

    /// Restores the session to `snapshot`, consuming it (no clone).
    pub fn restore(&mut self, snapshot: SessionSnapshot) {
        *self = *snapshot.state;
    }

    /// Lowers each border's restart row to `ε(g → src(a)) + marked(a)`,
    /// the first row of `g`'s simulation any path through `a` can touch.
    fn lower_restart_rows(&mut self, a: ArcId) {
        let arc = self.sg.arc(a);
        let marked = arc.is_marked() as u32;
        token_distances_to(&self.sg, arc.src(), &mut self.dist_back, &mut self.deque);
        for (k, &g) in self.border.iter().enumerate() {
            let to_u = self.dist_back[g.index()];
            if to_u != UNREACHED {
                self.restart[k] = self.restart[k].min(to_u.saturating_add(marked));
            }
        }
    }
}

/// A point-in-time copy of an [`AnalysisSession`]'s full warm state;
/// created by [`AnalysisSession::snapshot`], applied by
/// [`rollback`](AnalysisSession::rollback) /
/// [`restore`](AnalysisSession::restore). The backbone of speculative
/// design exploration: try a structural edit, keep it if the objective
/// improves, roll back if not — without ever reopening the session.
#[derive(Clone, Debug)]
pub struct SessionSnapshot {
    state: Box<AnalysisSession>,
}

/// Collects each scenario's records from its `b` lanes (lane `j·b + k`)
/// and re-runs winner selection + critical-cycle backtracking on the
/// scenario's reweighted graph — the same finish a from-scratch
/// [`CycleTimeAnalysis::run_scenarios`] performs, so the session's
/// scenario analyses stay bit-identical to scratch.
fn finish_scenarios(
    border: &[EventId],
    set: &ScenarioSet,
    reweighted: &[SignalGraph],
    wide: &WideArena,
    structure: &mut CyclicStructure,
    finish: &mut SimArena,
) -> ScenarioAnalysis {
    let bn = border.len();
    let labels: Vec<String> = (0..set.len()).map(|j| set.label(j).to_string()).collect();
    let mut per = Vec::with_capacity(set.len());
    for (j, rg) in reweighted.iter().enumerate() {
        let records: Vec<BorderRecord> = (0..bn)
            .map(|k| BorderRecord {
                event: border[k],
                distances: wide.distance_series(j * bn + k),
            })
            .collect();
        structure.rebuild(rg);
        per.push(
            CycleTimeAnalysis::finish(rg, structure, border.to_vec(), records, finish)
                .expect("border set verified non-empty"),
        );
    }
    ScenarioAnalysis::new(labels, per)
}

/// 0-1 BFS over the cyclic structure's arc set, backwards: `dist[e]`
/// becomes the minimum number of marked arcs on any path from `e` to
/// `target` (`UNREACHED` when no path exists). Marked arcs weigh 1
/// (they cross a period border), unmarked arcs 0.
fn token_distances_to(
    sg: &SignalGraph,
    target: EventId,
    dist: &mut Vec<u32>,
    deque: &mut VecDeque<EventId>,
) {
    dist.clear();
    dist.resize(sg.event_count(), UNREACHED);
    dist[target.index()] = 0;
    deque.clear();
    deque.push_back(target);
    while let Some(e) = deque.pop_front() {
        let d = dist[e.index()];
        for a in sg.in_arcs(e) {
            let arc = sg.arc(a);
            if arc.is_disengageable()
                || !sg.is_repetitive(arc.src())
                || !sg.is_repetitive(arc.dst())
            {
                continue; // same arc set the simulations run on
            }
            let prev = arc.src();
            let w = arc.is_marked() as u32;
            if d + w < dist[prev.index()] {
                dist[prev.index()] = d + w;
                if w == 0 {
                    deque.push_front(prev);
                } else {
                    deque.push_back(prev);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    fn assert_matches_scratch(session: &AnalysisSession, ctx: &str) {
        let scratch = CycleTimeAnalysis::run(session.graph()).unwrap();
        let a = session.analysis();
        assert_eq!(
            a.cycle_time().as_f64().to_bits(),
            scratch.cycle_time().as_f64().to_bits(),
            "{ctx}: cycle time"
        );
        assert_eq!(
            a.cycle_time().periods(),
            scratch.cycle_time().periods(),
            "{ctx}"
        );
        assert_eq!(a.critical_cycle(), scratch.critical_cycle(), "{ctx}");
        assert_eq!(a.critical_borders(), scratch.critical_borders(), "{ctx}");
        assert_eq!(a.border_events(), scratch.border_events(), "{ctx}");
        for (ra, rb) in a.records().iter().zip(scratch.records()) {
            assert_eq!(ra.event, rb.event, "{ctx}");
            assert_eq!(ra.distances, rb.distances, "{ctx}");
        }
    }

    #[test]
    fn open_matches_from_scratch_run() {
        let session = AnalysisSession::open(figure2()).unwrap();
        assert_eq!(session.analysis().cycle_time().as_f64(), 10.0);
        assert_matches_scratch(&session, "open");
    }

    #[test]
    fn edits_track_the_from_scratch_analysis_bit_identically() {
        let sg = figure2();
        let mut session = AnalysisSession::open(sg).unwrap();
        let edit = |s: &AnalysisSession, src: &str, dst: &str| s.resolve_arc(src, dst).unwrap();
        // Stretch the a-side, shrink it back, touch the b-side, then a
        // marked arc — mixed single edits, each verified against scratch.
        let script = [
            ("a+", "c+", 8.0),
            ("a+", "c+", 3.0),
            ("b+", "c+", 9.5),
            ("c-", "a+", 0.0),
            ("c-", "a+", 2.0),
        ];
        for (i, (src, dst, delay)) in script.into_iter().enumerate() {
            let arc = edit(&session, src, dst);
            let delta = session.edit_delay(arc, delay).unwrap();
            assert_eq!(delta.borders, 2);
            assert_matches_scratch(&session, &format!("edit {i}: {src}->{dst}={delay}"));
        }
        assert_eq!(session.edits_applied(), 5);
    }

    #[test]
    fn batched_edits_apply_atomically() {
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let a1 = session.resolve_arc("a+", "c+").unwrap();
        let a2 = session.resolve_arc("b-", "c-").unwrap();
        let delta = session
            .edit_delays(&[
                DelayEdit {
                    arc: a1,
                    delay: 6.0,
                },
                DelayEdit {
                    arc: a2,
                    delay: 4.5,
                },
            ])
            .unwrap();
        assert_eq!(delta.before.as_f64(), 10.0);
        assert_matches_scratch(&session, "batch");
        assert_eq!(session.edits_applied(), 1);
    }

    #[test]
    fn prefix_arc_edits_are_clean() {
        // The e- → f- arc feeds no border simulation: the delta reports
        // zero dirty borders and the analysis is unchanged (and still
        // agrees with scratch, which ignores prefix delays too).
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let e = session.graph().event_by_label("e-").unwrap();
        let f = session.graph().event_by_label("f-").unwrap();
        let arc = session.graph().arc_between(e, f).unwrap();
        let delta = session.edit_delay(arc, 99.0).unwrap();
        assert_eq!(delta.dirty, 0);
        assert_eq!(delta.after.as_f64(), 10.0);
        assert_eq!(session.graph().arc(arc).delay().get(), 99.0);
        assert_matches_scratch(&session, "prefix edit");
    }

    #[test]
    fn noop_edit_is_clean() {
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let arc = session.resolve_arc("a+", "c+").unwrap();
        let delta = session.edit_delay(arc, 3.0).unwrap();
        assert_eq!(delta.dirty, 0);
        assert_eq!(delta.after.as_f64(), 10.0);
    }

    #[test]
    fn dirty_region_restart_reuses_rows_by_token_distance() {
        // A long ring with tokens spread out plus a local side loop: an
        // edit near n0 can only influence a distant border's simulation
        // after the tokens between them have been spent, so those
        // simulations resume deep into their matrices instead of
        // re-running from row 0.
        let mut b = SignalGraph::builder();
        let n: Vec<_> = (0..12).map(|i| b.event(&format!("n{i}"))).collect();
        // Three tokens spread around the ring → a 3-event border set,
        // with several periods of distance between the token arcs.
        for i in 0..12 {
            let (src, dst) = (n[i], n[(i + 1) % 12]);
            if i == 3 || i == 7 || i == 11 {
                b.marked_arc(src, dst, 1.0);
            } else {
                b.arc(src, dst, 1.0);
            }
        }
        let side = b.event("s");
        b.arc(n[0], side, 1.0);
        b.marked_arc(side, n[0], 1.0);
        let sg = b.build().unwrap();
        let mut session = AnalysisSession::open(sg).unwrap();
        let borders = session.analysis().border_events().len();
        assert_eq!(borders, 3, "n0, n4, n8");
        let s = session.graph().event_by_label("s").unwrap();
        let n0 = session.graph().event_by_label("n0").unwrap();
        let arc = session.graph().arc_between(n0, s).unwrap();
        let delta = session.edit_delay(arc, 5.0).unwrap();
        // r0(n0) = 0, r0(n8) = 1, r0(n4) = 2 → 4 + 3 + 2 = 9 of 12 rows.
        assert_eq!((delta.rows, delta.rows_total), (9, 12));
        assert!(
            delta.rows < delta.rows_total,
            "token distance must cut recomputed rows: {} of {}",
            delta.rows,
            delta.rows_total
        );
        assert_matches_scratch(&session, "side loop edit");
    }

    #[test]
    fn invalid_edits_leave_the_session_untouched() {
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let arc = session.resolve_arc("a+", "c+").unwrap();
        let bad_arc = ArcId(10_000);
        assert_eq!(
            session
                .edit_delays(&[
                    DelayEdit { arc, delay: 9.0 },
                    DelayEdit {
                        arc: bad_arc,
                        delay: 1.0
                    },
                ])
                .unwrap_err(),
            EditError::UnknownArc(bad_arc)
        );
        assert!(matches!(
            session.edit_delay(arc, f64::NAN).unwrap_err(),
            EditError::InvalidDelay { .. }
        ));
        assert!(matches!(
            session.edit_delay(arc, -1.0).unwrap_err(),
            EditError::InvalidDelay { .. }
        ));
        // The rejected batch must not have applied its valid prefix.
        assert_eq!(session.graph().arc(arc).delay().get(), 3.0);
        assert_eq!(session.analysis().cycle_time().as_f64(), 10.0);
        assert_eq!(session.edits_applied(), 0);
    }

    #[test]
    fn resolve_arc_reports_label_errors() {
        let session = AnalysisSession::open(figure2()).unwrap();
        assert_eq!(
            session.resolve_arc("zz", "a+").unwrap_err(),
            EditError::NoSuchEvent("zz".to_owned())
        );
        assert_eq!(
            session.resolve_arc("a+", "b+").unwrap_err(),
            EditError::NoArcBetween("a+".to_owned(), "b+".to_owned())
        );
    }

    #[test]
    fn rerun_in_is_the_session_edit() {
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let arc = session.resolve_arc("a+", "c+").unwrap();
        let delta =
            CycleTimeAnalysis::rerun_in(&mut session, &[DelayEdit { arc, delay: 12.0 }]).unwrap();
        assert!(delta.after.as_f64() > delta.before.as_f64());
        assert_matches_scratch(&session, "rerun_in");
    }

    #[test]
    fn cancelled_edit_heals_bit_identically_on_the_next_call() {
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let arc = session.resolve_arc("a+", "c+").unwrap();
        for budget in 0..3u64 {
            let token = CancelToken::cancel_after_checks(budget);
            let delay = 8.0 + budget as f64;
            let err = session
                .edit_delays_with_cancel(&[DelayEdit { arc, delay }], Some(&token))
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    EditError::Cancelled {
                        kind: CancelKind::Explicit,
                        ..
                    }
                ),
                "{err}"
            );
            assert!(session.is_stale());
            // The edit is applied even though the analysis is stale.
            assert_eq!(session.graph().arc(arc).delay().get(), delay);
            // A later uncancelled call — here an empty batch — heals.
            session.edit_delays(&[]).unwrap();
            assert!(!session.is_stale());
            assert_matches_scratch(&session, &format!("healed after budget {budget}"));
        }
    }

    #[test]
    fn cancelled_open_reports_progress() {
        let token = CancelToken::cancel_after_checks(1);
        let err = AnalysisSession::open_with_cancel(figure2(), KernelBackend::Auto, Some(&token))
            .unwrap_err();
        assert_eq!(
            err,
            AnalysisError::Cancelled {
                kind: CancelKind::Explicit,
                rows_done: 1,
                rows_total: 3
            }
        );
    }

    /// Split the `src -> dst` arc into a pipeline stage through a fresh
    /// event: the inserted `label -> dst` arc is marked, so the batch
    /// adds a token, changes the border set, and grows the event axis —
    /// the full reseed path.
    fn split_batch(session: &AnalysisSession, src: &str, dst: &str, label: &str) -> Vec<GraphEdit> {
        let arc = session.resolve_arc(src, dst).unwrap();
        let a = session.graph().arc(arc);
        let (s, d, delay) = (a.src(), a.dst(), a.delay().get());
        let mid = EventId(session.graph().event_count() as u32);
        vec![
            GraphEdit::RemoveArc { arc },
            GraphEdit::AddEvent {
                label: label.to_owned(),
            },
            GraphEdit::AddArc {
                src: s,
                dst: mid,
                delay: delay / 2.0,
                marked: false,
            },
            GraphEdit::AddArc {
                src: mid,
                dst: d,
                delay: delay / 2.0,
                marked: true,
            },
        ]
    }

    #[test]
    fn structural_add_arc_resumes_warm_lanes() {
        // An unmarked cyclic arc that leaves the border set and event
        // axis unchanged: surviving borders keep their warm lanes and
        // resume from the post-apply token-distance bound.
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let ap = session.graph().event_by_label("a+").unwrap();
        let bm = session.graph().event_by_label("b-").unwrap();
        let delta = session
            .edit(GraphEdit::AddArc {
                src: ap,
                dst: bm,
                delay: 4.0,
                marked: false,
            })
            .unwrap();
        // Border [a+, b+] with b = 2: r0(a+) = ε(a+→a+) = 0,
        // r0(b+) = ε(b+→a+) = 1 → (3 - 0) + (3 - 1) = 5 of 6 rows.
        assert_eq!((delta.dirty, delta.borders), (2, 2));
        assert_eq!((delta.rows, delta.rows_total), (5, 6));
        assert_matches_scratch(&session, "add unmarked arc");
    }

    #[test]
    fn structural_remove_arc_resumes_warm_lanes() {
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let ap = session.graph().event_by_label("a+").unwrap();
        let bm = session.graph().event_by_label("b-").unwrap();
        session
            .edit(GraphEdit::AddArc {
                src: ap,
                dst: bm,
                delay: 9.0,
                marked: false,
            })
            .unwrap();
        let arc = session.graph().arc_between(ap, bm).unwrap();
        // Removal bounds come from the pre-apply pass on the OLD graph.
        let delta = session.edit(GraphEdit::RemoveArc { arc }).unwrap();
        assert_eq!((delta.rows, delta.rows_total), (5, 6));
        assert!(!session.graph().is_live_arc(arc));
        assert_matches_scratch(&session, "remove arc");
    }

    #[test]
    fn pipeline_split_reseeds_the_border_lanes() {
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let batch = split_batch(&session, "a+", "c+", "s+");
        let delta = session.edit_structure(&batch).unwrap();
        // The marked s+ -> c+ arc makes c+ a border event: [a+, b+]
        // becomes [a+, b+, c+], every lane reseeds.
        assert_eq!(session.analysis().border_events().len(), 3);
        assert_eq!((delta.dirty, delta.borders), (3, 3));
        assert_eq!(delta.rows, delta.rows_total);
        assert_eq!(session.graph().event_count(), 9);
        assert_matches_scratch(&session, "pipeline split");
        // The session stays incrementally editable on the new shape.
        let arc = session.resolve_arc("s+", "c+").unwrap();
        session.edit_delay(arc, 4.0).unwrap();
        assert_matches_scratch(&session, "delay edit after split");
    }

    #[test]
    fn mixed_delay_and_structural_edits_in_one_batch() {
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let d_arc = session.resolve_arc("b+", "c+").unwrap();
        let mut batch = split_batch(&session, "a+", "c+", "s+");
        batch.push(GraphEdit::Delay {
            arc: d_arc,
            delay: 7.5,
        });
        session.edit_structure(&batch).unwrap();
        assert_eq!(session.graph().arc(d_arc).delay().get(), 7.5);
        assert_matches_scratch(&session, "mixed batch");
    }

    #[test]
    fn all_delay_graph_edits_take_the_fast_path() {
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let arc = session.resolve_arc("a+", "c+").unwrap();
        let delta = session
            .edit_structure(&[GraphEdit::Delay { arc, delay: 8.0 }])
            .unwrap();
        assert!(delta.rows <= delta.rows_total);
        assert_matches_scratch(&session, "delay via edit_structure");
    }

    #[test]
    fn invalid_structural_batch_rolls_back_untouched() {
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let ap = session.graph().event_by_label("a+").unwrap();
        let bm = session.graph().event_by_label("b-").unwrap();
        let arcs_before = session.graph().arc_count();
        // Valid prefix, then an unknown arc: whole batch rolled back.
        let err = session
            .edit_structure(&[
                GraphEdit::AddArc {
                    src: ap,
                    dst: bm,
                    delay: 1.0,
                    marked: false,
                },
                GraphEdit::RemoveArc { arc: ArcId(10_000) },
            ])
            .unwrap_err();
        assert!(matches!(err, EditError::Invalid(_)), "{err}");
        assert_eq!(session.graph().arc_count(), arcs_before);
        assert_eq!(session.edits_applied(), 0);
        assert_matches_scratch(&session, "after rollback");

        // A batch that passes per-op checks but fails whole-graph
        // validation (a dangling event breaks strong connectivity).
        let err = session
            .edit_structure(&[GraphEdit::AddEvent {
                label: "orphan".to_owned(),
            }])
            .unwrap_err();
        assert!(matches!(err, EditError::Invalid(_)), "{err}");
        assert_eq!(session.graph().event_count(), 8);
        assert_matches_scratch(&session, "after validation rollback");
    }

    #[test]
    fn emptying_the_border_is_rejected() {
        let mut b = SignalGraph::builder();
        let x = b.event("x+");
        let y = b.event("x-");
        b.arc(x, y, 1.0);
        let marked = b.marked_arc(y, x, 1.0);
        let sg = b.build().unwrap();
        let mut session = AnalysisSession::open(sg).unwrap();
        let err = session
            .edit(GraphEdit::RemoveArc { arc: marked })
            .unwrap_err();
        // The batch leaves {x+, x-} with no token anywhere — no border
        // event, nothing to analyse — so it must roll back. (It would
        // also fail liveness validation; the border check is the
        // structured error when validation alone cannot catch it.)
        assert!(
            matches!(err, EditError::Invalid(_) | EditError::NoCyclicBehavior),
            "{err}"
        );
        assert!(session.graph().is_live_arc(marked));
        assert_matches_scratch(&session, "after border-emptying rollback");
    }

    #[test]
    fn cancelled_structural_edit_heals_bit_identically() {
        for budget in 0..3u64 {
            let mut session = AnalysisSession::open(figure2()).unwrap();
            let batch = split_batch(&session, "a+", "c+", "s+");
            let token = CancelToken::cancel_after_checks(budget);
            let err = session
                .edit_structure_with_cancel(&batch, Some(&token))
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    EditError::Cancelled {
                        kind: CancelKind::Explicit,
                        ..
                    }
                ),
                "{err}"
            );
            assert!(session.is_stale());
            // The structural batch is committed even though the
            // analysis is stale...
            assert_eq!(session.graph().event_count(), 9);
            // ...and any later uncancelled call heals bit-identically.
            session.edit_delays(&[]).unwrap();
            assert!(!session.is_stale());
            assert_matches_scratch(&session, &format!("healed split, budget {budget}"));
        }
    }

    #[test]
    fn snapshot_rollback_restores_warm_state() {
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let tau0 = session.analysis().cycle_time().as_f64();
        let snap = session.snapshot();

        let batch = split_batch(&session, "a+", "c+", "s+");
        session.edit_structure(&batch).unwrap();
        assert_eq!(session.graph().event_count(), 9);

        session.rollback(&snap);
        assert_eq!(session.graph().event_count(), 8);
        assert_eq!(session.analysis().cycle_time().as_f64(), tau0);
        assert_eq!(session.edits_applied(), 0);
        assert_matches_scratch(&session, "after rollback");

        // The rolled-back session stays warm and editable.
        let arc = session.resolve_arc("a+", "c+").unwrap();
        session.edit_delay(arc, 6.0).unwrap();
        assert_matches_scratch(&session, "edit after rollback");

        // `restore` consumes the snapshot without cloning.
        session.restore(snap);
        assert_eq!(session.analysis().cycle_time().as_f64(), tau0);
        assert_matches_scratch(&session, "after restore");
    }

    fn assert_scenarios_match_scratch(session: &AnalysisSession, ctx: &str) {
        let set = session.scenario_set().expect("scenarios enabled");
        let scratch = CycleTimeAnalysis::run_scenarios(session.graph(), set).unwrap();
        let live = session.scenario_analysis().unwrap();
        assert_eq!(live.len(), scratch.len(), "{ctx}: scenario count");
        for j in 0..live.len() {
            assert_eq!(live.label(j), scratch.label(j), "{ctx}: label {j}");
            let (a, b) = (live.analysis(j), scratch.analysis(j));
            assert_eq!(
                a.cycle_time().as_f64().to_bits(),
                b.cycle_time().as_f64().to_bits(),
                "{ctx}: scenario {j} cycle time"
            );
            assert_eq!(
                a.critical_cycle(),
                b.critical_cycle(),
                "{ctx}: scenario {j}"
            );
            assert_eq!(
                a.critical_borders(),
                b.critical_borders(),
                "{ctx}: scenario {j}"
            );
        }
    }

    #[test]
    fn scenario_lanes_stay_warm_across_edit_kinds() {
        use crate::analysis::scenario::Corner;

        let mut session = AnalysisSession::open(figure2()).unwrap();
        let set = ScenarioSet::corners(
            10.0,
            &[Corner::Min, Corner::Typ, Corner::Max],
            session.graph().arc_count(),
        )
        .unwrap();
        session.enable_scenarios(&set).unwrap();
        assert_eq!(session.scenario_count(), 3);
        assert_scenarios_match_scratch(&session, "after enable");

        // Delay edits fold the scaled δs in place and resume the
        // scenario lanes from the nominal min dirty row.
        let arc = session.resolve_arc("a+", "c+").unwrap();
        session.edit_delay(arc, 9.0).unwrap();
        assert_matches_scratch(&session, "delay edit, nominal");
        assert_scenarios_match_scratch(&session, "delay edit");

        // Warm structural path: border set and event axis survive.
        let ap = session.graph().event_by_label("a+").unwrap();
        let bm = session.graph().event_by_label("b-").unwrap();
        session
            .edit(GraphEdit::AddArc {
                src: ap,
                dst: bm,
                delay: 4.0,
                marked: false,
            })
            .unwrap();
        assert_matches_scratch(&session, "structural add, nominal");
        assert_scenarios_match_scratch(&session, "structural add");

        // Reseed path: the batch changes the border set, so the set is
        // re-derived over the grown arc axis and all lanes reseed.
        let batch = split_batch(&session, "b+", "c+", "s+");
        session.edit_structure(&batch).unwrap();
        assert_eq!(
            session.scenario_set().unwrap().arc_slots(),
            session.graph().arc_count()
        );
        assert_matches_scratch(&session, "split, nominal");
        assert_scenarios_match_scratch(&session, "split reseed");

        session.disable_scenarios();
        assert_eq!(session.scenario_count(), 0);
        assert!(session.scenario_analysis().is_none());
    }

    #[test]
    fn sampled_scenarios_follow_session_edits() {
        let mut session = AnalysisSession::open(figure2()).unwrap();
        let set = ScenarioSet::samples(5, 42, 20.0, session.graph().arc_count()).unwrap();
        session.enable_scenarios(&set).unwrap();
        assert_scenarios_match_scratch(&session, "sampled enable");

        let arc = session.resolve_arc("c-", "b+").unwrap();
        session.edit_delay(arc, 7.5).unwrap();
        assert_scenarios_match_scratch(&session, "sampled delay edit");
    }

    #[test]
    fn cancelled_scenario_refresh_heals_bit_identically() {
        use crate::analysis::scenario::Corner;

        let mut session = AnalysisSession::open(figure2()).unwrap();
        let set = ScenarioSet::corners(
            15.0,
            &[Corner::Min, Corner::Typ, Corner::Max],
            session.graph().arc_count(),
        )
        .unwrap();
        session.enable_scenarios(&set).unwrap();
        let arc = session.resolve_arc("a+", "c+").unwrap();

        // Sweep the cancel budget across both the nominal resume and
        // the scenario refresh; every abort must heal bit-identically
        // on the next uncancelled (empty) batch.
        for budget in 0..8u64 {
            let token = CancelToken::cancel_after_checks(budget);
            let delay = 8.0 + budget as f64;
            match session.edit_delays_with_cancel(&[DelayEdit { arc, delay }], Some(&token)) {
                Ok(_) => {}
                Err(EditError::Cancelled { .. }) => {
                    assert!(session.is_stale());
                    session.edit_delays(&[]).unwrap();
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(!session.is_stale());
            assert_eq!(session.graph().arc(arc).delay().get(), delay);
            assert_matches_scratch(&session, &format!("budget {budget}, nominal"));
            assert_scenarios_match_scratch(&session, &format!("budget {budget}"));
        }

        // A cancelled structural reseed heals the scenario axis too.
        let batch = split_batch(&session, "a+", "c+", "t+");
        let token = CancelToken::cancel_after_checks(2);
        let err = session
            .edit_structure_with_cancel(&batch, Some(&token))
            .unwrap_err();
        assert!(matches!(err, EditError::Cancelled { .. }), "{err}");
        assert!(session.is_stale());
        session.edit_delays(&[]).unwrap();
        assert!(!session.is_stale());
        assert_matches_scratch(&session, "healed split, nominal");
        assert_scenarios_match_scratch(&session, "healed split");
    }

    #[test]
    fn snapshot_rollback_restores_scenario_state() {
        use crate::analysis::scenario::Corner;

        let mut session = AnalysisSession::open(figure2()).unwrap();
        let set = ScenarioSet::corners(
            10.0,
            &[Corner::Min, Corner::Max],
            session.graph().arc_count(),
        )
        .unwrap();
        session.enable_scenarios(&set).unwrap();
        let taus0 = session.scenario_analysis().unwrap().taus();
        let snap = session.snapshot();

        let arc = session.resolve_arc("a+", "c+").unwrap();
        session.edit_delay(arc, 11.0).unwrap();
        assert_ne!(session.scenario_analysis().unwrap().taus(), taus0);

        session.rollback(&snap);
        assert_eq!(session.scenario_analysis().unwrap().taus(), taus0);
        assert_scenarios_match_scratch(&session, "after rollback");

        // The rolled-back scenario lanes stay warm and editable.
        session.edit_delay(arc, 6.0).unwrap();
        assert_scenarios_match_scratch(&session, "edit after rollback");
    }

    #[test]
    fn acyclic_graph_cannot_open_a_session() {
        let mut b = SignalGraph::builder();
        let s = b.initial_event("s");
        let t = b.finite_event("t");
        b.arc(s, t, 1.0);
        let sg = b.build().unwrap();
        assert_eq!(
            AnalysisSession::open(sg).unwrap_err(),
            AnalysisError::NoCyclicBehavior
        );
    }
}
