//! Kernel-backed discrete-event timing simulation of a Timed Signal Graph.
//!
//! [`TimingSimulation`](super::sim::TimingSimulation) evaluates the
//! unfolding *period-synchronously*: one topological sweep per period.
//! This module computes the identical occurrence times `t(e_i)` by
//! running the graph as a true discrete-event system on the shared
//! [`tsg_sim::EventQueue`] kernel: every arc sends a timed token, an
//! event fires the instant its last token arrives, and each firing
//! schedules the tokens of its successors.
//!
//! Having both evaluation strategies on one model is not redundancy —
//! they cross-validate each other in the workspace tests, the
//! event-driven form extends to workloads the synchronous sweep cannot
//! express (early termination, tracing, interleaving with other event
//! sources), and it feeds the long-run estimator in `tsg-baselines`
//! through the same kernel as the gate-level netlist simulator.

use tsg_sim::{
    AnyQueue, CancelKind, CancelToken, EventQueue, QueueCheckpoint, QueueKind, TraceRecorder,
};

use crate::event::{EventId, Polarity};
use crate::graph::SignalGraph;

/// Pops between cancellation polls of the event-driven drain loop: one
/// arrival is far cheaper than a matrix row, so the check is amortised
/// over a batch instead of paid per event.
const CANCEL_POLL_EVERY: u64 = 256;

/// Error of [`EventSimulation::run_in_with_cancel`]: the drain loop
/// observed its token mid-run. The scratch stays reusable — a later
/// uncancelled run primes it from scratch as usual.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimCancelled {
    /// Why the run stopped.
    pub kind: CancelKind,
    /// Token arrivals processed before the abort.
    pub events_done: u64,
    /// Arrivals still pending in the queue at the abort.
    pub pending: usize,
}

impl std::fmt::Display for SimCancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} after {} event arrival(s) ({} pending)",
            self.kind, self.events_done, self.pending
        )
    }
}

impl std::error::Error for SimCancelled {}

/// A pending token arrival for instantiation `instance` of `target`.
#[derive(Clone, Copy, Debug)]
struct Token {
    target: EventId,
    instance: u32,
}

/// Reusable scratch state of [`EventSimulation::run_in`]: the pending
/// token queue and the flat expected-token matrix.
///
/// A long-running worker (the `tsg serve` pool) holds one scratch per
/// queue kind and replays every `sim` request through it; after the
/// first request of the largest shape, [`EventSimulation::run_in`]
/// performs no queue or matrix allocation — `clear` keeps the queue's
/// capacity and `resize`/`fill` touch existing cells only.
#[derive(Clone, Debug)]
pub struct EventSimScratch {
    queue: EventQueue<Token, AnyQueue<Token>>,
    /// Flat `periods × n` count of still-expected tokens per slot.
    remaining: Vec<u32>,
}

impl EventSimScratch {
    /// An empty scratch running on the given queue backend.
    pub fn new(kind: QueueKind) -> Self {
        EventSimScratch {
            queue: EventQueue::with_backend(AnyQueue::of(kind)),
            remaining: Vec::new(),
        }
    }

    /// The queue backend this scratch runs simulations on.
    pub fn kind(&self) -> QueueKind {
        self.queue.backend().kind()
    }

    /// Pending-event capacity of the warm queue (for the warm-pool
    /// zero-allocation assertions).
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Allocated cells of the expected-token matrix.
    pub fn matrix_capacity(&self) -> usize {
        self.remaining.capacity()
    }
}

/// Occurrence times of a Timed Signal Graph computed event-drivenly on
/// the `tsg-sim` kernel.
///
/// Produces exactly the times of
/// [`TimingSimulation`](super::sim::TimingSimulation) — Section IV.A's
/// `t(f) = max { t(e) + δ | e →δ f }` — but by event propagation instead
/// of a period-synchronous sweep.
///
/// # Examples
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::analysis::event_sim::EventSimulation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 3.0);
/// b.marked_arc(xm, xp, 2.0);
/// let sg = b.build()?;
///
/// let sim = EventSimulation::run(&sg, 3);
/// assert_eq!(sim.time(xp, 0), Some(0.0));
/// assert_eq!(sim.time(xm, 0), Some(3.0));
/// assert_eq!(sim.time(xp, 1), Some(5.0));
/// assert_eq!(sim.time(xm, 2), Some(13.0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct EventSimulation {
    /// `times[p][e]` is `t(e_p)`; `NAN` marks never-fired slots (prefix
    /// events only occupy instance 0).
    times: Vec<Vec<f64>>,
    periods: u32,
}

impl EventSimulation {
    /// Runs the event-driven timing simulation over `periods` periods on
    /// the default binary-heap queue backend.
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0`.
    pub fn run(sg: &SignalGraph, periods: u32) -> Self {
        Self::run_on(sg, periods, QueueKind::Heap)
    }

    /// Runs the simulation on the chosen kernel queue backend.
    ///
    /// All backends pop bit-identical streams, so the result is the same
    /// whatever the choice — which backend is *faster* depends on the
    /// delay distribution; `benches/kernel.rs` measures it.
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0`.
    pub fn run_on(sg: &SignalGraph, periods: u32, queue: QueueKind) -> Self {
        Self::run_in(sg, periods, &mut EventSimScratch::new(queue))
    }

    /// Allocation-reusing core: runs the simulation over `scratch`'s
    /// warm queue and token matrix.
    ///
    /// Bit-identical to [`EventSimulation::run_on`] with `scratch`'s
    /// queue kind — `clear` resets the queue's clock and sequence
    /// counter, so a reused queue replays exactly like a fresh one.
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0`.
    pub fn run_in(sg: &SignalGraph, periods: u32, scratch: &mut EventSimScratch) -> Self {
        Self::run_in_with_cancel(sg, periods, scratch, None).expect("no cancel token was supplied")
    }

    /// [`run_in`](Self::run_in) under a cancellation token: the drain
    /// loop polls `cancel` every few hundred arrivals and aborts with a
    /// structured [`SimCancelled`] carrying its progress. The scratch
    /// remains reusable for later runs.
    ///
    /// # Errors
    ///
    /// Returns [`SimCancelled`] when `cancel` fires mid-drain.
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0`.
    pub fn run_in_with_cancel(
        sg: &SignalGraph,
        periods: u32,
        scratch: &mut EventSimScratch,
        cancel: Option<&CancelToken>,
    ) -> Result<Self, SimCancelled> {
        let mut times = prime(sg, periods, scratch);
        let EventSimScratch { queue, remaining } = scratch;
        drain(sg, queue, remaining, &mut times, None, cancel)?;
        Ok(EventSimulation { times, periods })
    }

    /// Runs the simulation until every event at or before `pause_at` has
    /// been processed, then checkpoints: the kernel queue snapshot plus
    /// the partial matrices, as a [`PausedEventSim`].
    ///
    /// [`PausedEventSim::resume`] completes the run — bit-identical to
    /// an uninterrupted [`EventSimulation::run_in`], even when the
    /// resuming scratch uses a *different* queue backend (a
    /// [`QueueCheckpoint`] is storage-independent).
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0`.
    pub fn run_until(
        sg: &SignalGraph,
        periods: u32,
        scratch: &mut EventSimScratch,
        pause_at: f64,
    ) -> PausedEventSim {
        let mut times = prime(sg, periods, scratch);
        let EventSimScratch { queue, remaining } = scratch;
        drain(sg, queue, remaining, &mut times, Some(pause_at), None)
            .expect("no cancel token was supplied");
        PausedEventSim {
            queue: queue.checkpoint(),
            remaining: remaining.clone(),
            times,
            periods,
        }
    }

    /// Number of simulated periods.
    pub fn periods(&self) -> u32 {
        self.periods
    }

    /// Occurrence time `t(e_i)`, or `None` outside the simulated horizon
    /// (prefix events only have instance 0).
    pub fn time(&self, e: EventId, instance: u32) -> Option<f64> {
        self.times
            .get(instance as usize)
            .map(|row| row[e.index()])
            .filter(|t| t.is_finite())
    }

    /// Average occurrence distance `δ(e_i) = t(e_i) / (i + 1)`.
    pub fn average_distance(&self, e: EventId, instance: u32) -> Option<f64> {
        self.time(e, instance).map(|t| t / (instance + 1) as f64)
    }

    /// All `(event, instance, time)` triples in chronological order
    /// (ties by event id, then instance).
    pub fn chronological(&self, sg: &SignalGraph) -> Vec<(EventId, u32, f64)> {
        let mut out = Vec::new();
        for e in sg.events() {
            for p in 0..self.periods {
                if let Some(t) = self.time(e, p) {
                    out.push((e, p, t));
                }
            }
        }
        out.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        out
    }

    /// Replays the simulation into a [`TraceRecorder`] for VCD dumping.
    ///
    /// Events labelled with signal polarities (`a+` / `a-`) drive a wire
    /// named after the signal; bare labels drive a wire per event that
    /// toggles on each occurrence.
    pub fn record_trace(&self, sg: &SignalGraph, recorder: &mut TraceRecorder) {
        let mut wires = std::collections::HashMap::new();
        let ids: Vec<_> = sg
            .events()
            .map(|e| {
                let name = sg.label(e).signal().to_string();
                *wires
                    .entry(name.clone())
                    .or_insert_with(|| recorder.declare(name))
            })
            .collect();
        let mut levels: Vec<bool> = sg.events().map(|_| false).collect();
        for (e, _, t) in self.chronological(sg) {
            let value = match sg.label(e).polarity() {
                Some(Polarity::Rise) => true,
                Some(Polarity::Fall) => false,
                None => {
                    levels[e.index()] = !levels[e.index()];
                    levels[e.index()]
                }
            };
            recorder.record(t, ids[e.index()], value);
        }
    }
}

/// Sets up a run: sizes the expected-token matrix, primes the queue and
/// fires the sources. Returns the (NaN-initialised) time matrix.
///
/// Expected token count for each (event, instance) slot, in the
/// scratch's flat `p_max × n` matrix. An arc contributes to an instance
/// exactly when the synchronous semantics consults it there:
///   prefix → prefix        : instance 0 of the target,
///   prefix → repetitive    : instance 0 (disengageable arcs),
///   repetitive, unmarked   : every instance p (from src at p),
///   repetitive, marked     : instances 1.. (from src at p−1);
///                            the initial token enables p = 0 free.
fn prime(sg: &SignalGraph, periods: u32, scratch: &mut EventSimScratch) -> Vec<Vec<f64>> {
    assert!(periods >= 1, "simulation needs at least one period");
    let n = sg.event_count();
    let p_max = periods as usize;
    let EventSimScratch { queue, remaining } = scratch;

    remaining.resize(p_max * n, 0);
    remaining.fill(0);
    for a in sg.arc_ids() {
        let arc = sg.arc(a);
        let (src_rep, dst_rep) = (sg.is_repetitive(arc.src()), sg.is_repetitive(arc.dst()));
        let dst = arc.dst().index();
        match (src_rep, dst_rep) {
            (false, _) => remaining[dst] += 1,
            (true, true) if arc.is_marked() => {
                for p in 1..p_max {
                    remaining[p * n + dst] += 1;
                }
            }
            (true, true) => {
                for p in 0..p_max {
                    remaining[p * n + dst] += 1;
                }
            }
            (true, false) => {
                unreachable!("validated graphs have no repetitive → prefix arcs")
            }
        }
    }

    let mut times = vec![vec![f64::NAN; n]; p_max];
    queue.clear();
    // Every arc sends at most one token per period.
    queue.reserve(sg.arc_count());

    // Sources: events whose slot expects no token. For repetitive
    // events that is instance 0 with only marked in-arcs (the initial
    // tokens enable them at t = 0); for prefix events, the initial
    // events of the DAG.
    for e in sg.events() {
        let instances = if sg.is_repetitive(e) { p_max } else { 1 };
        for p in 0..instances {
            if remaining[p * n + e.index()] == 0 {
                fire(sg, queue, &mut times, e, p, 0.0);
            }
        }
    }
    times
}

/// Records a firing and schedules the tokens of its successors.
fn fire(
    sg: &SignalGraph,
    queue: &mut EventQueue<Token, AnyQueue<Token>>,
    times: &mut [Vec<f64>],
    e: EventId,
    p: usize,
    t: f64,
) {
    let p_max = times.len();
    times[p][e.index()] = t;
    for a in sg.out_arcs(e) {
        let arc = sg.arc(a);
        let dst = arc.dst();
        let dst_rep = sg.is_repetitive(dst);
        let target_instance = if !sg.is_repetitive(e) || !dst_rep {
            0
        } else if arc.is_marked() {
            p + 1
        } else {
            p
        };
        if target_instance >= p_max {
            continue; // beyond the simulated horizon
        }
        queue.schedule(
            t + arc.delay().get(),
            Token {
                target: dst,
                instance: target_instance as u32,
            },
        );
    }
}

/// Consumes one popped token arrival: counts it off its slot and fires
/// the event when it was the last one expected.
#[inline]
fn arrive(
    sg: &SignalGraph,
    queue: &mut EventQueue<Token, AnyQueue<Token>>,
    remaining: &mut [u32],
    times: &mut [Vec<f64>],
    ev: tsg_sim::Event<Token>,
) {
    let Token { target, instance } = ev.payload;
    let slot = instance as usize * sg.event_count() + target.index();
    debug_assert!(remaining[slot] > 0, "token for an already-fired slot");
    remaining[slot] -= 1;
    if remaining[slot] == 0 {
        // The queue pops in time order, so this last arrival IS
        // the max over all in-arc contributions — except at
        // instance 0, where the synchronous base case clamps
        // times to at least 0 (all delays are non-negative, so
        // the clamp only matters for empty maxima, handled in
        // `prime`).
        fire(sg, queue, times, target, instance as usize, ev.time);
    }
}

/// Pops (and propagates) queued tokens — all of them, or only those at
/// or before `pause_at`. The unpaused path pops directly: a peek on the
/// calendar backend costs the same forward scan as the pop itself, so
/// peeking is reserved for the pausing path that needs it.
fn drain(
    sg: &SignalGraph,
    queue: &mut EventQueue<Token, AnyQueue<Token>>,
    remaining: &mut [u32],
    times: &mut [Vec<f64>],
    pause_at: Option<f64>,
    cancel: Option<&CancelToken>,
) -> Result<(), SimCancelled> {
    let mut processed = 0u64;
    let poll = |processed: u64, pending: usize| {
        if !processed.is_multiple_of(CANCEL_POLL_EVERY) {
            return Ok(());
        }
        match cancel.and_then(CancelToken::check) {
            Some(kind) => Err(SimCancelled {
                kind,
                events_done: processed,
                pending,
            }),
            None => Ok(()),
        }
    };
    match pause_at {
        None => loop {
            poll(processed, queue.len())?;
            let Some(ev) = queue.pop() else { break };
            arrive(sg, queue, remaining, times, ev);
            processed += 1;
        },
        Some(stop) => {
            while queue.peek_time().is_some_and(|t| t <= stop) {
                poll(processed, queue.len())?;
                let ev = queue.pop().expect("peeked");
                arrive(sg, queue, remaining, times, ev);
                processed += 1;
            }
        }
    }
    Ok(())
}

/// A paused event-driven simulation: the kernel's [`QueueCheckpoint`]
/// plus the partial token and time matrices, produced by
/// [`EventSimulation::run_until`].
///
/// The checkpoint carries no queue-backend type, so a pause taken while
/// simulating on one backend resumes on any other — the restart
/// machinery a dirty-region re-simulation builds on.
#[derive(Clone, Debug)]
pub struct PausedEventSim {
    queue: QueueCheckpoint<Token>,
    remaining: Vec<u32>,
    times: Vec<Vec<f64>>,
    periods: u32,
}

impl PausedEventSim {
    /// The simulation time the pause was taken at (time of the last
    /// processed event).
    pub fn time(&self) -> f64 {
        self.queue.time()
    }

    /// Number of token arrivals still pending in the checkpoint.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Completes the simulation from the checkpoint on `scratch` —
    /// which may run a different queue backend than the paused run.
    ///
    /// The result is bit-identical to an uninterrupted
    /// [`EventSimulation::run_in`] over the same graph and period count.
    /// Resuming does not consume the pause: the same checkpoint can be
    /// replayed any number of times.
    pub fn resume(&self, sg: &SignalGraph, scratch: &mut EventSimScratch) -> EventSimulation {
        let EventSimScratch { queue, remaining } = scratch;
        queue.restore(&self.queue);
        remaining.clear();
        remaining.extend_from_slice(&self.remaining);
        let mut times = self.times.clone();
        drain(sg, queue, remaining, &mut times, None, None).expect("no cancel token was supplied");
        EventSimulation {
            times,
            periods: self.periods,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::sim::TimingSimulation;
    use crate::SignalGraph;

    /// The paper's Figure 2c graph (same fixture as the synchronous sim).
    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn example3_occurrence_times() {
        let sg = figure2();
        let sim = EventSimulation::run(&sg, 2);
        let t = |label: &str, i: u32| sim.time(sg.event_by_label(label).unwrap(), i).unwrap();
        assert_eq!(t("e-", 0), 0.0);
        assert_eq!(t("f-", 0), 3.0);
        assert_eq!(t("a+", 0), 2.0);
        assert_eq!(t("b+", 0), 4.0);
        assert_eq!(t("c+", 0), 6.0);
        assert_eq!(t("a-", 0), 8.0);
        assert_eq!(t("b-", 0), 7.0);
        assert_eq!(t("c-", 0), 11.0);
        assert_eq!(t("a+", 1), 13.0);
        assert_eq!(t("b+", 1), 12.0);
        assert_eq!(t("c+", 1), 16.0);
    }

    #[test]
    fn agrees_with_synchronous_simulation() {
        let sg = figure2();
        let periods = 6;
        let sync = TimingSimulation::run(&sg, periods);
        let event = EventSimulation::run(&sg, periods);
        for e in sg.events() {
            for p in 0..periods {
                assert_eq!(sync.time(e, p), event.time(e, p), "{}_{p}", sg.label(e));
            }
        }
    }

    #[test]
    fn prefix_events_have_single_instance() {
        let sg = figure2();
        let sim = EventSimulation::run(&sg, 2);
        let e = sg.event_by_label("e-").unwrap();
        assert_eq!(sim.time(e, 0), Some(0.0));
        assert_eq!(sim.time(e, 1), None);
    }

    #[test]
    fn chronological_matches_synchronous() {
        let sg = figure2();
        let sync = TimingSimulation::run(&sg, 2).chronological(&sg);
        let event = EventSimulation::run(&sg, 2).chronological(&sg);
        assert_eq!(sync, event);
    }

    #[test]
    fn trace_produces_signal_wires() {
        let sg = figure2();
        let sim = EventSimulation::run(&sg, 2);
        let mut rec = TraceRecorder::new("tsg");
        sim.record_trace(&sg, &mut rec);
        // Five signals: a, b, c, e, f — one wire each, not one per event.
        assert_eq!(rec.signal_count(), 5);
        let vcd = rec.to_vcd_string();
        assert!(vcd.contains("$var wire 1"));
        assert!(!rec.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn zero_periods_panics() {
        let sg = figure2();
        let _ = EventSimulation::run(&sg, 0);
    }

    #[test]
    fn run_in_reuses_scratch_and_matches_cold_runs() {
        let sg = figure2();
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let mut scratch = EventSimScratch::new(kind);
            assert_eq!(scratch.kind(), kind);
            let cold = EventSimulation::run_on(&sg, 4, kind);
            let first = EventSimulation::run_in(&sg, 4, &mut scratch);
            let caps = (scratch.queue_capacity(), scratch.matrix_capacity());
            let second = EventSimulation::run_in(&sg, 4, &mut scratch);
            assert_eq!(
                caps,
                (scratch.queue_capacity(), scratch.matrix_capacity()),
                "warm re-run must not regrow the scratch"
            );
            for e in sg.events() {
                for p in 0..4 {
                    assert_eq!(cold.time(e, p), first.time(e, p), "{}_{p}", sg.label(e));
                    assert_eq!(cold.time(e, p), second.time(e, p), "{}_{p}", sg.label(e));
                }
            }
        }
    }

    #[test]
    fn scratch_shrinks_to_smaller_graphs_without_ghosts() {
        // A big run followed by a small one over the same scratch: no
        // stale tokens or counts may leak into the smaller shape.
        let sg = figure2();
        let mut scratch = EventSimScratch::new(QueueKind::Heap);
        let _ = EventSimulation::run_in(&sg, 8, &mut scratch);
        let warm = EventSimulation::run_in(&sg, 2, &mut scratch);
        let cold = EventSimulation::run(&sg, 2);
        for e in sg.events() {
            for p in 0..2 {
                assert_eq!(cold.time(e, p), warm.time(e, p), "{}_{p}", sg.label(e));
            }
        }
    }

    #[test]
    fn pause_and_resume_is_bit_identical_to_a_straight_run() {
        let sg = figure2();
        let straight = EventSimulation::run(&sg, 4);
        for pause_at in [0.0, 1.0, 5.5, 10.0, 25.0, 1000.0] {
            for kind in [QueueKind::Heap, QueueKind::Calendar] {
                let mut scratch = EventSimScratch::new(kind);
                let paused = EventSimulation::run_until(&sg, 4, &mut scratch, pause_at);
                let resumed = paused.resume(&sg, &mut scratch);
                for e in sg.events() {
                    for p in 0..4 {
                        assert_eq!(
                            straight.time(e, p).map(f64::to_bits),
                            resumed.time(e, p).map(f64::to_bits),
                            "pause_at={pause_at} kind={kind:?} {}_{p}",
                            sg.label(e)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pause_resumes_across_queue_backends() {
        // A checkpoint is storage-independent: pause on the heap, resume
        // on the calendar (and vice versa), same bits out. The same
        // pause also replays more than once.
        let sg = figure2();
        let straight = EventSimulation::run(&sg, 3);
        let mut heap = EventSimScratch::new(QueueKind::Heap);
        let mut cal = EventSimScratch::new(QueueKind::Calendar);
        let paused = EventSimulation::run_until(&sg, 3, &mut heap, 7.0);
        assert!(paused.time() <= 7.0);
        assert!(paused.pending() > 0);
        for scratch in [&mut cal, &mut heap] {
            for _ in 0..2 {
                let resumed = paused.resume(&sg, scratch);
                for e in sg.events() {
                    for p in 0..3 {
                        assert_eq!(straight.time(e, p), resumed.time(e, p));
                    }
                }
            }
        }
    }

    #[test]
    fn pause_beyond_the_horizon_is_already_complete() {
        let sg = figure2();
        let mut scratch = EventSimScratch::new(QueueKind::Heap);
        let paused = EventSimulation::run_until(&sg, 2, &mut scratch, f64::MAX);
        assert_eq!(paused.pending(), 0);
        let resumed = paused.resume(&sg, &mut scratch);
        let straight = EventSimulation::run(&sg, 2);
        for e in sg.events() {
            assert_eq!(straight.time(e, 1), resumed.time(e, 1));
        }
    }

    #[test]
    fn cancelled_drain_reports_progress_and_a_rerun_succeeds() {
        let sg = figure2();
        let mut scratch = EventSimScratch::new(QueueKind::Heap);
        let token = CancelToken::cancel_after_checks(0);
        let err =
            EventSimulation::run_in_with_cancel(&sg, 4, &mut scratch, Some(&token)).unwrap_err();
        assert_eq!(err.kind, CancelKind::Explicit);
        assert_eq!(err.events_done, 0);
        assert!(err.pending > 0, "sources had scheduled tokens");
        // The scratch stays reusable: an uncancelled rerun matches cold.
        let warm = EventSimulation::run_in(&sg, 4, &mut scratch);
        let cold = EventSimulation::run(&sg, 4);
        for e in sg.events() {
            for p in 0..4 {
                assert_eq!(
                    cold.time(e, p).map(f64::to_bits),
                    warm.time(e, p).map(f64::to_bits),
                    "{}_{p}",
                    sg.label(e)
                );
            }
        }
    }

    #[test]
    fn calendar_backend_gives_identical_times() {
        let sg = figure2();
        let heap = EventSimulation::run_on(&sg, 4, QueueKind::Heap);
        let calendar = EventSimulation::run_on(&sg, 4, QueueKind::Calendar);
        for e in sg.events() {
            for p in 0..4 {
                assert_eq!(heap.time(e, p), calendar.time(e, p), "{}_{p}", sg.label(e));
            }
        }
    }
}
