//! Precomputed evaluation structure shared by the timing simulations.
//!
//! The cycle-time algorithm runs `b` event-initiated simulations over the
//! same graph; rebuilding the topological order and chasing `Arc` objects
//! per simulation dominates the constant factor. [`CyclicStructure`]
//! flattens the cyclic part once — repetitive events in unmarked-arc
//! topological order, with a CSR table of in-arcs — and every simulation
//! then runs over plain arrays.

use tsg_graph::topo;

use crate::arc::ArcId;
use crate::event::EventId;
use crate::graph::SignalGraph;

/// One in-arc of a repetitive event, flattened.
#[derive(Clone, Copy, Debug)]
pub(crate) struct InArc {
    /// Source event id (repetitive).
    pub src: u32,
    /// Arc delay.
    pub delay: f64,
    /// Initially marked (crosses the period border).
    pub marked: bool,
    /// The original arc (for backtracking).
    pub arc: ArcId,
}

/// Flattened cyclic part of a Signal Graph.
#[derive(Clone, Debug)]
pub(crate) struct CyclicStructure {
    /// Repetitive events in topological order of the unmarked subgraph.
    pub order: Vec<EventId>,
    /// CSR offsets: in-arcs of event `e` are `entries[offsets[e]..offsets[e+1]]`.
    pub offsets: Vec<u32>,
    /// Flattened in-arcs (repetitive→repetitive, non-disengageable only).
    pub entries: Vec<InArc>,
}

impl CyclicStructure {
    /// Builds the structure; `O(n + m)`.
    pub fn new(sg: &SignalGraph) -> Self {
        let order: Vec<EventId> = topo::topological_order_masked(sg.digraph(), |e| {
            let arc = sg.arc(ArcId(e.0));
            sg.is_repetitive(arc.src()) && sg.is_repetitive(arc.dst()) && !arc.is_marked()
        })
        .expect("validated unmarked subgraph is acyclic")
        .into_iter()
        .map(|n| EventId(n.0))
        .filter(|&e| sg.is_repetitive(e))
        .collect();

        let n = sg.event_count();
        let mut offsets = vec![0u32; n + 1];
        for a in sg.arc_ids() {
            let arc = sg.arc(a);
            if sg.is_repetitive(arc.src()) && sg.is_repetitive(arc.dst()) && !arc.is_disengageable()
            {
                offsets[arc.dst().index() + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut entries = vec![
            InArc {
                src: 0,
                delay: 0.0,
                marked: false,
                arc: ArcId(0),
            };
            *offsets.last().expect("offsets non-empty") as usize
        ];
        for a in sg.arc_ids() {
            let arc = sg.arc(a);
            if sg.is_repetitive(arc.src()) && sg.is_repetitive(arc.dst()) && !arc.is_disengageable()
            {
                let slot = cursor[arc.dst().index()];
                entries[slot as usize] = InArc {
                    src: arc.src().0,
                    delay: arc.delay().get(),
                    marked: arc.is_marked(),
                    arc: a,
                };
                cursor[arc.dst().index()] += 1;
            }
        }
        CyclicStructure {
            order,
            offsets,
            entries,
        }
    }

    /// In-arcs of event `e`.
    #[inline]
    pub fn in_arcs(&self, e: EventId) -> &[InArc] {
        &self.entries[self.offsets[e.index()] as usize..self.offsets[e.index() + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    #[test]
    fn csr_matches_graph() {
        let mut b = SignalGraph::builder();
        let i = b.initial_event("go");
        let x = b.event("x+");
        let y = b.event("y+");
        b.disengageable_arc(i, x, 1.0);
        b.arc(x, y, 2.0);
        b.marked_arc(y, x, 3.0);
        let sg = b.build().unwrap();
        let s = CyclicStructure::new(&sg);
        assert_eq!(s.order.len(), 2);
        // x has one cyclic in-arc (marked, from y); the disengageable one
        // is excluded.
        let ins = s.in_arcs(x);
        assert_eq!(ins.len(), 1);
        assert!(ins[0].marked);
        assert_eq!(ins[0].delay, 3.0);
        let ins_y = s.in_arcs(y);
        assert_eq!(ins_y.len(), 1);
        assert!(!ins_y[0].marked);
    }

    #[test]
    fn order_respects_unmarked_arcs() {
        let sg = {
            let mut b = SignalGraph::builder();
            let a = b.event("a");
            let c = b.event("b");
            let d = b.event("c");
            b.arc(a, c, 1.0);
            b.arc(c, d, 1.0);
            b.marked_arc(d, a, 1.0);
            b.build().unwrap()
        };
        let s = CyclicStructure::new(&sg);
        let pos = |label: &str| {
            let e = sg.event_by_label(label).unwrap();
            s.order.iter().position(|&x| x == e).unwrap()
        };
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
    }
}
