//! Precomputed evaluation structure shared by the timing simulations.
//!
//! The cycle-time algorithm runs `b` event-initiated simulations over the
//! same graph; rebuilding the topological order and chasing `Arc` objects
//! per simulation dominates the constant factor. [`CyclicStructure`]
//! flattens the cyclic part once — repetitive events in unmarked-arc
//! topological order, with a CSR table of in-arcs — and every simulation
//! then runs over plain arrays.

use tsg_graph::topo::{self, TopoScratch};
use tsg_graph::NodeId;

use crate::arc::ArcId;
use crate::event::EventId;
use crate::graph::SignalGraph;

/// One in-arc of a repetitive event, flattened.
#[derive(Clone, Copy, Debug)]
pub(crate) struct InArc {
    /// Source event id (repetitive).
    pub src: u32,
    /// Arc delay.
    pub delay: f64,
    /// Initially marked (crosses the period border).
    pub marked: bool,
    /// The original arc (for backtracking).
    pub arc: ArcId,
}

/// Flattened cyclic part of a Signal Graph.
#[derive(Clone, Debug, Default)]
pub(crate) struct CyclicStructure {
    /// Repetitive events in topological order of the unmarked subgraph.
    pub order: Vec<EventId>,
    /// CSR offsets: in-arcs of event `e` are `entries[offsets[e]..offsets[e+1]]`.
    pub offsets: Vec<u32>,
    /// Flattened in-arcs (repetitive→repetitive, non-disengageable only).
    pub entries: Vec<InArc>,
    /// Working buffers of [`CyclicStructure::rebuild`], kept so a warm
    /// analysis arena rebuilds the structure per graph without touching
    /// the allocator: Kahn's-algorithm scratch, the raw node order, and
    /// the CSR fill cursor.
    topo_scratch: TopoScratch,
    node_order: Vec<NodeId>,
    cursor: Vec<u32>,
}

impl CyclicStructure {
    /// Builds the structure; `O(n + m)`.
    pub fn new(sg: &SignalGraph) -> Self {
        let mut s = CyclicStructure::default();
        s.rebuild(sg);
        s
    }

    /// Rebuilds the structure for `sg` in place, reusing every buffer —
    /// the allocation-free form warm arenas call once per analysis.
    /// Construction order is deterministic and identical to
    /// [`CyclicStructure::new`], so the entry order (and with it the
    /// simulations' arg-max comparison sequence) never depends on which
    /// path built the structure.
    pub fn rebuild(&mut self, sg: &SignalGraph) {
        // Tombstoned arcs must stay out of the mask: they are detached
        // from the adjacency lists but still enumerated by `edge_ids`,
        // and a mask-enabled dead edge would inflate the in-degree
        // counts into a spurious cycle.
        topo::topological_order_masked_into(
            sg.digraph(),
            |e| {
                let arc = sg.arc(ArcId(e.0));
                arc.is_alive()
                    && sg.is_repetitive(arc.src())
                    && sg.is_repetitive(arc.dst())
                    && !arc.is_marked()
            },
            &mut self.topo_scratch,
            &mut self.node_order,
        )
        .expect("validated unmarked subgraph is acyclic");
        self.order.clear();
        self.order.extend(
            self.node_order
                .iter()
                .map(|n| EventId(n.0))
                .filter(|&e| sg.is_repetitive(e)),
        );

        let n = sg.event_count();
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for a in sg.arc_ids() {
            let arc = sg.arc(a);
            if arc.is_alive()
                && sg.is_repetitive(arc.src())
                && sg.is_repetitive(arc.dst())
                && !arc.is_disengageable()
            {
                self.offsets[arc.dst().index() + 1] += 1;
            }
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.offsets);
        self.entries.clear();
        self.entries.resize(
            *self.offsets.last().expect("offsets non-empty") as usize,
            InArc {
                src: 0,
                delay: 0.0,
                marked: false,
                arc: ArcId(0),
            },
        );
        for a in sg.arc_ids() {
            let arc = sg.arc(a);
            if arc.is_alive()
                && sg.is_repetitive(arc.src())
                && sg.is_repetitive(arc.dst())
                && !arc.is_disengageable()
            {
                let slot = self.cursor[arc.dst().index()];
                self.entries[slot as usize] = InArc {
                    src: arc.src().0,
                    delay: arc.delay().get(),
                    marked: arc.is_marked(),
                    arc: a,
                };
                self.cursor[arc.dst().index()] += 1;
            }
        }
    }

    /// In-arcs of event `e`.
    #[inline]
    pub fn in_arcs(&self, e: EventId) -> &[InArc] {
        &self.entries[self.offsets[e.index()] as usize..self.offsets[e.index() + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    #[test]
    fn csr_matches_graph() {
        let mut b = SignalGraph::builder();
        let i = b.initial_event("go");
        let x = b.event("x+");
        let y = b.event("y+");
        b.disengageable_arc(i, x, 1.0);
        b.arc(x, y, 2.0);
        b.marked_arc(y, x, 3.0);
        let sg = b.build().unwrap();
        let s = CyclicStructure::new(&sg);
        assert_eq!(s.order.len(), 2);
        // x has one cyclic in-arc (marked, from y); the disengageable one
        // is excluded.
        let ins = s.in_arcs(x);
        assert_eq!(ins.len(), 1);
        assert!(ins[0].marked);
        assert_eq!(ins[0].delay, 3.0);
        let ins_y = s.in_arcs(y);
        assert_eq!(ins_y.len(), 1);
        assert!(!ins_y[0].marked);
    }

    #[test]
    fn order_respects_unmarked_arcs() {
        let sg = {
            let mut b = SignalGraph::builder();
            let a = b.event("a");
            let c = b.event("b");
            let d = b.event("c");
            b.arc(a, c, 1.0);
            b.arc(c, d, 1.0);
            b.marked_arc(d, a, 1.0);
            b.build().unwrap()
        };
        let s = CyclicStructure::new(&sg);
        let pos = |label: &str| {
            let e = sg.event_by_label(label).unwrap();
            s.order.iter().position(|&x| x == e).unwrap()
        };
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
    }
}
