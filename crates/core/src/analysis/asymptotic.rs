//! Asymptotic behaviour of average occurrence distances (Figure 4).
//!
//! For an event `e` on a critical cycle, the sequence `δ_{e0}(e_i)` attains
//! the cycle time τ at some `i ≤ b` and keeps returning to it; for an event
//! off every critical cycle the sequence stays strictly below τ while still
//! converging to it (Proposition 8). This module produces those series and
//! classifies events accordingly.

use crate::analysis::cycle_time::{AnalysisError, CycleTimeAnalysis};
use crate::analysis::initiated::InitiatedSimulation;
use crate::event::EventId;
use crate::graph::SignalGraph;

/// One point of a δ-series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaPoint {
    /// The occurrence index `i`.
    pub index: u32,
    /// `t_{e0}(e_i)`.
    pub time: f64,
    /// `δ_{e0}(e_i) = t_{e0}(e_i) / i`.
    pub delta: f64,
}

/// Computes the series `δ_{e0}(e_i)` for `0 < i <= periods`.
///
/// Undefined entries (instances not reachable from `e₀`) are skipped.
///
/// # Errors
///
/// Returns an error when `event` is not repetitive.
///
/// # Examples
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::analysis::asymptotic::delta_series;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 3.0);
/// b.marked_arc(xm, xp, 2.0);
/// let sg = b.build()?;
/// let series = delta_series(&sg, xp, 4)?;
/// assert!(series.iter().all(|p| p.delta == 5.0));
/// # Ok(())
/// # }
/// ```
pub fn delta_series(
    sg: &SignalGraph,
    event: EventId,
    periods: u32,
) -> Result<Vec<DeltaPoint>, crate::analysis::initiated::NotRepetitive> {
    let sim = InitiatedSimulation::run(sg, event, periods)?;
    Ok(sim
        .distance_series()
        .into_iter()
        .map(|(index, time, delta)| DeltaPoint { index, time, delta })
        .collect())
}

/// Decides whether `event` lies on a critical cycle, by the Proposition 7/8
/// dichotomy: the event's δ-series over `b` periods attains τ iff the event
/// is on a critical cycle.
///
/// # Errors
///
/// Returns [`AnalysisError::NoCyclicBehavior`] for graphs without
/// repetitive events, and treats prefix events as off-cycle.
pub fn on_critical_cycle(sg: &SignalGraph, event: EventId) -> Result<bool, AnalysisError> {
    if !sg.is_repetitive(event) {
        return Ok(false);
    }
    let analysis = CycleTimeAnalysis::run(sg)?;
    let tau = analysis.cycle_time();
    let b = sg.border_events().len() as u32;
    let series = delta_series(sg, event, b.max(1)).expect("repetitive event checked above");
    Ok(series
        .iter()
        .any(|p| p.time * tau.periods() as f64 == tau.length() * p.index as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn on_cycle_event_attains_tau() {
        let sg = figure2();
        let ap = sg.event_by_label("a+").unwrap();
        let series = delta_series(&sg, ap, 10).unwrap();
        assert!(series.iter().any(|p| p.delta == 10.0));
        assert!(on_critical_cycle(&sg, ap).unwrap());
    }

    #[test]
    fn off_cycle_event_stays_below_tau() {
        let sg = figure2();
        let bp = sg.event_by_label("b+").unwrap();
        let series = delta_series(&sg, bp, 10).unwrap();
        assert!(series.iter().all(|p| p.delta < 10.0));
        assert!(!on_critical_cycle(&sg, bp).unwrap());
    }

    #[test]
    fn off_cycle_series_is_monotone_toward_tau_here() {
        // Not true in general (the paper notes oscillation), but for this
        // graph the b+ series increases toward 10.
        let sg = figure2();
        let bp = sg.event_by_label("b+").unwrap();
        let series = delta_series(&sg, bp, 30).unwrap();
        for w in series.windows(2) {
            assert!(w[1].delta >= w[0].delta);
        }
        assert!(series.last().unwrap().delta > 9.9);
    }

    #[test]
    fn prefix_event_is_off_cycle() {
        let sg = figure2();
        let e = sg.event_by_label("e-").unwrap();
        assert!(!on_critical_cycle(&sg, e).unwrap());
    }

    #[test]
    fn non_critical_events_of_critical_signal() {
        // All four of a+, a-, c+, c- are on the critical cycle.
        let sg = figure2();
        for l in ["a+", "a-", "c+", "c-"] {
            let e = sg.event_by_label(l).unwrap();
            assert!(on_critical_cycle(&sg, e).unwrap(), "{l} should be critical");
        }
        for l in ["b+", "b-"] {
            let e = sg.event_by_label(l).unwrap();
            assert!(
                !on_critical_cycle(&sg, e).unwrap(),
                "{l} should not be critical"
            );
        }
    }
}
