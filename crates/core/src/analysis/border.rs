//! Cut sets and border sets (Section VI.A).
//!
//! A *cut set* is a set of events containing at least one event from every
//! cycle of the Signal Graph. The *border set* — repetitive events with an
//! initially marked in-arc — is a cut set of every live Signal Graph: all
//! cycles carry a token, and the head of each marked arc is a border event.
//! A *minimum* cut set bounds the occurrence period of any simple cycle
//! (Proposition 6), which in turn bounds the simulation length the
//! cycle-time algorithm needs.

use tsg_graph::{topo, DiGraph, NodeId};

use crate::arc::ArcId;
use crate::event::EventId;
use crate::graph::SignalGraph;

/// The border set of `sg` (equivalent to
/// [`SignalGraph::border_events`]).
pub fn border_set(sg: &SignalGraph) -> Vec<EventId> {
    sg.border_events()
}

/// Checks whether `events` is a cut set: removing them must break every
/// cycle of the repetitive subgraph.
///
/// # Examples
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::analysis::border::{border_set, is_cut_set};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 1.0);
/// b.marked_arc(xm, xp, 1.0);
/// let sg = b.build()?;
/// assert!(is_cut_set(&sg, &border_set(&sg)));
/// assert!(!is_cut_set(&sg, &[]));
/// # Ok(())
/// # }
/// ```
pub fn is_cut_set(sg: &SignalGraph, events: &[EventId]) -> bool {
    let removed: Vec<bool> = {
        let mut v = vec![false; sg.event_count()];
        for &e in events {
            v[e.index()] = true;
        }
        v
    };
    topo::topological_order_masked(sg.digraph(), |edge| {
        let arc = sg.arc(ArcId(edge.0));
        sg.is_repetitive(arc.src())
            && sg.is_repetitive(arc.dst())
            && !removed[arc.src().index()]
            && !removed[arc.dst().index()]
    })
    .is_ok()
}

/// Computes an exact minimum cut set (minimum feedback vertex set of the
/// repetitive subgraph) by branch and bound.
///
/// The problem is NP-hard; this routine is intended for the small graphs of
/// tests and reports. `node_limit` caps the size of the repetitive subgraph
/// the search will attempt; `None` is returned beyond it.
pub fn minimum_cut_set(sg: &SignalGraph, node_limit: usize) -> Option<Vec<EventId>> {
    let rep: Vec<EventId> = sg.repetitive_events().collect();
    if rep.len() > node_limit {
        return None;
    }
    if rep.is_empty() {
        return Some(Vec::new());
    }
    // Build the repetitive subgraph with local ids.
    let mut map = vec![usize::MAX; sg.event_count()];
    for (i, &e) in rep.iter().enumerate() {
        map[e.index()] = i;
    }
    let mut sub = DiGraph::with_capacity(rep.len(), sg.arc_count());
    for _ in 0..rep.len() {
        sub.add_node();
    }
    for a in sg.arc_ids() {
        let arc = sg.arc(a);
        let (s, d) = (map[arc.src().index()], map[arc.dst().index()]);
        if s != usize::MAX && d != usize::MAX {
            sub.add_edge(NodeId(s as u32), NodeId(d as u32));
        }
    }
    // Upper bound: the border set is always a cut set.
    let border = sg.border_events();
    let mut best: Vec<usize> = border.iter().map(|e| map[e.index()]).collect();
    let mut removed = vec![false; rep.len()];
    let mut current = Vec::new();
    branch(&sub, &mut removed, &mut current, &mut best);
    best.sort_unstable();
    Some(best.into_iter().map(|i| rep[i]).collect())
}

/// Finds any directed cycle in `g` avoiding `removed` nodes, as a node list.
fn find_cycle(g: &DiGraph, removed: &[bool]) -> Option<Vec<usize>> {
    // Iterative DFS with colour marking; returns the nodes of a back-edge cycle.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = g.node_count();
    let mut colour = vec![WHITE; n];
    let mut parent = vec![usize::MAX; n];
    for root in 0..n {
        if removed[root] || colour[root] != WHITE {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        colour[root] = GRAY;
        while let Some(&mut (v, ref mut pos)) = stack.last_mut() {
            let out = g.out_edges(NodeId(v as u32));
            if *pos < out.len() {
                let w = g.dst(out[*pos]).index();
                *pos += 1;
                if removed[w] {
                    continue;
                }
                match colour[w] {
                    WHITE => {
                        colour[w] = GRAY;
                        parent[w] = v;
                        stack.push((w, 0));
                    }
                    GRAY => {
                        // cycle: w -> ... -> v -> w
                        let mut cyc = vec![v];
                        let mut x = v;
                        while x != w {
                            x = parent[x];
                            cyc.push(x);
                        }
                        cyc.reverse();
                        return Some(cyc);
                    }
                    _ => {}
                }
            } else {
                colour[v] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

fn branch(g: &DiGraph, removed: &mut [bool], current: &mut Vec<usize>, best: &mut Vec<usize>) {
    if current.len() >= best.len() {
        return; // only strictly smaller cut sets are interesting
    }
    match find_cycle(g, removed) {
        None => *best = current.clone(),
        Some(cycle) => {
            // Every cut set must contain a node of this cycle: branch on each.
            for &v in &cycle {
                removed[v] = true;
                current.push(v);
                branch(g, removed, current, best);
                current.pop();
                removed[v] = false;
            }
        }
    }
}

/// Sound upper bound on the occurrence period `ε` of any simple cycle:
/// the border-set size `b`.
///
/// Every period boundary a simple unfolded cycle crosses corresponds to a
/// marked arc on the cycle, whose head is a border event; a simple cycle
/// visits each event at most once, so `ε <= b`.
///
/// **Erratum.** The paper's Proposition 6 states the bound as the size of
/// a *minimum cut set*, which is not sound in general: a 4-event ring with
/// two tokens has a (unique) simple cycle with `ε = 2`, yet any single
/// event of the ring is a cut set. The algorithm itself simulates `b`
/// periods (Section VII), which the border-set bound justifies; see
/// `EXPERIMENTS.md` and the regression test
/// `prop6_erratum_min_cut_is_not_a_period_bound`.
pub fn max_occurrence_period_bound(sg: &SignalGraph) -> usize {
    sg.border_events().len().max(1)
}

/// The exact maximum occurrence period over all simple cycles, by bounded
/// cycle enumeration (`None` when the graph has more than `cycle_limit`
/// simple cycles or no cycle at all).
///
/// Useful as the tight simulation-length bound: simulating
/// `exact_max_occurrence_period` periods instead of `b` is always
/// sufficient, and often much cheaper (the oscillator of Section VIII.C
/// needs a single period, as the paper remarks).
pub fn exact_max_occurrence_period(sg: &SignalGraph, cycle_limit: usize) -> Option<u32> {
    let view = sg.repetitive_view();
    let cycles = tsg_graph::cycles::simple_cycles_bounded(&view.graph, cycle_limit).ok()?;
    cycles
        .iter()
        .map(|c| {
            c.iter()
                .filter(|e| {
                    let arc = sg.arc(view.arcs[e.index()]);
                    arc.is_marked()
                })
                .count() as u32
        })
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn example7_border_set() {
        // Example 7: {a+, b+} is the border set.
        let sg = figure2();
        let border: Vec<String> = border_set(&sg)
            .into_iter()
            .map(|e| sg.label(e).to_string())
            .collect();
        assert_eq!(border, vec!["a+", "b+"]);
    }

    #[test]
    fn example7_other_cut_sets() {
        // Example 7: {c+}, {c-} and {a-, b-} are cut sets too.
        let sg = figure2();
        let by = |l: &str| sg.event_by_label(l).unwrap();
        assert!(is_cut_set(&sg, &[by("c+")]));
        assert!(is_cut_set(&sg, &[by("c-")]));
        assert!(is_cut_set(&sg, &[by("a-"), by("b-")]));
        assert!(is_cut_set(&sg, &border_set(&sg)));
        // {a+} alone is not: the cycle b+ -> c+ -> b- -> c- survives.
        assert!(!is_cut_set(&sg, &[by("a+")]));
        assert!(!is_cut_set(&sg, &[]));
    }

    #[test]
    fn example7_minimum_cut_set_is_singleton() {
        // Example 7: {c+} and {c-} are minimum cut sets.
        let sg = figure2();
        let min = minimum_cut_set(&sg, 64).unwrap();
        assert_eq!(min.len(), 1);
        let label = sg.label(min[0]).to_string();
        assert!(label == "c+" || label == "c-", "got {label}");
    }

    #[test]
    fn occurrence_period_bounds_for_oscillator() {
        // Section VIII.C: every cycle of the oscillator spans one period,
        // so one simulation period suffices; the sound a-priori bound is
        // the border size 2.
        let sg = figure2();
        assert_eq!(exact_max_occurrence_period(&sg, 1000), Some(1));
        assert_eq!(max_occurrence_period_bound(&sg), 2);
    }

    #[test]
    fn node_limit_falls_back() {
        let sg = figure2();
        assert_eq!(minimum_cut_set(&sg, 2), None);
    }

    #[test]
    fn prop6_erratum_min_cut_is_not_a_period_bound() {
        // A 4-ring with two tokens: its unique simple cycle spans TWO
        // periods, yet {v0} alone is a cut set — the paper's Proposition 6
        // (bound = minimum cut size) does not hold; the border-set bound
        // does.
        let mut b = SignalGraph::builder();
        let n: Vec<_> = (0..4).map(|i| b.event(&format!("v{i}"))).collect();
        b.marked_arc(n[0], n[1], 1.0);
        b.arc(n[1], n[2], 1.0);
        b.marked_arc(n[2], n[3], 1.0);
        b.arc(n[3], n[0], 1.0);
        let sg = b.build().unwrap();
        let min_cut = minimum_cut_set(&sg, 16).unwrap();
        assert_eq!(min_cut.len(), 1);
        assert_eq!(exact_max_occurrence_period(&sg, 100), Some(2));
        assert!(exact_max_occurrence_period(&sg, 100).unwrap() as usize > min_cut.len());
        assert_eq!(max_occurrence_period_bound(&sg), 2); // = b, sound
    }

    #[test]
    fn minimum_cut_set_of_two_independent_loops() {
        // Two 2-cycles sharing one event x: {x} cuts only its own cycles;
        // graph: x+ <-> x-, x+ <-> y with appropriate tokens.
        let mut b = SignalGraph::builder();
        let xp = b.event("x+");
        let xm = b.event("x-");
        let y = b.event("y");
        b.arc(xp, xm, 1.0);
        b.marked_arc(xm, xp, 1.0);
        b.arc(xp, y, 1.0);
        b.marked_arc(y, xp, 1.0);
        let sg = b.build().unwrap();
        let min = minimum_cut_set(&sg, 64).unwrap();
        assert_eq!(min.len(), 1);
        assert_eq!(sg.label(min[0]).to_string(), "x+");
    }
}
