//! Timing simulation `t(·)` of an unfolded Timed Signal Graph (Section IV.A).
//!
//! ```text
//! t(f) = 0                                if f ∈ I_u
//! t(f) = max { t(e) + δ | e →δ f }        otherwise
//! ```
//!
//! where `I_u` — the initial events of the unfolding — are the events of `I`
//! plus the repetitive events whose in-arcs are all initially marked.
//!
//! The simulation never materialises the (conceptually infinite) unfolding:
//! it evaluates period-synchronously in a topological order of the
//! unmarked-arc sub-DAG, feeding marked arcs from period `p` into period
//! `p+1`. For acyclic graphs this degenerates to classical PERT analysis.

use tsg_graph::topo;

use crate::arc::ArcId;
use crate::event::EventId;
use crate::graph::SignalGraph;

/// Result of a timing simulation over a fixed number of periods.
///
/// # Examples
///
/// Example 3 of the paper (first occurrence times of the Figure 2c graph)
/// is reproduced in the crate's tests; a minimal use:
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::analysis::sim::TimingSimulation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 3.0);
/// b.marked_arc(xm, xp, 2.0);
/// let sg = b.build()?;
///
/// let sim = TimingSimulation::run(&sg, 3);
/// assert_eq!(sim.time(xp, 0), Some(0.0));
/// assert_eq!(sim.time(xm, 0), Some(3.0));
/// assert_eq!(sim.time(xp, 1), Some(5.0));
/// assert_eq!(sim.time(xm, 2), Some(13.0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TimingSimulation {
    /// `prefix[e]` is the occurrence time of prefix event `e` (`None` for
    /// repetitive events).
    prefix: Vec<Option<f64>>,
    /// `times[p][e]` is `t(e_p)` for repetitive `e` (`f64::NAN` for prefix
    /// events, which only live in `prefix`).
    times: Vec<Vec<f64>>,
    periods: u32,
}

impl TimingSimulation {
    /// Runs the timing simulation of `sg` over `periods` periods
    /// (`periods >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0`.
    pub fn run(sg: &SignalGraph, periods: u32) -> Self {
        assert!(periods >= 1, "simulation needs at least one period");
        let n = sg.event_count();

        // Prefix events first: they form a DAG by validation.
        let mut prefix: Vec<Option<f64>> = vec![None; n];
        let prefix_order = topo::topological_order_masked(sg.digraph(), |e| {
            let arc = sg.arc(ArcId(e.0));
            !sg.is_repetitive(arc.src()) && !sg.is_repetitive(arc.dst())
        })
        .expect("validated prefix subgraph is acyclic");
        for node in prefix_order {
            let ev = EventId(node.0);
            if sg.is_repetitive(ev) {
                continue;
            }
            let mut t: f64 = 0.0;
            for a in sg.in_arcs(ev) {
                let arc = sg.arc(a);
                let src_t =
                    prefix[arc.src().index()].expect("prefix causes are topologically earlier");
                t = t.max(src_t + arc.delay().get());
            }
            prefix[ev.index()] = Some(t);
        }

        // Topological order of repetitive events over unmarked arcs.
        let rep_order: Vec<EventId> = topo::topological_order_masked(sg.digraph(), |e| {
            let arc = sg.arc(ArcId(e.0));
            sg.is_repetitive(arc.src()) && sg.is_repetitive(arc.dst()) && !arc.is_marked()
        })
        .expect("validated unmarked subgraph is acyclic")
        .into_iter()
        .map(|n| EventId(n.0))
        .filter(|&e| sg.is_repetitive(e))
        .collect();

        let mut times: Vec<Vec<f64>> = vec![vec![f64::NAN; n]; periods as usize];
        for p in 0..periods as usize {
            for &ev in &rep_order {
                let mut t: f64 = if p == 0 { 0.0 } else { f64::NEG_INFINITY };
                for a in sg.in_arcs(ev) {
                    let arc = sg.arc(a);
                    let src = arc.src();
                    let delta = arc.delay().get();
                    let cand = if arc.is_disengageable() {
                        if p == 0 {
                            prefix[src.index()].expect("disengageable source is prefix") + delta
                        } else {
                            continue;
                        }
                    } else if arc.is_marked() {
                        if p == 0 {
                            continue; // the initial token enables for free
                        }
                        times[p - 1][src.index()] + delta
                    } else {
                        times[p][src.index()] + delta
                    };
                    t = t.max(cand);
                }
                debug_assert!(t.is_finite(), "repetitive event must be constrained");
                times[p][ev.index()] = t;
            }
        }

        TimingSimulation {
            prefix,
            times,
            periods,
        }
    }

    /// Number of simulated periods.
    pub fn periods(&self) -> u32 {
        self.periods
    }

    /// Occurrence time `t(e_i)`.
    ///
    /// Prefix events only have instance 0. Returns `None` for instances
    /// outside the simulated horizon.
    pub fn time(&self, e: EventId, instance: u32) -> Option<f64> {
        if let Some(t) = self.prefix.get(e.index()).copied().flatten() {
            return (instance == 0).then_some(t);
        }
        self.times
            .get(instance as usize)
            .map(|row| row[e.index()])
            .filter(|t| t.is_finite())
    }

    /// Average occurrence distance `δ(e_i) = t(e_i) / (i + 1)`
    /// (Section IV.C).
    pub fn average_distance(&self, e: EventId, instance: u32) -> Option<f64> {
        self.time(e, instance).map(|t| t / (instance + 1) as f64)
    }

    /// Occurrence distance `t(e_j) − t(e_i)` between two instantiations of
    /// the same event.
    pub fn occurrence_distance(&self, e: EventId, i: u32, j: u32) -> Option<f64> {
        Some(self.time(e, j)? - self.time(e, i)?)
    }

    /// The latest occurrence time in the simulation (for diagram scaling).
    pub fn horizon(&self) -> f64 {
        let pre = self.prefix.iter().flatten().copied().fold(0.0f64, f64::max);
        let cyc = self
            .times
            .iter()
            .flat_map(|row| row.iter())
            .copied()
            .filter(|t| t.is_finite())
            .fold(0.0f64, f64::max);
        pre.max(cyc)
    }

    /// All `(event, instance, time)` triples, sorted by time then event id —
    /// the order a timing diagram or trace table lists them in.
    pub fn chronological(&self, sg: &SignalGraph) -> Vec<(EventId, u32, f64)> {
        let mut out = Vec::new();
        for e in sg.events() {
            if let Some(t) = self.prefix[e.index()] {
                out.push((e, 0, t));
            } else {
                for p in 0..self.periods {
                    if let Some(t) = self.time(e, p) {
                        out.push((e, p, t));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    /// The paper's Figure 2c graph (delays recovered from its own tables).
    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn example3_occurrence_times() {
        // Paper Example 3: t(e-0 f-0 a+0 b+0 c+0 a-0 b-0 c-0 a+1 b+1 c+1)
        //                 = 0   3   2   4   6   8   7   11  13  12  16
        let sg = figure2();
        let sim = TimingSimulation::run(&sg, 2);
        let t = |label: &str, i: u32| sim.time(sg.event_by_label(label).unwrap(), i).unwrap();
        assert_eq!(t("e-", 0), 0.0);
        assert_eq!(t("f-", 0), 3.0);
        assert_eq!(t("a+", 0), 2.0);
        assert_eq!(t("b+", 0), 4.0);
        assert_eq!(t("c+", 0), 6.0);
        assert_eq!(t("a-", 0), 8.0);
        assert_eq!(t("b-", 0), 7.0);
        assert_eq!(t("c-", 0), 11.0);
        assert_eq!(t("a+", 1), 13.0);
        assert_eq!(t("b+", 1), 12.0);
        assert_eq!(t("c+", 1), 16.0);
    }

    #[test]
    fn section2_average_distance_sequence() {
        // Section II: averages for a+ are 2, 13/2, 23/3, 33/4, 43/5, 53/6...
        let sg = figure2();
        let sim = TimingSimulation::run(&sg, 6);
        let ap = sg.event_by_label("a+").unwrap();
        let expect = [
            2.0,
            13.0 / 2.0,
            23.0 / 3.0,
            33.0 / 4.0,
            43.0 / 5.0,
            53.0 / 6.0,
        ];
        for (i, &want) in expect.iter().enumerate() {
            let got = sim.average_distance(ap, i as u32).unwrap();
            assert!((got - want).abs() < 1e-12, "i={i}: {got} != {want}");
        }
    }

    #[test]
    fn occurrence_distance_first_pair_is_11() {
        // Section II: distance between a+0 and a+1 is 11.
        let sg = figure2();
        let sim = TimingSimulation::run(&sg, 2);
        let ap = sg.event_by_label("a+").unwrap();
        assert_eq!(sim.occurrence_distance(ap, 0, 1), Some(11.0));
    }

    #[test]
    fn steady_state_distance_is_cycle_time() {
        // After the initial period the oscillation stabilises at 10.
        let sg = figure2();
        let sim = TimingSimulation::run(&sg, 8);
        let ap = sg.event_by_label("a+").unwrap();
        for i in 1..7 {
            assert_eq!(sim.occurrence_distance(ap, i, i + 1), Some(10.0));
        }
    }

    #[test]
    fn prefix_events_have_single_instance() {
        let sg = figure2();
        let sim = TimingSimulation::run(&sg, 2);
        let e = sg.event_by_label("e-").unwrap();
        assert_eq!(sim.time(e, 0), Some(0.0));
        assert_eq!(sim.time(e, 1), None);
    }

    #[test]
    fn out_of_horizon_is_none() {
        let sg = figure2();
        let sim = TimingSimulation::run(&sg, 2);
        let ap = sg.event_by_label("a+").unwrap();
        assert_eq!(sim.time(ap, 2), None);
    }

    #[test]
    fn horizon_is_max_time() {
        // The last event of the second period is c-_1 = 21 (Example 3's
        // table stops earlier, at c+_1 = 16).
        let sg = figure2();
        let sim = TimingSimulation::run(&sg, 2);
        assert_eq!(sim.horizon(), 21.0);
    }

    #[test]
    fn chronological_order() {
        let sg = figure2();
        let sim = TimingSimulation::run(&sg, 1);
        let order: Vec<String> = sim
            .chronological(&sg)
            .into_iter()
            .map(|(e, i, _)| format!("{}_{}", sg.label(e), i))
            .collect();
        assert_eq!(
            order,
            vec!["e-_0", "a+_0", "f-_0", "b+_0", "c+_0", "b-_0", "a-_0", "c-_0"]
        );
    }

    #[test]
    fn pure_prefix_graph_is_pert() {
        let mut b = SignalGraph::builder();
        let s = b.initial_event("start");
        let m1 = b.finite_event("mid1");
        let m2 = b.finite_event("mid2");
        let end = b.finite_event("end");
        b.arc(s, m1, 3.0);
        b.arc(s, m2, 5.0);
        b.arc(m1, end, 4.0);
        b.arc(m2, end, 1.0);
        let sg = b.build().unwrap();
        let sim = TimingSimulation::run(&sg, 1);
        assert_eq!(sim.time(end, 0), Some(7.0)); // max(3+4, 5+1)
    }
}
