//! The O(b²m) cycle-time algorithm (Sections VI–VII of the paper).
//!
//! The algorithm:
//!
//! 1. identify the `b` border events (a cut set, so one of them lies on a
//!    critical cycle);
//! 2. for each border event `g`, run a `g₀`-initiated timing simulation
//!    over `b` periods (Proposition 7 bounds the occurrence period of any
//!    simple cycle by the size of a minimum cut set ≤ `b`);
//! 3. collect the average occurrence distances `δ_{g0}(g_i) = t_{g0}(g_i)/i`
//!    after each full period;
//! 4. the maximum of the collected `b²` values is the cycle time
//!    (Propositions 7 and 8);
//! 5. backtrack the winning simulation to recover a critical cycle
//!    (Proposition 1), decomposing the closed walk into simple cycles
//!    (Proposition 5).
//!
//! Step 2 — the hot phase — runs on the lane-batched
//! [`WideArena`](crate::analysis::wide::WideArena): all `b` simulations
//! advance in lockstep over **one** pass of the shared
//! [`CyclicStructure`], so the in-arc table streams through cache once
//! per row instead of once per simulation, and the per-arc
//! `max(best, src + δ)` widens to `b` contiguous SIMD-friendly lanes.
//! The scalar engine survives as [`CycleTimeAnalysis::run_scalar`] — the
//! reference oracle every wide result is property-tested (and
//! bench-asserted) bit-identical against — and as the parent-tracked
//! re-run of the single winning border in step 5.

use std::fmt;

use tsg_sim::{BatchRunner, CancelKind, CancelToken};

use crate::analysis::initiated::SimArena;
use crate::analysis::scenario::{ScenarioAnalysis, ScenarioSet};
use crate::analysis::session::{AnalysisSession, CycleTimeDelta, DelayEdit, EditError};
use crate::analysis::structure::CyclicStructure;
use crate::analysis::wide::{AnalysisArena, Cancelled, Halt, KernelBackend, WideArena};
use crate::analysis::CycleTime;
use crate::arc::ArcId;
use crate::event::EventId;
use crate::graph::SignalGraph;

/// Error returned by [`CycleTimeAnalysis::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The graph has no repetitive events, hence no cycles and no cycle
    /// time (a purely acyclic PERT computation).
    NoCyclicBehavior,
    /// The analysis observed its [`CancelToken`] mid-flight — the
    /// request's deadline passed or it was cancelled explicitly — and
    /// stopped cooperatively after `rows_done` of `rows_total` lockstep
    /// simulation rows.
    Cancelled {
        /// Whether a deadline or an explicit cancel stopped the run.
        kind: CancelKind,
        /// Fully computed matrix rows at the moment of the abort.
        rows_done: usize,
        /// Rows a complete run would have computed.
        rows_total: usize,
    },
    /// The requested simulation batch has nothing to simulate — zero
    /// lanes (no borders × scenarios) or zero periods. A malformed
    /// request is a structured error, never a panic, so a served
    /// request can't abort a worker.
    DegenerateBatch {
        /// Requested lane count (`borders × scenarios`).
        lanes: usize,
        /// Requested simulation periods.
        periods: u32,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoCyclicBehavior => {
                write!(f, "graph has no repetitive events: cycle time is undefined")
            }
            AnalysisError::Cancelled {
                kind,
                rows_done,
                rows_total,
            } => {
                write!(
                    f,
                    "{kind} after {rows_done} of {rows_total} simulation row(s)"
                )
            }
            AnalysisError::DegenerateBatch { lanes, periods } => {
                write!(
                    f,
                    "degenerate simulation batch: {lanes} lane(s) over {periods} period(s)"
                )
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// The per-border-event record of collected average occurrence distances.
#[derive(Clone, Debug)]
pub struct BorderRecord {
    /// The initiating border event.
    pub event: EventId,
    /// `(i, t_{g0}(g_i), δ_{g0}(g_i))` for each defined `0 < i <= b`.
    pub distances: Vec<(u32, f64, f64)>,
}

impl BorderRecord {
    /// The best `(t, i)` pair of this record by the ratio `t/i`, preferring
    /// fewer periods on ties (the witness of a shorter simple cycle).
    fn best(&self) -> Option<(f64, u32)> {
        self.distances
            .iter()
            .copied()
            .map(|(i, t, _)| (t, i))
            .max_by(|a, b| ratio_cmp(*a, *b).then_with(|| b.1.cmp(&a.1)))
    }
}

fn ratio_cmp(a: (f64, u32), b: (f64, u32)) -> std::cmp::Ordering {
    // a.0/a.1 vs b.0/b.1 by cross multiplication (denominators positive).
    (a.0 * b.1 as f64).total_cmp(&(b.0 * a.1 as f64))
}

/// Maps a kernel [`Halt`] onto the public error. `NotRepetitive` cannot
/// escape the analysis entry points — every lane is initiated from a
/// border event, which is repetitive by construction — but the mapping
/// stays total so a future caller mistake is a structured error, not UB.
pub(crate) fn halt_to_error(halt: Halt) -> AnalysisError {
    match halt {
        Halt::NotRepetitive(_) => {
            unreachable!("border events are repetitive by construction")
        }
        Halt::Cancelled(c) => AnalysisError::Cancelled {
            kind: c.kind,
            rows_done: c.rows_done,
            rows_total: c.rows_total,
        },
        Halt::Degenerate { lanes, periods } => AnalysisError::DegenerateBatch { lanes, periods },
    }
}

/// Per-row working-set budget of a scenario-sweep chunk (current +
/// previous matrix row and the δ table, all `lanes` wide): half a
/// typical per-core L2, leaving room for the structure tables. Purely a
/// blocking factor — results are bit-identical at any value.
const L2_BUDGET_BYTES: usize = 512 * 1024;

/// Overwrites `scratch`'s live-arc delays with scenario `j`'s
/// reweighting of `nominal` — the in-place form of
/// [`ScenarioSet::reweighted`], bit-identical to it (same
/// `delay × factor` products through the same `set_delay`), letting the
/// scenario runners serve every finish step from one scratch clone
/// instead of materialising a graph per scenario.
fn reweight_in_place(
    scratch: &mut SignalGraph,
    nominal: &SignalGraph,
    set: &ScenarioSet,
    j: usize,
) {
    for a in nominal.arc_ids() {
        if !nominal.is_live_arc(a) {
            continue;
        }
        let scaled = nominal.arc(a).delay().get() * set.factor(j, a);
        scratch
            .set_delay(a, scaled)
            .expect("factors in (0, 2) keep delays finite and non-negative");
    }
}

/// Flattens per-worker record chunks, preserving chunk order; on
/// cancellation the reported progress is the *least* advanced worker's
/// row count (any other halt surfaces as-is).
fn merge_chunk_records(
    chunks: Vec<Result<Vec<BorderRecord>, Halt>>,
    capacity: usize,
) -> Result<Vec<BorderRecord>, AnalysisError> {
    let mut records: Vec<BorderRecord> = Vec::with_capacity(capacity);
    let mut cancelled: Option<Cancelled> = None;
    for chunk in chunks {
        match chunk {
            Ok(mut r) => records.append(&mut r),
            Err(Halt::Cancelled(c)) => {
                cancelled = Some(match cancelled {
                    Some(prev) => Cancelled {
                        rows_done: prev.rows_done.min(c.rows_done),
                        ..c
                    },
                    None => c,
                })
            }
            Err(halt) => return Err(halt_to_error(halt)),
        }
    }
    if let Some(c) = cancelled {
        return Err(halt_to_error(Halt::Cancelled(c)));
    }
    Ok(records)
}

/// Result of the paper's cycle-time algorithm.
///
/// # Examples
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::analysis::CycleTimeAnalysis;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 3.0);
/// b.marked_arc(xm, xp, 2.0);
/// let sg = b.build()?;
///
/// let analysis = CycleTimeAnalysis::run(&sg)?;
/// assert_eq!(analysis.cycle_time().as_f64(), 5.0);
/// assert_eq!(analysis.critical_cycle().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CycleTimeAnalysis {
    cycle_time: CycleTime,
    critical_cycle: Vec<ArcId>,
    critical_borders: Vec<EventId>,
    border: Vec<EventId>,
    records: Vec<BorderRecord>,
}

impl CycleTimeAnalysis {
    /// Runs the algorithm on a validated graph.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoCyclicBehavior`] when `sg` has no
    /// repetitive events.
    pub fn run(sg: &SignalGraph) -> Result<Self, AnalysisError> {
        Self::run_with_periods(sg, None)
    }

    /// Runs the algorithm simulating `periods` periods per border event
    /// instead of the default `b`.
    ///
    /// Correctness requires `periods` to be at least the maximum occurrence
    /// period `ε_max` of a simple cycle. `b` is always sufficient; a tight
    /// value can be computed with
    /// [`border::exact_max_occurrence_period`](crate::analysis::border::exact_max_occurrence_period)
    /// — the oscillator of Section VIII.C needs a single period, as the
    /// paper remarks. (The paper's Proposition 6 bounds `ε_max` by the
    /// minimum cut set size, which is not sound in general; see
    /// [`border`](crate::analysis::border).)
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoCyclicBehavior`] when `sg` has no
    /// repetitive events.
    pub fn run_with_periods(sg: &SignalGraph, periods: Option<u32>) -> Result<Self, AnalysisError> {
        Self::run_in(sg, periods, &mut AnalysisArena::new())
    }

    /// Runs the algorithm on an explicitly chosen [`KernelBackend`] —
    /// the one-shot form behind `tsg analyze --kernel`. `kernel` is
    /// resolved leniently (see [`AnalysisArena::with_kernel`]); validate
    /// with [`KernelBackend::resolve`] first where an unavailable
    /// request must be a structured error instead of a fallback.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoCyclicBehavior`] when `sg` has no
    /// repetitive events.
    pub fn run_with_kernel(sg: &SignalGraph, kernel: KernelBackend) -> Result<Self, AnalysisError> {
        Self::run_in(sg, None, &mut AnalysisArena::with_kernel(kernel))
    }

    /// Allocation-reusing core: runs the algorithm with the lane-major
    /// wide matrix of all `b` lockstep simulations — and the scalar
    /// arena of the parent-tracked winner re-run — living in `arena`.
    ///
    /// Repeated analyses over one arena — a design-space inner loop, a
    /// worker thread of [`CycleTimeAnalysis::analyze_batch`], a serve
    /// workspace — stop churning the allocator: after the first analysis
    /// of the largest shape, the matrices are never reallocated again.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoCyclicBehavior`] when `sg` has no
    /// repetitive events.
    pub fn run_in(
        sg: &SignalGraph,
        periods: Option<u32>,
        arena: &mut AnalysisArena,
    ) -> Result<Self, AnalysisError> {
        Self::run_in_with_cancel(sg, periods, arena, None)
    }

    /// [`run_in`](Self::run_in) with cooperative cancellation: `cancel`
    /// is polled once per lockstep matrix row, so a deadline or an
    /// explicit cancel aborts a long analysis within one row of work and
    /// returns [`AnalysisError::Cancelled`] with the progress made. The
    /// arena stays valid for reuse — the next run overwrites the
    /// partially written matrix from row 0.
    ///
    /// (The O(b·m) parent-tracked winner re-run in the finish step is
    /// not polled: it is one simulation against the main phase's `b`.)
    ///
    /// # Errors
    ///
    /// [`AnalysisError::NoCyclicBehavior`] for graphs without repetitive
    /// events; [`AnalysisError::Cancelled`] when `cancel` fires first.
    pub fn run_in_with_cancel(
        sg: &SignalGraph,
        periods: Option<u32>,
        arena: &mut AnalysisArena,
        cancel: Option<&CancelToken>,
    ) -> Result<Self, AnalysisError> {
        let border = sg.border_events();
        if border.is_empty() {
            return Err(AnalysisError::NoCyclicBehavior);
        }
        let b = periods.unwrap_or(border.len() as u32).max(1);

        // One shared evaluation structure (rebuilt into the arena's warm
        // buffers), one lockstep pass for all b simulations.
        let AnalysisArena {
            wide,
            finish,
            structure,
        } = arena;
        structure.rebuild(sg);
        if let Err(halt) = wide.run_with(sg, structure, &border, b, cancel) {
            return Err(halt_to_error(halt));
        }
        let records = (0..border.len())
            .map(|k| BorderRecord {
                event: border[k],
                distances: wide.distance_series(k),
            })
            .collect();

        Self::finish(sg, structure, border, records, finish)
    }

    /// The scalar reference engine: the pre-wide one-simulation-at-a-time
    /// loop, kept as the oracle the lane-batched kernel is verified
    /// against (`tests/wide.rs`, the `bench` binary's `wide-vs-scalar`
    /// scenario) and as the baseline those speedups are measured from.
    /// Bit-identical to [`CycleTimeAnalysis::run`] by construction.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoCyclicBehavior`] when `sg` has no
    /// repetitive events.
    pub fn run_scalar(sg: &SignalGraph) -> Result<Self, AnalysisError> {
        Self::run_scalar_in(sg, None, &mut SimArena::new())
    }

    /// Arena-reusing form of [`CycleTimeAnalysis::run_scalar`].
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoCyclicBehavior`] when `sg` has no
    /// repetitive events.
    pub fn run_scalar_in(
        sg: &SignalGraph,
        periods: Option<u32>,
        arena: &mut SimArena,
    ) -> Result<Self, AnalysisError> {
        let border = sg.border_events();
        if border.is_empty() {
            return Err(AnalysisError::NoCyclicBehavior);
        }
        let b = periods.unwrap_or(border.len() as u32).max(1);

        let structure = CyclicStructure::new(sg);
        let mut records = Vec::with_capacity(border.len());
        for &g in &border {
            arena
                .run_with(sg, &structure, g, b, false)
                .expect("border events are repetitive by construction");
            records.push(BorderRecord {
                event: g,
                distances: arena.distance_series(),
            });
        }

        Self::finish(sg, &structure, border, records, arena)
    }

    /// Runs the algorithm with the `b` border simulations chunked into
    /// lane groups fanned out across `runner`'s threads.
    ///
    /// Each worker runs one [`WideArena`] over a contiguous chunk of
    /// lanes — a lockstep SIMD-friendly pass per worker, instead of the
    /// pre-wide one-scalar-simulation-per-claim fan-out. Every lane's
    /// values are independent of its neighbours (lockstep only shares
    /// the traversal), and chunks preserve border order, so the result —
    /// cycle time, critical cycle, records — is bit-identical to
    /// [`CycleTimeAnalysis::run`] at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoCyclicBehavior`] when `sg` has no
    /// repetitive events.
    pub fn run_parallel(sg: &SignalGraph, runner: &BatchRunner) -> Result<Self, AnalysisError> {
        Self::run_parallel_on(sg, runner, KernelBackend::Auto)
    }

    /// [`run_parallel`](Self::run_parallel) on an explicitly chosen
    /// [`KernelBackend`]: every worker's [`WideArena`] is pinned to the
    /// same resolved backend, so a serve pool or `--kernel` flag
    /// controls the whole fan-out. `kernel` is resolved leniently (see
    /// [`AnalysisArena::with_kernel`]); validate with
    /// [`KernelBackend::resolve`] first where an unavailable request
    /// must be a structured error.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoCyclicBehavior`] when `sg` has no
    /// repetitive events.
    pub fn run_parallel_on(
        sg: &SignalGraph,
        runner: &BatchRunner,
        kernel: KernelBackend,
    ) -> Result<Self, AnalysisError> {
        Self::run_parallel_with_cancel(sg, runner, kernel, None)
    }

    /// [`run_parallel_on`](Self::run_parallel_on) with cooperative
    /// cancellation: every worker polls the shared `cancel` once per
    /// matrix row of its lane chunk, so one deadline stops the whole
    /// fan-out within a row per worker. On cancellation the reported
    /// progress is the *least* advanced worker's row count.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::NoCyclicBehavior`] for graphs without repetitive
    /// events; [`AnalysisError::Cancelled`] when `cancel` fires first.
    pub fn run_parallel_with_cancel(
        sg: &SignalGraph,
        runner: &BatchRunner,
        kernel: KernelBackend,
        cancel: Option<&CancelToken>,
    ) -> Result<Self, AnalysisError> {
        let border = sg.border_events();
        if border.is_empty() {
            return Err(AnalysisError::NoCyclicBehavior);
        }
        let b = border.len() as u32;
        let structure = CyclicStructure::new(sg);

        let chunk = border.len().div_ceil(runner.threads().max(1));
        let chunks: Vec<&[EventId]> = border.chunks(chunk).collect();
        let chunk_records: Vec<Result<Vec<BorderRecord>, Halt>> = runner.run_with_state(
            &chunks,
            || WideArena::with_kernel(kernel),
            |wide, lanes| {
                wide.run_with(sg, &structure, lanes, b, cancel)?;
                Ok(lanes
                    .iter()
                    .enumerate()
                    .map(|(k, &g)| BorderRecord {
                        event: g,
                        distances: wide.distance_series(k),
                    })
                    .collect())
            },
        );
        let records = merge_chunk_records(chunk_records, border.len())?;

        Self::finish(sg, &structure, border, records, &mut SimArena::new())
    }

    /// Runs the algorithm under every delay scenario of `set` in one
    /// scenario-lane sweep: the wide kernel packs `borders × scenarios`
    /// lanes, so all scenarios share a single lockstep pass over the
    /// nominal in-arc table with per-lane δ vectors — instead of one
    /// full re-analysis per scenario.
    ///
    /// Scenario `j`'s lanes are bit-identical to a from-scratch
    /// [`run`](Self::run) on [`ScenarioSet::reweighted`]`(sg, j)` (the
    /// bench suite asserts exactly that before timing anything), and the
    /// per-scenario finish re-runs the winner on the reweighted graph,
    /// so each [`ScenarioAnalysis::analysis`] is a full, exact result.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::NoCyclicBehavior`] for graphs without repetitive
    /// events; [`AnalysisError::DegenerateBatch`] when `set` spans no
    /// scenarios.
    pub fn run_scenarios(
        sg: &SignalGraph,
        set: &ScenarioSet,
    ) -> Result<ScenarioAnalysis, AnalysisError> {
        Self::run_scenarios_in(sg, set, None, &mut AnalysisArena::new(), None)
    }

    /// Arena-reusing, cancellable form of
    /// [`run_scenarios`](Self::run_scenarios); `cancel` is polled once
    /// per lockstep matrix row across all scenario lanes.
    ///
    /// # Errors
    ///
    /// As [`run_scenarios`](Self::run_scenarios), plus
    /// [`AnalysisError::Cancelled`] when `cancel` fires first.
    pub fn run_scenarios_in(
        sg: &SignalGraph,
        set: &ScenarioSet,
        periods: Option<u32>,
        arena: &mut AnalysisArena,
        cancel: Option<&CancelToken>,
    ) -> Result<ScenarioAnalysis, AnalysisError> {
        let border = sg.border_events();
        if border.is_empty() {
            return Err(AnalysisError::NoCyclicBehavior);
        }
        let b = periods.unwrap_or(border.len() as u32).max(1);
        let s = set.len();

        // Scenario δs are `nominal × factor` — the exact product
        // `ScenarioSet::reweighted` stores (set_delay keeps the bits),
        // so kernel lanes and scalar re-runs on the reweighted graph
        // fold bit-identical δs by construction, without materialising
        // one graph clone per scenario on the hot path.
        let AnalysisArena {
            wide,
            finish,
            structure,
        } = arena;
        structure.rebuild(sg);

        // Scenarios are swept in cache-sized chunks: a chunk's hot set
        // per matrix row — the current/previous row pair plus the δ
        // table, all `lanes` wide — should stay L2-resident, or a large
        // `b × s` matrix turns the lockstep pass memory-bound and loses
        // to per-scenario re-analysis. Lanes are independent, so chunk
        // boundaries cannot change any lane's cells: the result is
        // bit-identical at every chunk size.
        let bn = border.len();
        let n = sg.event_count();
        let per_lane_bytes = (2 * n + sg.arc_count()) * std::mem::size_of::<f64>();
        let scen_chunk = (L2_BUDGET_BYTES / (per_lane_bytes * bn).max(1)).clamp(1, s);
        let mut scenario_records: Vec<Vec<BorderRecord>> = Vec::with_capacity(s);
        let mut j0 = 0usize;
        while j0 < s {
            let sc = scen_chunk.min(s - j0);
            if let Err(halt) = wide.run_scenarios_with(
                sg,
                structure,
                &border,
                sc,
                |arc, jj| sg.arc(arc).delay().get() * set.factor(j0 + jj, arc),
                b,
                cancel,
            ) {
                return Err(halt_to_error(halt));
            }
            for jj in 0..sc {
                scenario_records.push(
                    (0..bn)
                        .map(|k| BorderRecord {
                            event: border[k],
                            distances: wide.distance_series(jj * bn + k),
                        })
                        .collect(),
                );
            }
            j0 += sc;
        }

        // The finish step's parent-tracked winner re-run reads a real
        // graph; one scratch clone serves every scenario in turn with
        // its delays overwritten in place — s full clones (label
        // strings included) would cost more than the sweep itself.
        let mut scratch = sg.clone();
        let labels = (0..s).map(|j| set.label(j).to_string()).collect();
        let mut per = Vec::with_capacity(s);
        for (j, records) in scenario_records.into_iter().enumerate() {
            reweight_in_place(&mut scratch, sg, set, j);
            // Rebuild per scenario over the same warm buffers: no
            // allocation after the first.
            structure.rebuild(&scratch);
            per.push(Self::finish(
                &scratch,
                structure,
                border.clone(),
                records,
                finish,
            )?);
        }
        Ok(ScenarioAnalysis::new(labels, per))
    }

    /// [`run_scenarios`](Self::run_scenarios) with the scenario lanes
    /// chunked across `runner`'s threads: each worker sweeps a
    /// contiguous block of scenarios (all borders of each) over its own
    /// [`WideArena`] pinned to `kernel`. Chunks preserve scenario order
    /// and lanes are independent, so the result is bit-identical to the
    /// sequential sweep at every thread count.
    ///
    /// # Errors
    ///
    /// As [`run_scenarios`](Self::run_scenarios), plus
    /// [`AnalysisError::Cancelled`] when `cancel` fires first (reported
    /// progress is the least advanced worker's row count).
    pub fn run_scenarios_parallel_on(
        sg: &SignalGraph,
        set: &ScenarioSet,
        runner: &BatchRunner,
        kernel: KernelBackend,
        cancel: Option<&CancelToken>,
    ) -> Result<ScenarioAnalysis, AnalysisError> {
        let border = sg.border_events();
        if border.is_empty() {
            return Err(AnalysisError::NoCyclicBehavior);
        }
        let b = border.len() as u32;
        let s = set.len();
        let structure = CyclicStructure::new(sg);

        let bn = border.len();
        let scenario_ids: Vec<usize> = (0..s).collect();
        let chunk = s.div_ceil(runner.threads().max(1)).max(1);
        let chunks: Vec<&[usize]> = scenario_ids.chunks(chunk).collect();
        let chunk_records: Vec<Result<Vec<Vec<BorderRecord>>, Halt>> = runner.run_with_state(
            &chunks,
            || WideArena::with_kernel(kernel),
            |wide, ids| {
                wide.run_scenarios_with(
                    sg,
                    &structure,
                    &border,
                    ids.len(),
                    |arc, jj| sg.arc(arc).delay().get() * set.factor(ids[jj], arc),
                    b,
                    cancel,
                )?;
                Ok((0..ids.len())
                    .map(|jj| {
                        (0..bn)
                            .map(|k| BorderRecord {
                                event: border[k],
                                distances: wide.distance_series(jj * bn + k),
                            })
                            .collect()
                    })
                    .collect())
            },
        );
        let mut scenario_records: Vec<Vec<BorderRecord>> = Vec::with_capacity(s);
        let mut cancelled: Option<Cancelled> = None;
        for chunk in chunk_records {
            match chunk {
                Ok(mut r) => scenario_records.append(&mut r),
                Err(Halt::Cancelled(c)) => {
                    cancelled = Some(match cancelled {
                        Some(prev) => Cancelled {
                            rows_done: prev.rows_done.min(c.rows_done),
                            ..c
                        },
                        None => c,
                    })
                }
                Err(halt) => return Err(halt_to_error(halt)),
            }
        }
        if let Some(c) = cancelled {
            return Err(halt_to_error(Halt::Cancelled(c)));
        }

        let labels = (0..s).map(|j| set.label(j).to_string()).collect();
        let mut finish = SimArena::new();
        let mut fin_structure = CyclicStructure::new(sg);
        let mut scratch = sg.clone();
        let mut per = Vec::with_capacity(s);
        for (j, records) in scenario_records.into_iter().enumerate() {
            reweight_in_place(&mut scratch, sg, set, j);
            fin_structure.rebuild(&scratch);
            per.push(Self::finish(
                &scratch,
                &fin_structure,
                border.clone(),
                records,
                &mut finish,
            )?);
        }
        Ok(ScenarioAnalysis::new(labels, per))
    }

    /// Analyzes many graphs in parallel — the many-graph sweep behind
    /// `tsg analyze --threads`, the `repro` batch experiment and the
    /// kernel benchmarks.
    ///
    /// Scenarios fan out across `runner` with a per-worker
    /// [`AnalysisArena`], so a 1000-graph sweep allocates a
    /// thread-count's worth of matrices, not a thousand. Results
    /// preserve input order and each entry is bit-identical to a
    /// sequential [`CycleTimeAnalysis::run`] on the same graph.
    ///
    /// # Examples
    ///
    /// ```
    /// use tsg_core::analysis::CycleTimeAnalysis;
    /// use tsg_sim::BatchRunner;
    ///
    /// let graphs: Vec<_> = (2..6).map(|k| {
    ///     let mut b = tsg_core::SignalGraph::builder();
    ///     let x = b.event("x");
    ///     b.marked_arc(x, x, k as f64);
    ///     b.build().unwrap()
    /// }).collect();
    /// let out = CycleTimeAnalysis::analyze_batch(&graphs, &BatchRunner::with_threads(2));
    /// assert_eq!(out[1].as_ref().unwrap().cycle_time().as_f64(), 3.0);
    /// ```
    pub fn analyze_batch(
        graphs: &[SignalGraph],
        runner: &BatchRunner,
    ) -> Vec<Result<Self, AnalysisError>> {
        runner.run_with_state(graphs, AnalysisArena::new, |arena, sg| {
            Self::run_in(sg, None, arena)
        })
    }

    /// Applies `edits` to an open [`AnalysisSession`] and re-analyses
    /// only the dirty region — the delta-query form of this algorithm.
    /// See [`AnalysisSession::edit_delays`] for the dirtiness criterion;
    /// the result is bit-identical to a from-scratch
    /// [`CycleTimeAnalysis::run`] on the edited graph.
    ///
    /// # Errors
    ///
    /// Returns [`EditError`] for unknown arcs or invalid delays; the
    /// session is left unchanged in that case.
    pub fn rerun_in(
        session: &mut AnalysisSession,
        edits: &[DelayEdit],
    ) -> Result<CycleTimeDelta, EditError> {
        session.edit_delays(edits)
    }

    /// Steps 4–5 of the algorithm, shared by every entry point: pick the
    /// winning record, re-run it with parent tracking in `arena`, and
    /// backtrack the critical cycle.
    pub(crate) fn finish(
        sg: &SignalGraph,
        structure: &CyclicStructure,
        border: Vec<EventId>,
        records: Vec<BorderRecord>,
        arena: &mut SimArena,
    ) -> Result<Self, AnalysisError> {
        // Step 4: the largest average occurrence distance is the cycle time.
        let (mut best, mut best_idx): (Option<(f64, u32)>, usize) = (None, 0);
        for (k, rec) in records.iter().enumerate() {
            if let Some(cand) = rec.best() {
                if best.is_none() || ratio_cmp(cand, best.unwrap()).is_gt() {
                    best = Some(cand);
                    best_idx = k;
                }
            }
        }
        let (length, periods_spanned) =
            best.expect("every border event lies on a cycle with period <= b");
        let cycle_time = CycleTime::new(length, periods_spanned);

        // Step 5: re-run the winning simulation with parent tracking and
        // backtrack a critical cycle from it.
        arena
            .run_with(sg, structure, border[best_idx], periods_spanned, true)
            .expect("winner is a border event");
        let walk = arena
            .backtrack_in(sg, border[best_idx], periods_spanned)
            .expect("winning instance is reachable");
        let critical_cycle = best_simple_cycle(sg, border[best_idx], &walk);

        // Proposition 8: border events strictly below τ are off all
        // critical cycles; those attaining τ are on one.
        let critical_borders = records
            .iter()
            .filter_map(|rec| {
                rec.best().and_then(|cand| {
                    ratio_cmp(cand, (length, periods_spanned))
                        .is_eq()
                        .then_some(rec.event)
                })
            })
            .collect();

        Ok(CycleTimeAnalysis {
            cycle_time,
            critical_cycle,
            critical_borders,
            border,
            records,
        })
    }

    /// The cycle time `τ` of the graph.
    pub fn cycle_time(&self) -> CycleTime {
        self.cycle_time
    }

    /// A critical cycle: a simple cycle whose effective length `C/ε`
    /// equals the cycle time.
    pub fn critical_cycle(&self) -> &[ArcId] {
        &self.critical_cycle
    }

    /// The border events that lie on a critical cycle (attain `τ`).
    pub fn critical_borders(&self) -> &[EventId] {
        &self.critical_borders
    }

    /// The border events the simulations were initiated from.
    pub fn border_events(&self) -> &[EventId] {
        &self.border
    }

    /// The collected per-border average-occurrence-distance tables.
    pub fn records(&self) -> &[BorderRecord] {
        &self.records
    }
}

/// The effective length `C/ε` of a cycle, as a [`CycleTime`].
///
/// # Panics
///
/// Panics if the cycle has no marked arc (impossible in a validated live
/// graph).
pub fn cycle_ratio(sg: &SignalGraph, cycle: &[ArcId]) -> CycleTime {
    CycleTime::new(sg.path_length(cycle), sg.occurrence_period(cycle))
}

/// Decomposes the closed walk `start -walk-> start` into simple cycles and
/// returns the one with the largest effective length (Proposition 5
/// guarantees it attains the walk's ratio).
fn best_simple_cycle(sg: &SignalGraph, start: EventId, walk: &[ArcId]) -> Vec<ArcId> {
    /// Sentinel for "event not on the current open walk" in the flat
    /// position map (a critical walk visits events once per period, so a
    /// dense `Vec` beats a `HashMap` on the kilo-arc walks big rings
    /// produce).
    const OFF_WALK: u32 = u32::MAX;
    let mut cycles: Vec<Vec<ArcId>> = Vec::new();
    let mut pos: Vec<u32> = vec![OFF_WALK; sg.event_count()];
    pos[start.index()] = 0;
    let mut arcs: Vec<ArcId> = Vec::new();
    for &a in walk {
        arcs.push(a);
        let v = sg.arc(a).dst();
        let k = pos[v.index()];
        if k != OFF_WALK {
            // arcs[k..] close a cycle at v
            let cycle: Vec<ArcId> = arcs.split_off(k as usize);
            for c in &cycle {
                let node = sg.arc(*c).dst();
                if node != v {
                    pos[node.index()] = OFF_WALK;
                }
            }
            cycles.push(cycle);
        } else {
            pos[v.index()] = arcs.len() as u32;
        }
    }
    debug_assert!(arcs.is_empty(), "walk must decompose exactly into cycles");
    let best = cycles
        .into_iter()
        .max_by(|x, y| {
            let rx = (sg.path_length(x), sg.occurrence_period(x));
            let ry = (sg.path_length(y), sg.occurrence_period(y));
            ratio_cmp(rx, ry)
        })
        .expect("closed walk contains at least one cycle");
    canonical_rotation(sg, best)
}

/// Rotates a cycle so it starts at its smallest (event id, arc id) pair —
/// gives deterministic output independent of which border event won.
fn canonical_rotation(sg: &SignalGraph, cycle: Vec<ArcId>) -> Vec<ArcId> {
    let k = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, &a)| (sg.arc(a).src(), a))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[k..]);
    out.extend_from_slice(&cycle[..k]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn oscillator_cycle_time_is_10() {
        // Section VIII.C: τ = max{10, 10, 8, 9} = 10.
        let sg = figure2();
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(a.cycle_time().as_f64(), 10.0);
        assert_eq!(a.cycle_time().periods(), 1);
    }

    #[test]
    fn oscillator_collected_distances() {
        // a+: 10/1, 20/2; b+: 8/1, 18/2.
        let sg = figure2();
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        let rec = |l: &str| {
            a.records()
                .iter()
                .find(|r| sg.label(r.event).to_string() == l)
                .unwrap()
        };
        assert_eq!(rec("a+").distances, vec![(1, 10.0, 10.0), (2, 20.0, 10.0)]);
        assert_eq!(rec("b+").distances, vec![(1, 8.0, 8.0), (2, 18.0, 9.0)]);
    }

    #[test]
    fn oscillator_critical_cycle() {
        // Example 5/6: C1 = a+ -> c+ -> a- -> c- is the length-10 critical
        // cycle (the paper's VIII.C misprints C2 here; see EXPERIMENTS.md).
        let sg = figure2();
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(
            sg.display_path(a.critical_cycle()),
            "a+ -3-> c+ -2-> a- -3-> c- -2*-> a+"
        );
        assert_eq!(cycle_ratio(&sg, a.critical_cycle()).as_f64(), 10.0);
    }

    #[test]
    fn oscillator_critical_borders() {
        // a+ attains τ; b+ stays strictly below (Proposition 8).
        let sg = figure2();
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        let labels: Vec<String> = a
            .critical_borders()
            .iter()
            .map(|&e| sg.label(e).to_string())
            .collect();
        assert_eq!(labels, vec!["a+"]);
    }

    #[test]
    fn one_period_suffices_with_minimum_cut_knowledge() {
        // Section VIII.C: "As a minimum cut set consists of one element
        // (e.g. {c+}), one period is needed only."
        let sg = figure2();
        let a = CycleTimeAnalysis::run_with_periods(&sg, Some(1)).unwrap();
        assert_eq!(a.cycle_time().as_f64(), 10.0);
    }

    #[test]
    fn pure_prefix_graph_has_no_cycle_time() {
        let mut b = SignalGraph::builder();
        let s = b.initial_event("s");
        let t = b.finite_event("t");
        b.arc(s, t, 1.0);
        let sg = b.build().unwrap();
        assert_eq!(
            CycleTimeAnalysis::run(&sg).unwrap_err(),
            AnalysisError::NoCyclicBehavior
        );
    }

    #[test]
    fn self_loop_cycle_time() {
        let mut b = SignalGraph::builder();
        let x = b.event("x");
        b.marked_arc(x, x, 7.5);
        let sg = b.build().unwrap();
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(a.cycle_time().as_f64(), 7.5);
        assert_eq!(a.critical_cycle().len(), 1);
    }

    #[test]
    fn two_loop_max_is_selected() {
        // x's loop is slower than y's: τ must be x's 9, not y's 4.
        let mut b = SignalGraph::builder();
        let xp = b.event("x+");
        let xm = b.event("x-");
        let y = b.event("y");
        b.arc(xp, xm, 4.0);
        b.marked_arc(xm, xp, 5.0);
        b.arc(xp, y, 1.0);
        b.marked_arc(y, xp, 3.0);
        let sg = b.build().unwrap();
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(a.cycle_time().as_f64(), 9.0);
        let cyc = sg.display_path(a.critical_cycle());
        assert!(
            cyc.contains("x-"),
            "critical cycle should be the x loop: {cyc}"
        );
    }

    #[test]
    fn multi_period_cycle_detected() {
        // A 4-event ring with two tokens: each "cycle" spans 2 periods.
        // τ = total length / tokens = 8/2 = 4.
        let mut b = SignalGraph::builder();
        let n: Vec<_> = (0..4).map(|i| b.event(&format!("n{i}"))).collect();
        b.marked_arc(n[0], n[1], 2.0);
        b.arc(n[1], n[2], 2.0);
        b.marked_arc(n[2], n[3], 2.0);
        b.arc(n[3], n[0], 2.0);
        let sg = b.build().unwrap();
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(a.cycle_time().as_f64(), 4.0);
        assert_eq!(a.cycle_time().periods(), 2);
        assert_eq!(a.critical_cycle().len(), 4);
    }

    #[test]
    fn zero_delay_graph_has_zero_cycle_time() {
        let mut b = SignalGraph::builder();
        let x = b.event("x");
        let y = b.event("y");
        b.arc(x, y, 0.0);
        b.marked_arc(y, x, 0.0);
        let sg = b.build().unwrap();
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(a.cycle_time().as_f64(), 0.0);
    }

    #[test]
    fn walk_decomposition_picks_heaviest_cycle() {
        // Craft a walk that passes through a light cycle before the heavy
        // one: ensured indirectly by a graph where the longest 2-period
        // walk from the border event wraps through two different loops.
        let mut b = SignalGraph::builder();
        let p = b.event("p");
        let q = b.event("q");
        let r = b.event("r");
        b.arc(p, q, 1.0);
        b.marked_arc(q, p, 1.0); // loop A: length 2
        b.arc(p, r, 5.0);
        b.marked_arc(r, p, 5.0); // loop B: length 10
        let sg = b.build().unwrap();
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(a.cycle_time().as_f64(), 10.0);
        let cyc = sg.display_path(a.critical_cycle());
        assert!(cyc.contains('r'), "{cyc}");
    }

    #[test]
    fn exact_ratio_for_integral_delays() {
        let sg = figure2();
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(a.cycle_time().exact().unwrap().to_string(), "10");
    }

    fn assert_same_analysis(a: &CycleTimeAnalysis, b: &CycleTimeAnalysis, ctx: &str) {
        assert_eq!(
            a.cycle_time().as_f64().to_bits(),
            b.cycle_time().as_f64().to_bits(),
            "{ctx}: cycle time"
        );
        assert_eq!(a.cycle_time().periods(), b.cycle_time().periods(), "{ctx}");
        assert_eq!(a.critical_cycle(), b.critical_cycle(), "{ctx}");
        assert_eq!(a.critical_borders(), b.critical_borders(), "{ctx}");
        assert_eq!(a.border_events(), b.border_events(), "{ctx}");
        for (ra, rb) in a.records().iter().zip(b.records()) {
            assert_eq!(ra.event, rb.event, "{ctx}");
            assert_eq!(ra.distances, rb.distances, "{ctx}");
        }
    }

    #[test]
    fn run_parallel_is_bit_identical_to_run() {
        use tsg_sim::BatchRunner;
        let sg = figure2();
        let seq = CycleTimeAnalysis::run(&sg).unwrap();
        for threads in [1, 2, 8] {
            let par =
                CycleTimeAnalysis::run_parallel(&sg, &BatchRunner::with_threads(threads)).unwrap();
            assert_same_analysis(&seq, &par, &format!("threads={threads}"));
        }
    }

    #[test]
    fn run_in_reuses_arena_across_analyses() {
        use crate::analysis::wide::AnalysisArena;
        let sg = figure2();
        let mut arena = AnalysisArena::new();
        let first = CycleTimeAnalysis::run_in(&sg, None, &mut arena).unwrap();
        // A second analysis over the warmed arena must match exactly.
        let second = CycleTimeAnalysis::run_in(&sg, None, &mut arena).unwrap();
        assert_same_analysis(&first, &second, "arena reuse");
        assert_eq!(first.cycle_time().as_f64(), 10.0);
    }

    #[test]
    fn wide_run_is_bit_identical_to_the_scalar_reference() {
        // The acceptance bar of the lane-batched kernel, on the paper's
        // own oscillator: same bits out of `run` (wide) and `run_scalar`.
        let sg = figure2();
        let wide = CycleTimeAnalysis::run(&sg).unwrap();
        let scalar = CycleTimeAnalysis::run_scalar(&sg).unwrap();
        assert_same_analysis(&scalar, &wide, "wide vs scalar");
        for periods in [1u32, 2, 5] {
            let wide = CycleTimeAnalysis::run_with_periods(&sg, Some(periods)).unwrap();
            let scalar = CycleTimeAnalysis::run_scalar_in(
                &sg,
                Some(periods),
                &mut crate::analysis::initiated::SimArena::new(),
            )
            .unwrap();
            assert_same_analysis(&scalar, &wide, &format!("periods={periods}"));
        }
    }

    #[test]
    fn analyze_batch_matches_sequential_runs() {
        use tsg_sim::BatchRunner;
        let graphs: Vec<SignalGraph> = (1..=6)
            .map(|k| {
                let mut b = SignalGraph::builder();
                let xp = b.event("x+");
                let xm = b.event("x-");
                b.arc(xp, xm, k as f64);
                b.marked_arc(xm, xp, 2.0 * k as f64);
                b.build().unwrap()
            })
            .collect();
        let batch = CycleTimeAnalysis::analyze_batch(&graphs, &BatchRunner::with_threads(4));
        assert_eq!(batch.len(), graphs.len());
        for (i, (sg, got)) in graphs.iter().zip(&batch).enumerate() {
            let want = CycleTimeAnalysis::run(sg).unwrap();
            assert_same_analysis(&want, got.as_ref().unwrap(), &format!("graph {i}"));
        }
    }

    #[test]
    fn analyze_batch_propagates_acyclic_errors_in_order() {
        use tsg_sim::BatchRunner;
        let cyclic = figure2();
        let acyclic = {
            let mut b = SignalGraph::builder();
            let s = b.initial_event("s");
            let t = b.finite_event("t");
            b.arc(s, t, 1.0);
            b.build().unwrap()
        };
        let graphs = vec![cyclic, acyclic];
        let out = CycleTimeAnalysis::analyze_batch(&graphs, &BatchRunner::with_threads(2));
        assert!(out[0].is_ok());
        assert_eq!(out[1].clone().unwrap_err(), AnalysisError::NoCyclicBehavior);
    }
}
