//! Timing analysis of Timed Signal Graphs (Sections IV–VII of the paper).
//!
//! * [`sim::TimingSimulation`] — the timing simulation `t(·)` over the
//!   unfolding (Section IV.A),
//! * [`event_sim::EventSimulation`] — the same `t(·)` computed
//!   discrete-event-style on the shared `tsg-sim` kernel,
//! * [`initiated::InitiatedSimulation`] — the event-initiated simulation
//!   `t_g(·)` (Section IV.B),
//! * [`wide::WideArena`] — all `b` event-initiated simulations of one
//!   analysis in SIMD-friendly lockstep lanes over a single structure
//!   pass (bit-identical to the scalar kernel),
//! * [`CycleTimeAnalysis`] — the O(b²m) cycle-time algorithm with
//!   critical-cycle backtracking (Sections VI–VII), running on the wide
//!   kernel,
//! * [`session::AnalysisSession`] — incremental delta re-analysis:
//!   delay edits re-simulate only the dirty region,
//! * [`border`] — border and cut sets (Section VI.A),
//! * [`asymptotic`] — δ-series for Figure 4,
//! * [`diagram`] — ASCII timing diagrams (Figure 1c/1d).

pub mod asymptotic;
pub mod border;
pub mod cycle_time;
pub mod diagram;
pub mod event_sim;
pub mod initiated;
pub mod scenario;
pub mod session;
pub mod sim;
pub mod slack;
pub(crate) mod structure;
pub mod wide;

pub use cycle_time::{AnalysisError, BorderRecord, CycleTimeAnalysis};
pub use scenario::{Corner, ScenarioAnalysis, ScenarioSet, ScenarioSpecError, UnknownCorner};
pub use session::{AnalysisSession, CycleTimeDelta, DelayEdit, EditError};
pub use wide::{KernelBackend, KernelUnavailable, UnknownKernel, WideRunError};

use crate::time::Ratio;
use std::fmt;

/// A cycle time `τ = length / periods`: the total delay of a critical path
/// over the number of unfolding periods it spans.
///
/// Keeping numerator and denominator separate lets maxima be selected by
/// cross-multiplication, which is exact whenever delays are integral
/// (divisions like 20/3 never enter the comparison).
///
/// # Examples
///
/// ```
/// use tsg_core::analysis::CycleTime;
///
/// let tau = CycleTime::new(20.0, 3);
/// assert!((tau.as_f64() - 6.6667).abs() < 1e-3);
/// assert_eq!(tau.exact().unwrap().to_string(), "20/3");
/// assert!(tau > CycleTime::new(13.0, 2));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CycleTime {
    length: f64,
    periods: u32,
}

impl CycleTime {
    /// Creates a cycle time from a total path `length` over `periods`
    /// periods.
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0` or `length` is not finite.
    pub fn new(length: f64, periods: u32) -> Self {
        assert!(periods > 0, "cycle time needs at least one period");
        assert!(length.is_finite(), "cycle length must be finite");
        CycleTime { length, periods }
    }

    /// Total delay along the witnessing path/cycle.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Number of unfolding periods (tokens) the witness spans.
    pub fn periods(&self) -> u32 {
        self.periods
    }

    /// The cycle time as a float: `length / periods`.
    pub fn as_f64(&self) -> f64 {
        self.length / self.periods as f64
    }

    /// The exact rational value, when the length is integral.
    pub fn exact(&self) -> Option<Ratio> {
        if self.length.fract() == 0.0 && self.length.abs() < 2f64.powi(53) {
            Some(Ratio::new(self.length as i64, self.periods as i64))
        } else {
            None
        }
    }
}

impl PartialEq for CycleTime {
    fn eq(&self, other: &Self) -> bool {
        // Cross-multiplied equality: exact for representable products.
        self.length * other.periods as f64 == other.length * self.periods as f64
    }
}

impl PartialOrd for CycleTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        (self.length * other.periods as f64).partial_cmp(&(other.length * self.periods as f64))
    }
}

impl fmt::Display for CycleTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.exact() {
            Some(r) if r.as_integer().is_none() => {
                write!(f, "{} (= {:.4})", r, self.as_f64())
            }
            _ => write!(f, "{}", self.as_f64()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_multiplied_comparison() {
        assert!(CycleTime::new(20.0, 3) > CycleTime::new(13.0, 2));
        assert_eq!(CycleTime::new(10.0, 1), CycleTime::new(20.0, 2));
        assert!(CycleTime::new(9.0, 1) < CycleTime::new(19.0, 2));
    }

    #[test]
    fn exact_ratio() {
        assert_eq!(CycleTime::new(20.0, 3).exact(), Some(Ratio::new(20, 3)));
        assert_eq!(CycleTime::new(2.5, 1).exact(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(CycleTime::new(10.0, 1).to_string(), "10");
        assert!(CycleTime::new(20.0, 3).to_string().starts_with("20/3"));
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn zero_periods_panics() {
        let _ = CycleTime::new(1.0, 0);
    }
}
