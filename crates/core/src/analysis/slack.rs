//! Per-arc slack and criticality analysis.
//!
//! Once the cycle time `τ` is known, weight every arc with
//! `w(e) = δ(e) − τ·M(e)`. By optimality of `τ`, every cycle has
//! `w(C) = len(C) − τ·ε(C) <= 0`, with equality exactly on critical
//! cycles. The **slack** of an arc `a` is
//!
//! ```text
//! slack(a) = − max { w(C) | cycles C through a }
//! ```
//!
//! — the largest amount the arc's delay can grow before it joins a
//! critical cycle and starts degrading the cycle time. Arcs with zero
//! slack are *critical*: any increase of their delay increases τ (these
//! are the bottlenecks a designer must attack first, the workflow the
//! paper's introduction motivates).
//!
//! The maximum-weight cycle through `a = (u, v)` equals
//! `w(a) + maxdist(v, u)` where `maxdist` is the longest `w`-weighted path;
//! since no positive cycle exists, longest paths are well defined and one
//! Bellman–Ford pass per node suffices (O(n·m) per source, O(n²m) total —
//! fine for reporting; the hot path of the crate stays O(b²m)).

use crate::analysis::cycle_time::{AnalysisError, CycleTimeAnalysis};
use crate::arc::ArcId;
use crate::graph::SignalGraph;

/// Result of [`SlackAnalysis::run`].
#[derive(Clone, Debug)]
pub struct SlackAnalysis {
    slack: Vec<Option<f64>>,
    tau: f64,
}

impl SlackAnalysis {
    /// Computes per-arc slacks for a validated graph.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoCyclicBehavior`] for graphs without
    /// repetitive events.
    pub fn run(sg: &SignalGraph) -> Result<Self, AnalysisError> {
        let tau = CycleTimeAnalysis::run(sg)?.cycle_time().as_f64();
        let view = sg.repetitive_view();
        let n = view.graph.node_count();
        let m = view.arcs.len();
        let w: Vec<f64> = view
            .arcs
            .iter()
            .map(|&a| {
                let arc = sg.arc(a);
                arc.delay().get() - tau * f64::from(u8::from(arc.is_marked()))
            })
            .collect();

        // maxdist[s][t]: longest w-weighted path s -> t (NEG_INFINITY if
        // unreachable, 0 for s == t through the empty path).
        let mut maxdist = vec![vec![f64::NEG_INFINITY; n]; n];
        for s in 0..n {
            let dist = &mut maxdist[s];
            dist[s] = 0.0;
            // Bellman-Ford: n rounds of full relaxation.
            for _ in 0..n {
                let mut changed = false;
                #[allow(clippy::needless_range_loop)] // e indexes graph edges and weights
                for e in 0..m {
                    let edge = tsg_graph::EdgeId(e as u32);
                    let (u, v) = view.graph.endpoints(edge);
                    let cand = dist[u.index()] + w[e];
                    // tolerance guards against zero-cycles cycling forever
                    if cand > dist[v.index()] + 1e-12 {
                        dist[v.index()] = cand;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        let mut slack = vec![None; sg.arc_count()];
        for (e, &orig) in view.arcs.iter().enumerate() {
            let edge = tsg_graph::EdgeId(e as u32);
            let (u, v) = view.graph.endpoints(edge);
            let back = maxdist[v.index()][u.index()];
            if back > f64::NEG_INFINITY {
                let best_cycle = w[e] + back;
                slack[orig.index()] = Some((-best_cycle).max(0.0));
            }
        }
        Ok(SlackAnalysis { slack, tau })
    }

    /// The cycle time the slacks are relative to.
    pub fn cycle_time(&self) -> f64 {
        self.tau
    }

    /// Slack of `arc`: `None` for prefix/disengageable arcs (they lie on
    /// no cycle), `Some(0.0)` for critical arcs.
    pub fn slack(&self, arc: ArcId) -> Option<f64> {
        self.slack.get(arc.index()).copied().flatten()
    }

    /// `true` when the arc lies on a critical cycle (zero slack, up to
    /// `tol`).
    pub fn is_critical(&self, arc: ArcId, tol: f64) -> bool {
        matches!(self.slack(arc), Some(s) if s <= tol)
    }

    /// All critical arcs (slack `<= tol`), in id order.
    pub fn critical_arcs(&self, tol: f64) -> Vec<ArcId> {
        self.slack
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Some(s) if *s <= tol => Some(ArcId(i as u32)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    fn arc_between(sg: &SignalGraph, src: &str, dst: &str) -> ArcId {
        let s = sg.event_by_label(src).unwrap();
        let d = sg.event_by_label(dst).unwrap();
        sg.arc_ids()
            .find(|&a| sg.arc(a).src() == s && sg.arc(a).dst() == d)
            .unwrap()
    }

    #[test]
    fn critical_cycle_arcs_have_zero_slack() {
        let sg = figure2();
        let sa = SlackAnalysis::run(&sg).unwrap();
        assert_eq!(sa.cycle_time(), 10.0);
        for (s, d) in [("a+", "c+"), ("c+", "a-"), ("a-", "c-"), ("c-", "a+")] {
            let a = arc_between(&sg, s, d);
            assert_eq!(sa.slack(a), Some(0.0), "{s}->{d}");
            assert!(sa.is_critical(a, 1e-9));
        }
    }

    #[test]
    fn off_cycle_arcs_have_positive_slack() {
        // The b-side cycle C4 has length 6 against τ=10: its private arcs
        // carry slack. b+->c+ lies on C2 (length 8) => slack 2.
        let sg = figure2();
        let sa = SlackAnalysis::run(&sg).unwrap();
        let b_cp = arc_between(&sg, "b+", "c+");
        assert_eq!(sa.slack(b_cp), Some(2.0));
        let cp_bm = arc_between(&sg, "c+", "b-");
        assert_eq!(sa.slack(cp_bm), Some(2.0));
        // c-->b+ lies on C3 (length 8) and C4 (6): best cycle is 8 => 2.
        let cm_bp = arc_between(&sg, "c-", "b+");
        assert_eq!(sa.slack(cm_bp), Some(2.0));
    }

    #[test]
    fn prefix_arcs_have_no_slack_value() {
        let sg = figure2();
        let sa = SlackAnalysis::run(&sg).unwrap();
        let e_f = arc_between(&sg, "e-", "f-");
        assert_eq!(sa.slack(e_f), None);
        let e_ap = arc_between(&sg, "e-", "a+");
        assert_eq!(sa.slack(e_ap), None);
    }

    #[test]
    fn critical_arcs_list() {
        let sg = figure2();
        let sa = SlackAnalysis::run(&sg).unwrap();
        let critical = sa.critical_arcs(1e-9);
        assert_eq!(critical.len(), 4);
    }

    #[test]
    fn slack_predicts_perturbation_effect() {
        // Increasing an arc's delay by its slack keeps τ; any more raises it.
        let sg = figure2();
        let sa = SlackAnalysis::run(&sg).unwrap();
        let probe = arc_between(&sg, "b+", "c+");
        let slack = sa.slack(probe).unwrap();

        let rebuild = |extra: f64| {
            let mut b = SignalGraph::builder();
            let ids: Vec<_> = sg
                .events()
                .map(|e| b.event_with(sg.label(e).clone(), sg.kind(e)))
                .collect();
            for a in sg.arc_ids() {
                let arc = sg.arc(a);
                let d = arc.delay().get() + if a == probe { extra } else { 0.0 };
                let (s, t) = (ids[arc.src().index()], ids[arc.dst().index()]);
                if arc.is_marked() {
                    b.marked_arc(s, t, d);
                } else if arc.is_disengageable() {
                    b.disengageable_arc(s, t, d);
                } else {
                    b.arc(s, t, d);
                }
            }
            CycleTimeAnalysis::run(&b.build().unwrap())
                .unwrap()
                .cycle_time()
                .as_f64()
        };
        assert_eq!(rebuild(slack), 10.0);
        assert!(rebuild(slack + 0.5) > 10.0);
    }
}
