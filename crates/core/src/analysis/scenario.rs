//! Delay scenarios: the per-arc delay assignments the scenario-lane
//! kernel sweeps — min/typ/max *corners* derated by a percentage, or
//! seeded Monte-Carlo *samples* from a per-arc variation model.
//!
//! A [`ScenarioSet`] is the bridge between a user-facing specification
//! (`--corners min,typ,max --derate 10`, `--samples 64 --seed 7`) and
//! the kernel's per-lane δ table: it derives one multiplicative factor
//! per (scenario, arc slot) and materialises each scenario's
//! *reweighted graph* — the nominal graph with every live arc's delay
//! replaced by `nominal × factor`. Both the wide kernel's δ vectors and
//! the scalar verification oracle read delays from the *same*
//! reweighted graph, so scenario lanes are bit-identical to scalar
//! re-runs by construction.
//!
//! # Deterministic sampling
//!
//! Sampled scenarios follow the RNG-stream discipline of
//! `longrun_estimate_mc_lanes`: scenario `j` owns an independent
//! `SmallRng` stream seeded `seed + j`, drawing one factor per arc slot
//! in `ArcId` order. Because streams never share state, sample scenario
//! `j` of `K` is bit-identical regardless of `K` — growing a sweep adds
//! lanes without disturbing the ones already measured.

use std::fmt;
use std::str::FromStr;

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::analysis::cycle_time::CycleTimeAnalysis;
use crate::arc::ArcId;
use crate::graph::SignalGraph;

/// A classic delay corner: every arc derated the same way.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Corner {
    /// All delays scaled by `1 − derate/100`.
    Min,
    /// Nominal delays (factor exactly `1.0`).
    Typ,
    /// All delays scaled by `1 + derate/100`.
    Max,
}

impl Corner {
    /// The lowercase flag/wire name (`min`, `typ`, `max`).
    pub fn name(self) -> &'static str {
        match self {
            Corner::Min => "min",
            Corner::Typ => "typ",
            Corner::Max => "max",
        }
    }

    /// The multiplicative delay factor of this corner at `derate`
    /// percent.
    fn factor(self, derate: f64) -> f64 {
        match self {
            Corner::Min => 1.0 - derate / 100.0,
            Corner::Typ => 1.0,
            Corner::Max => 1.0 + derate / 100.0,
        }
    }
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Corner {
    type Err = UnknownCorner;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "min" => Ok(Corner::Min),
            "typ" => Ok(Corner::Typ),
            "max" => Ok(Corner::Max),
            _ => Err(UnknownCorner(s.to_string())),
        }
    }
}

/// Parse error of [`Corner`]: the string names no corner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownCorner(pub String);

impl fmt::Display for UnknownCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown corner `{}` (expected min, typ or max)", self.0)
    }
}

impl std::error::Error for UnknownCorner {}

/// An invalid scenario specification — zero scenarios, or a derate
/// outside the range that keeps every scaled delay valid.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ScenarioSpecError {
    /// The specification names no scenarios (empty corner list or
    /// `samples 0`).
    Empty,
    /// The derate percentage is outside `[0, 100)` — a min corner or
    /// sampled factor would turn a delay negative (or NaN).
    InvalidDerate(f64),
}

impl fmt::Display for ScenarioSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioSpecError::Empty => write!(f, "scenario set is empty"),
            ScenarioSpecError::InvalidDerate(d) => {
                write!(f, "derate {d}% is outside [0, 100)")
            }
        }
    }
}

impl std::error::Error for ScenarioSpecError {}

/// How a [`ScenarioSet`]'s factors are derived — retained so structural
/// edits can re-derive the set for a changed arc-slot count
/// ([`ScenarioSet::resized`]) without losing determinism.
#[derive(Clone, Debug, PartialEq)]
enum ScenarioSpec {
    Corners {
        derate: f64,
        which: Vec<Corner>,
    },
    Samples {
        count: usize,
        seed: u64,
        jitter: f64,
    },
}

/// A fixed set of delay scenarios over one graph's arc-slot space:
/// per-scenario labels and per-(scenario, arc) multiplicative factors.
///
/// # Examples
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::analysis::scenario::{Corner, ScenarioSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 3.0);
/// b.marked_arc(xm, xp, 2.0);
/// let sg = b.build()?;
///
/// let set = ScenarioSet::corners(
///     10.0,
///     &[Corner::Min, Corner::Typ, Corner::Max],
///     sg.arc_count(),
/// )?;
/// assert_eq!(set.len(), 3);
/// assert_eq!(set.label(0), "min");
/// let typ = set.reweighted(&sg, 1); // typ: factors are exactly 1.0
/// let a = sg.arc_ids().next().unwrap();
/// assert_eq!(typ.arc(a).delay(), sg.arc(a).delay());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSet {
    spec: ScenarioSpec,
    labels: Vec<String>,
    /// `factors[j * arc_slots + a]`: scenario `j`'s factor for arc slot
    /// `a` (slots indexed by `ArcId::index`, tombstones included so the
    /// sampled streams stay aligned across structural edits).
    factors: Vec<f64>,
    arc_slots: usize,
}

impl ScenarioSet {
    /// Corner scenarios in the given order, each scaling every arc by
    /// the corner's factor at `derate` percent.
    ///
    /// # Errors
    ///
    /// [`ScenarioSpecError::Empty`] when `which` is empty;
    /// [`ScenarioSpecError::InvalidDerate`] when `derate` is outside
    /// `[0, 100)`.
    pub fn corners(
        derate: f64,
        which: &[Corner],
        arc_slots: usize,
    ) -> Result<Self, ScenarioSpecError> {
        if which.is_empty() {
            return Err(ScenarioSpecError::Empty);
        }
        if !(0.0..100.0).contains(&derate) {
            return Err(ScenarioSpecError::InvalidDerate(derate));
        }
        Ok(Self::derive(
            ScenarioSpec::Corners {
                derate,
                which: which.to_vec(),
            },
            arc_slots,
        ))
    }

    /// `count` sampled scenarios: scenario `j` draws one factor per arc
    /// slot in `ArcId` order from an independent stream seeded
    /// `seed + j`, each factor uniform in `[1 − jitter, 1 + jitter)` —
    /// the `longrun_estimate_mc_lanes` discipline, so scenario `j` is
    /// bit-identical regardless of `count`.
    ///
    /// # Errors
    ///
    /// [`ScenarioSpecError::Empty`] when `count == 0`;
    /// [`ScenarioSpecError::InvalidDerate`] when `jitter_pct` is outside
    /// `[0, 100)`.
    pub fn samples(
        count: usize,
        seed: u64,
        jitter_pct: f64,
        arc_slots: usize,
    ) -> Result<Self, ScenarioSpecError> {
        if count == 0 {
            return Err(ScenarioSpecError::Empty);
        }
        if !(0.0..100.0).contains(&jitter_pct) {
            return Err(ScenarioSpecError::InvalidDerate(jitter_pct));
        }
        Ok(Self::derive(
            ScenarioSpec::Samples {
                count,
                seed,
                jitter: jitter_pct / 100.0,
            },
            arc_slots,
        ))
    }

    fn derive(spec: ScenarioSpec, arc_slots: usize) -> Self {
        let (labels, factors) = match &spec {
            ScenarioSpec::Corners { derate, which } => {
                let labels = which.iter().map(|c| c.name().to_string()).collect();
                let mut factors = Vec::with_capacity(which.len() * arc_slots);
                for c in which {
                    let f = c.factor(*derate);
                    factors.extend(std::iter::repeat_n(f, arc_slots));
                }
                (labels, factors)
            }
            ScenarioSpec::Samples {
                count,
                seed,
                jitter,
            } => {
                let labels = (0..*count).map(|j| format!("s{j}")).collect();
                let mut factors = Vec::with_capacity(count * arc_slots);
                for j in 0..*count {
                    // Independent stream per scenario — adding scenarios
                    // never perturbs earlier ones.
                    let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(j as u64));
                    factors.extend((0..arc_slots).map(|_| jitter_factor(&mut rng, *jitter)));
                }
                (labels, factors)
            }
        };
        ScenarioSet {
            spec,
            labels,
            factors,
            arc_slots,
        }
    }

    /// The same specification re-derived over a different arc-slot
    /// count — the structural-edit hook: after arcs are added the new
    /// slots get deterministic factors and existing corner factors are
    /// unchanged. (Sampled factors for existing slots are re-drawn from
    /// the same per-scenario streams, so the set stays a pure function
    /// of `(spec, arc_slots)`.)
    pub fn resized(&self, arc_slots: usize) -> Self {
        Self::derive(self.spec.clone(), arc_slots)
    }

    /// Number of scenarios `s`.
    #[allow(clippy::len_without_is_empty)] // construction rejects empty sets
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// The display label of scenario `j` (`min`/`typ`/`max` or `s{j}`).
    pub fn label(&self, j: usize) -> &str {
        &self.labels[j]
    }

    /// Scenario `j`'s multiplicative factor for arc slot `a`.
    pub fn factor(&self, j: usize, a: ArcId) -> f64 {
        self.factors[j * self.arc_slots + a.index()]
    }

    /// The arc-slot count the factors were derived over.
    pub fn arc_slots(&self) -> usize {
        self.arc_slots
    }

    /// Scenario `j`'s reweighted graph: `sg` with every live arc's
    /// delay replaced by `nominal × factor(j, arc)` — the canonical
    /// delay source both the kernel δ table and the scalar verification
    /// oracle read, which is what makes them bit-identical.
    ///
    /// # Panics
    ///
    /// Panics when `sg` has more arc slots than this set was derived
    /// over (call [`resized`](Self::resized) after structural edits),
    /// or if a scaled delay is invalid (impossible for valid specs:
    /// factors stay within `(0, 2)`).
    pub fn reweighted(&self, sg: &SignalGraph, j: usize) -> SignalGraph {
        assert!(
            sg.arc_count() <= self.arc_slots,
            "scenario set derived over {} arc slots, graph has {}",
            self.arc_slots,
            sg.arc_count()
        );
        let mut out = sg.clone();
        for a in sg.arc_ids() {
            if !sg.is_live_arc(a) {
                continue;
            }
            let scaled = sg.arc(a).delay().get() * self.factor(j, a);
            out.set_delay(a, scaled)
                .expect("factors in (0, 2) keep delays finite and non-negative");
        }
        out
    }
}

/// A uniform draw in `[0, 1)` from the top 53 bits of the stream —
/// the exact conversion `longrun_estimate_mc_lanes` uses, duplicated
/// here so core carries no dependency on the baselines crate.
fn unit_f64(rng: &mut SmallRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Multiplicative delay perturbation in `[1 − jitter, 1 + jitter)`;
/// exactly `1.0` at `jitter == 0`.
fn jitter_factor(rng: &mut SmallRng, jitter: f64) -> f64 {
    1.0 + jitter * (2.0 * unit_f64(rng) - 1.0)
}

/// The result of one scenario sweep: a full [`CycleTimeAnalysis`] per
/// scenario, plus the distribution summaries reports surface — τ per
/// corner, τ mean/quantiles, and per-arc criticality probabilities.
#[derive(Clone, Debug)]
pub struct ScenarioAnalysis {
    labels: Vec<String>,
    per: Vec<CycleTimeAnalysis>,
}

impl ScenarioAnalysis {
    pub(crate) fn new(labels: Vec<String>, per: Vec<CycleTimeAnalysis>) -> Self {
        debug_assert_eq!(labels.len(), per.len());
        ScenarioAnalysis { labels, per }
    }

    /// Number of scenarios analysed.
    #[allow(clippy::len_without_is_empty)] // always at least one scenario
    pub fn len(&self) -> usize {
        self.per.len()
    }

    /// The display label of scenario `j`.
    pub fn label(&self, j: usize) -> &str {
        &self.labels[j]
    }

    /// The full analysis of scenario `j`.
    pub fn analysis(&self, j: usize) -> &CycleTimeAnalysis {
        &self.per[j]
    }

    /// All per-scenario analyses, scenario-ordered.
    pub fn analyses(&self) -> &[CycleTimeAnalysis] {
        &self.per
    }

    /// τ of every scenario, scenario-ordered.
    pub fn taus(&self) -> Vec<f64> {
        self.per.iter().map(|a| a.cycle_time().as_f64()).collect()
    }

    /// Mean τ over the scenarios.
    pub fn tau_mean(&self) -> f64 {
        self.taus().iter().sum::<f64>() / self.len() as f64
    }

    /// Nearest-rank quantile of the τ distribution (`q` in `[0, 1]`;
    /// `q = 0.5` is the median, `q = 1.0` the maximum).
    pub fn tau_quantile(&self, q: f64) -> f64 {
        let mut taus = self.taus();
        taus.sort_by(f64::total_cmp);
        let s = taus.len();
        let idx = ((q * s as f64).ceil().max(1.0) as usize - 1).min(s - 1);
        taus[idx]
    }

    /// Per-arc criticality: for every arc on at least one scenario's
    /// critical cycle, the fraction of scenarios whose critical cycle
    /// contains it — sorted most-critical first (ties by arc index).
    pub fn criticality(&self) -> Vec<(ArcId, f64)> {
        let mut counts: Vec<(ArcId, usize)> = Vec::new();
        for a in &self.per {
            for &arc in a.critical_cycle() {
                match counts.iter_mut().find(|(x, _)| *x == arc) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((arc, 1)),
                }
            }
        }
        counts.sort_by_key(|&(arc, c)| (std::cmp::Reverse(c), arc.index()));
        let s = self.len() as f64;
        counts
            .into_iter()
            .map(|(arc, c)| (arc, c as f64 / s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn corner_factors_and_labels() {
        let set = ScenarioSet::corners(10.0, &[Corner::Min, Corner::Typ, Corner::Max], 4).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(
            (0..3).map(|j| set.label(j)).collect::<Vec<_>>(),
            ["min", "typ", "max"]
        );
        let a0 = ArcId(0);
        assert_eq!(set.factor(0, a0), 0.9);
        assert_eq!(set.factor(1, a0), 1.0);
        assert_eq!(set.factor(2, a0), 1.1);
    }

    #[test]
    fn corner_parse_round_trip_and_errors() {
        for c in [Corner::Min, Corner::Typ, Corner::Max] {
            assert_eq!(c.name().parse::<Corner>(), Ok(c));
            assert_eq!(c.to_string(), c.name());
        }
        assert_eq!("TYP".parse::<Corner>(), Ok(Corner::Typ));
        assert_eq!(
            "fast".parse::<Corner>(),
            Err(UnknownCorner("fast".to_string()))
        );
        assert_eq!(
            ScenarioSet::corners(10.0, &[], 4).unwrap_err(),
            ScenarioSpecError::Empty
        );
        assert_eq!(
            ScenarioSet::corners(100.0, &[Corner::Min], 4).unwrap_err(),
            ScenarioSpecError::InvalidDerate(100.0)
        );
        assert_eq!(
            ScenarioSet::samples(0, 1, 10.0, 4).unwrap_err(),
            ScenarioSpecError::Empty
        );
    }

    /// The satellite requirement: sample scenario `j` of `K` must be
    /// bit-identical regardless of `K` — per-scenario streams never
    /// share state.
    #[test]
    fn sample_scenarios_are_independent_of_count() {
        let slots = 7;
        let small = ScenarioSet::samples(3, 42, 15.0, slots).unwrap();
        let large = ScenarioSet::samples(64, 42, 15.0, slots).unwrap();
        for j in 0..small.len() {
            for a in 0..slots {
                let arc = ArcId(a as u32);
                assert_eq!(
                    small.factor(j, arc).to_bits(),
                    large.factor(j, arc).to_bits(),
                    "scenario {j} slot {a}"
                );
            }
        }
    }

    #[test]
    fn resized_is_deterministic_and_spec_preserving() {
        let set = ScenarioSet::samples(4, 7, 20.0, 5).unwrap();
        let grown = set.resized(9);
        assert_eq!(grown.len(), 4);
        assert_eq!(grown.arc_slots(), 9);
        // Re-deriving at the same size reproduces the set exactly.
        assert_eq!(grown.resized(5), set);
        let corners = ScenarioSet::corners(5.0, &[Corner::Max], 3).unwrap();
        assert_eq!(corners.resized(6).factor(0, ArcId(5)), 1.05);
    }

    #[test]
    fn reweighted_scales_only_live_arcs() {
        let sg = figure2();
        let set = ScenarioSet::corners(
            10.0,
            &[Corner::Min, Corner::Typ, Corner::Max],
            sg.arc_count(),
        )
        .unwrap();
        let typ = set.reweighted(&sg, 1);
        for a in sg.arc_ids() {
            assert_eq!(
                typ.arc(a).delay().get().to_bits(),
                sg.arc(a).delay().get().to_bits(),
                "typ corner must be bitwise nominal"
            );
        }
        let max = set.reweighted(&sg, 2);
        for a in sg.arc_ids().filter(|&a| sg.is_live_arc(a)) {
            assert_eq!(
                max.arc(a).delay().get().to_bits(),
                (sg.arc(a).delay().get() * 1.1).to_bits()
            );
        }
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let sg = figure2();
        let set = ScenarioSet::corners(
            10.0,
            &[Corner::Min, Corner::Typ, Corner::Max],
            sg.arc_count(),
        )
        .unwrap();
        let per: Vec<_> = (0..set.len())
            .map(|j| CycleTimeAnalysis::run(&set.reweighted(&sg, j)).unwrap())
            .collect();
        let labels = (0..set.len()).map(|j| set.label(j).to_string()).collect();
        let sa = ScenarioAnalysis::new(labels, per);
        let taus = sa.taus();
        // Corners scale every delay uniformly, so τ scales with them.
        assert_eq!(taus.len(), 3);
        assert!(taus[0] < taus[1] && taus[1] < taus[2]);
        assert_eq!(sa.tau_quantile(0.0), taus[0]);
        assert_eq!(sa.tau_quantile(0.5), taus[1]);
        assert_eq!(sa.tau_quantile(1.0), taus[2]);
        let mean = (taus[0] + taus[1] + taus[2]) / 3.0;
        assert!((sa.tau_mean() - mean).abs() < 1e-12);
        // Every scenario's critical cycle exists; probabilities in (0,1].
        for (_, p) in sa.criticality() {
            assert!(p > 0.0 && p <= 1.0);
        }
    }
}
